# Developer entry points.

PYTHON ?= python

.PHONY: install test bench bench-snapshot bench-engine bench-engine-check bench-tsdb bench-tsdb-check profile-engine figures docs campaign-smoke trace-smoke serve-smoke fleet-smoke fabric-smoke durable-smoke live-smoke sweeps clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) scripts/export_figures.py

docs:
	$(PYTHON) scripts/gen_counter_docs.py

campaign-smoke:
	$(PYTHON) scripts/campaign_smoke.py --workers 4

trace-smoke:
	$(PYTHON) scripts/trace_smoke.py

serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

fleet-smoke:
	$(PYTHON) scripts/fleet_smoke.py

fabric-smoke:
	$(PYTHON) scripts/fabric_smoke.py

durable-smoke:
	$(PYTHON) scripts/durable_smoke.py

live-smoke:
	$(PYTHON) scripts/live_smoke.py

bench-snapshot:
	$(PYTHON) scripts/bench_snapshot.py

# Re-measure the engine hot-path matrix and rewrite BENCH_engine.json.
bench-engine:
	$(PYTHON) scripts/bench_engine.py

# Regression gate: fail when the geomean sim_cycles_per_s drops >15%
# below the committed BENCH_engine.json, batched/legacy counter parity
# breaks, or the committed fidelity/pool floors no longer hold.
bench-engine-check:
	$(PYTHON) scripts/bench_engine.py --check

# cProfile top-N hotspot dump per app x node cell (add --steady for the
# warp path); the starting point for any engine perf work.
profile-engine:
	$(PYTHON) scripts/profile_engine.py

# Re-measure TSDB ingest/query rates and rewrite BENCH_tsdb.json.
bench-tsdb:
	$(PYTHON) scripts/bench_tsdb.py

# Regression gate: fail when points_per_s drops >30% below the committed
# BENCH_tsdb.json, or a retention bound breaks.
bench-tsdb-check:
	$(PYTHON) scripts/bench_tsdb.py --check

sweeps:
	$(PYTHON) scripts/sweep_local_vs_cxl.py
	$(PYTHON) scripts/sweep_interleave.py

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
