# Developer entry points.

PYTHON ?= python

.PHONY: install test bench figures docs clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) scripts/export_figures.py

docs:
	$(PYTHON) scripts/gen_counter_docs.py

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
