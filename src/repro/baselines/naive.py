"""Naive proportional stall attribution - the strawman of section 5.3.

"In a mixed memory traffic scenario, PMU stall cycle counters capture the
combined impact of both local and CXL memory paths.  Separating stalls
based solely on the proportion of request miss targets is inaccurate."

This module implements exactly that inaccurate splitter: take each stall
counter and multiply by the *count* share of CXL-served responses, with
no latency weighting, no level-increment differencing and no bottom-up
back-propagation.  The ablation bench compares it against PFEstimator
under a differential-simulation ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..pmu.views import CorePMUView

COMPONENTS = ("SB", "L1D", "LFB", "L2", "LLC")


@dataclass(frozen=True)
class NaiveBreakdown:
    core_id: int
    cxl_count_share: float
    per_component: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_component.values())


def naive_attribution(
    delta: Mapping[Tuple[str, str], float], core_id: int
) -> NaiveBreakdown:
    """Split every stall counter by the CXL share of offcore responses."""
    view = CorePMUView(delta, core_id)
    cxl = 0.0
    total = 0.0
    for family in ("DRd", "RFO"):
        cxl += view.ocr(family, "cxl_dram")
        total += view.ocr(family, "any_response")
    share = cxl / total if total > 0 else 0.0
    per_component = {
        "SB": (view.sb_stall_rd_wr + view.sb_stall_wr_only) * share,
        "L1D": view.l1_stall_cycles * share,
        "LFB": view.lfb_full_stall * share,
        "L2": view.l2_stall_cycles * share,
        "LLC": view.l3_stall_cycles * share,
    }
    return NaiveBreakdown(
        core_id=core_id, cxl_count_share=share, per_component=per_component
    )


def naive_total_cxl_stall(
    delta: Mapping[Tuple[str, str], float], core_id: int
) -> float:
    """The naive estimate of total CXL-induced stall on one core.

    Note the double counting: the nested stalls_l1d/l2/l3 counters overlap,
    so summing their scaled values overstates - one of the two failure
    modes (the other is ignoring the latency asymmetry between a CXL and a
    DDR response of equal count).
    """
    return naive_attribution(delta, core_id).total
