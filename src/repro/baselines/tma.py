"""Top-Down Analysis (TMA) baseline.

Intel VTune / AMD uProf diagnose pipeline bottlenecks with Yasin's
Top-Down method (ISPASS'14): divide pipeline slots hierarchically into
retiring / bad-speculation / frontend-bound / backend-bound, then drill
backend-bound into core-bound vs memory-bound and memory-bound into
L1/L2/L3/DRAM-bound.  Section 2.3 names this the state of the art for
on-chip profiling - and its limitation: it stops at "DRAM bound" and
*cannot associate core-level inefficiency with off-chip CXL access*.

This module implements the memory-side slice of TMA over the same PMU
counters PathFinder uses, both as a comparison baseline for the ablation
benches and as a sanity check (TMA's memory-bound share should explode
when an app moves to CXL, without saying why).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..pmu.views import CorePMUView


@dataclass(frozen=True)
class TMAReport:
    """Level-1/2 top-down buckets for one core over one epoch (fractions
    of total cycles; the memory hierarchy split follows TMA level 3)."""

    core_id: int
    cycles: float
    retiring: float
    memory_bound: float
    store_bound: float
    l1_bound: float
    l2_bound: float
    l3_bound: float
    dram_bound: float

    @property
    def backend_bound(self) -> float:
        return self.memory_bound + self.store_bound

    def dominant(self) -> str:
        buckets = {
            "retiring": self.retiring,
            "store_bound": self.store_bound,
            "l1_bound": self.l1_bound,
            "l2_bound": self.l2_bound,
            "l3_bound": self.l3_bound,
            "dram_bound": self.dram_bound,
        }
        return max(buckets, key=buckets.get)

    def as_dict(self) -> Dict[str, float]:
        return {
            "retiring": self.retiring,
            "memory_bound": self.memory_bound,
            "store_bound": self.store_bound,
            "l1_bound": self.l1_bound,
            "l2_bound": self.l2_bound,
            "l3_bound": self.l3_bound,
            "dram_bound": self.dram_bound,
        }


def topdown(delta: Mapping[Tuple[str, str], float], core_id: int,
            cycles: float) -> TMAReport:
    """Compute the TMA memory slice from one epoch's counter delta.

    Uses the canonical counter expressions: ``lX_bound`` is the stall
    increment between outstanding-miss levels (stalls_l1d - stalls_l2 is
    time stalled on data that L2 ultimately supplied, and so on), and
    ``dram_bound`` is the L3-miss residue - which on a CXL-backed app is
    really CXL time, but TMA has no counter to tell the difference.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    view = CorePMUView(delta, core_id)
    stall_l1 = view.l1_stall_cycles
    stall_l2 = view.l2_stall_cycles
    stall_l3 = view.l3_stall_cycles
    store = view.sb_stall_rd_wr + view.sb_stall_wr_only
    l1_bound = max(0.0, stall_l1 - stall_l2)
    l2_bound = max(0.0, stall_l2 - stall_l3)
    l3_share = 0.0
    dram_bound = stall_l3
    # TMA splits L3-bound from DRAM-bound with the L3 hit/miss ratio.
    hits = view.ocr("DRd", "l3_hit") + view.ocr("DRd", "snc_cache")
    total = view.ocr("DRd", "any_response")
    if total > 0:
        l3_share = hits / total
    l3_bound = stall_l3 * l3_share
    dram_bound = stall_l3 * (1.0 - l3_share)
    memory_bound = l1_bound + l2_bound + l3_bound + dram_bound
    busy = max(0.0, cycles - memory_bound - store)
    return TMAReport(
        core_id=core_id,
        cycles=cycles,
        retiring=busy / cycles,
        memory_bound=memory_bound / cycles,
        store_bound=store / cycles,
        l1_bound=l1_bound / cycles,
        l2_bound=l2_bound / cycles,
        l3_bound=l3_bound / cycles,
        dram_bound=dram_bound / cycles,
    )
