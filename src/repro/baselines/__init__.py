"""Baseline profilers the paper positions PathFinder against (section 2.3).

* :mod:`repro.baselines.tma` - the Top-Down Analysis method used by Intel
  VTune / AMD uProf: finds "memory bound" but cannot attribute it to CXL;
* :mod:`repro.baselines.naive` - proportional stall splitting by miss
  target counts, the approach section 5.3 calls inaccurate.

Both consume the same PMU snapshots as PathFinder, so the ablation
benches can compare all three against a differential-simulation ground
truth.
"""

from .naive import COMPONENTS as NAIVE_COMPONENTS
from .naive import NaiveBreakdown, naive_attribution, naive_total_cxl_stall
from .tma import TMAReport, topdown

__all__ = [
    "NAIVE_COMPONENTS",
    "NaiveBreakdown",
    "TMAReport",
    "naive_attribution",
    "naive_total_cxl_stall",
    "topdown",
]
