"""Write-ahead job journal: crash-durable record of every admitted job.

The serving daemon is long-lived but was, until this module, entirely
in-memory: a crash (or SIGKILL) lost every queued and in-flight job.
:class:`JobJournal` is an append-only NDJSON write-ahead log of job
lifecycle records -- ``admitted`` (carrying the full submission document
so the job can be rebuilt), ``started``, ``completed``, ``failed`` and
``handoff`` -- that the daemon writes *before* acknowledging a submit.
On restart, :meth:`JobJournal.recover` replays every segment and returns
the jobs whose latest record is non-terminal, in admit order, so the
daemon re-enqueues exactly the work it still owes.

Durability properties:

* every line carries a CRC32 over its canonical JSON payload; torn or
  bit-flipped lines (a crash mid-write) are skipped and counted, never
  fatal;
* the log is segmented (``wal-NNNNNNNN.ndjson``); the active segment
  rotates at a byte threshold and rotation triggers compaction once
  enough sealed segments pile up;
* compaction rewrites the whole log keeping only the records of
  unfinished jobs, via write-new-then-unlink-old, so a crash mid-compact
  leaves duplicate (idempotent on replay) records rather than lost ones;
* terminal records are appended *after* the result reaches the cache, so
  the worst crash window (result cached, terminal record lost) replays
  into an idempotent cache hit -- every admitted job completes exactly
  once in effect.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

logger = logging.getLogger(__name__)

JOURNAL_FORMAT = 1

#: Record kinds, in lifecycle order.
ADMITTED = "admitted"
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"
#: A draining daemon relinquished the job without running it; replay
#: treats it exactly like an admitted-but-unfinished job.
HANDOFF = "handoff"

TERMINAL_KINDS = (COMPLETED, FAILED)
ALL_KINDS = (ADMITTED, STARTED, COMPLETED, FAILED, HANDOFF)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".ndjson"


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_record(record: Dict[str, Any]) -> str:
    """One journal line: ``{"crc": ..., "rec": {...}}`` + newline."""
    payload = _canonical(record)
    return json.dumps({"crc": _checksum(payload), "rec": record},
                      sort_keys=True, separators=(",", ":")) + "\n"


def decode_record(line: str) -> Optional[Dict[str, Any]]:
    """The verified record on a journal line, or None if torn/corrupt."""
    line = line.strip()
    if not line:
        return None
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("rec")
    crc = envelope.get("crc")
    if not isinstance(record, dict) or not isinstance(crc, str):
        return None
    if _checksum(_canonical(record)) != crc:
        return None
    return record


@dataclass
class JournalRecovery:
    """What a replay of the whole journal found."""

    #: ``(job_id, admitted submission document)`` for every job whose
    #: latest record is non-terminal, in admit order -- the work a
    #: restarted daemon must re-enqueue.
    unfinished: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    #: Latest record kind per job id.
    states: Dict[str, str] = field(default_factory=dict)
    #: Total records successfully decoded.
    records: int = 0
    #: Lines skipped as torn or checksum-corrupt.
    corrupt: int = 0
    #: Segments scanned.
    segments: int = 0

    @property
    def terminal(self) -> List[str]:
        return [job_id for job_id, kind in self.states.items()
                if kind in TERMINAL_KINDS]


class JobJournal:
    """An append-only, checksummed, segmented NDJSON write-ahead log.

    Thread-safe: the daemon appends from its event loop and workers may
    append transitions concurrently; one lock serialises all writes,
    rotation and compaction.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_segment_bytes: int = 4 << 20,
        compact_after_segments: int = 4,
        fsync: bool = True,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.compact_after_segments = max(2, compact_after_segments)
        self.fsync = fsync
        self._lock = threading.RLock()
        self._active = None
        self._active_path: Optional[Path] = None
        self._active_bytes = 0
        self._appended = 0
        self._compactions = 0
        self._open_active_locked()

    # -- segments --------------------------------------------------------

    def _segments(self) -> List[Path]:
        return sorted(self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    @staticmethod
    def _segment_index(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _open_active_locked(self, index: Optional[int] = None) -> None:
        if index is None:
            segments = self._segments()
            index = self._segment_index(segments[-1]) if segments else 1
        self._active_path = self._segment_path(index)
        self._active = open(self._active_path, "a", encoding="utf-8")
        self._active_bytes = self._active_path.stat().st_size

    def _rotate_locked(self) -> None:
        self._active.close()
        next_index = self._segment_index(self._active_path) + 1
        self._open_active_locked(next_index)
        # Rotation sealed a segment; compact once enough pile up.
        if len(self._segments()) > self.compact_after_segments:
            self._compact_locked()

    # -- write -----------------------------------------------------------

    def append(self, kind: str, job_id: str,
               data: Optional[Dict[str, Any]] = None) -> None:
        """Durably append one lifecycle record."""
        if kind not in ALL_KINDS:
            raise ValueError(f"unknown journal record kind: {kind!r}")
        record: Dict[str, Any] = {
            "format": JOURNAL_FORMAT,
            "kind": kind,
            "job_id": job_id,
            "ts": time.time(),
        }
        if data is not None:
            record["data"] = data
        line = encode_record(record)
        with self._lock:
            if self._active is None:
                raise ValueError("journal is closed")
            self._active.write(line)
            self._active.flush()
            if self.fsync:
                try:
                    import os

                    os.fsync(self._active.fileno())
                except OSError:  # pragma: no cover - fs without fsync
                    pass
            self._active_bytes += len(line)
            self._appended += 1
            if self._active_bytes >= self.max_segment_bytes:
                self._rotate_locked()

    # -- read ------------------------------------------------------------

    def _scan_locked(self) -> Tuple[List[Dict[str, Any]], int, int]:
        """Every decodable record in order + (corrupt, segments) counts."""
        if self._active is not None:
            self._active.flush()
        records: List[Dict[str, Any]] = []
        corrupt = 0
        segments = self._segments()
        for path in segments:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                record = decode_record(line)
                if record is None:
                    corrupt += 1
                    continue
                records.append(record)
        return records, corrupt, len(segments)

    def recover(self) -> JournalRecovery:
        """Replay the whole journal; see :class:`JournalRecovery`.

        Duplicate records for one job (a crash mid-compaction can leave
        them) are idempotent: the first ``admitted`` document wins and
        the latest kind decides terminal-ness.
        """
        with self._lock:
            records, corrupt, segments = self._scan_locked()
        recovery = JournalRecovery(corrupt=corrupt, segments=segments,
                                   records=len(records))
        admitted_docs: Dict[str, Dict[str, Any]] = {}
        admit_order: List[str] = []
        for record in records:
            job_id = record.get("job_id")
            kind = record.get("kind")
            if not isinstance(job_id, str) or kind not in ALL_KINDS:
                recovery.corrupt += 1
                continue
            if kind == ADMITTED and job_id not in admitted_docs:
                data = record.get("data")
                if isinstance(data, dict):
                    admitted_docs[job_id] = data
                    admit_order.append(job_id)
            recovery.states[job_id] = kind
        for job_id in admit_order:
            if recovery.states.get(job_id) not in TERMINAL_KINDS:
                recovery.unfinished.append((job_id, admitted_docs[job_id]))
        return recovery

    # -- compaction ------------------------------------------------------

    def compact(self) -> Dict[str, Any]:
        """Drop every record of terminal jobs; returns before/after stats."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> Dict[str, Any]:
        records, corrupt, _ = self._scan_locked()
        states: Dict[str, str] = {}
        for record in records:
            job_id = record.get("job_id")
            kind = record.get("kind")
            if isinstance(job_id, str) and kind in ALL_KINDS:
                states[job_id] = kind
        live = [
            record for record in records
            if states.get(record.get("job_id")) not in TERMINAL_KINDS
        ]
        old_segments = self._segments()
        if self._active is not None:
            self._active.close()
            self._active = None
        next_index = (self._segment_index(old_segments[-1]) + 1
                      if old_segments else 1)
        compacted_path = self._segment_path(next_index)
        tmp_path = compacted_path.with_suffix(".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in live:
                handle.write(encode_record(record))
            handle.flush()
            if self.fsync:
                try:
                    import os

                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover
                    pass
        tmp_path.replace(compacted_path)
        # Only after the compacted segment is durable do the old ones go.
        for path in old_segments:
            try:
                path.unlink()
            except OSError:
                pass
        self._open_active_locked(next_index + 1)
        self._compactions += 1
        return {
            "records_before": len(records),
            "records_after": len(live),
            "dropped": len(records) - len(live),
            "corrupt": corrupt,
        }

    # -- ops -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            segments = self._segments()
            total = 0
            for path in segments:
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
            return {
                "root": str(self.root),
                "segments": len(segments),
                "total_bytes": total,
                "appended": self._appended,
                "compactions": self._compactions,
            }

    def close(self) -> None:
        with self._lock:
            if self._active is not None:
                self._active.close()
                self._active = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
