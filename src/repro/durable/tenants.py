"""Per-tenant quotas, token-bucket rate limits and weighted-fair scheduling.

Every submission to the serving daemon carries a tenant identity (the
``X-Pathfinder-Tenant`` header; absent means :data:`DEFAULT_TENANT`).
Three cooperating pieces turn the daemon's single undifferentiated
priority queue into a multi-tenant scheduler:

* :class:`TenantPolicy` -- one tenant's configuration: scheduling
  weight, queued / in-flight quotas and a token-bucket submit rate;
* :class:`TenantRegistry` -- the live table of policies plus per-tenant
  usage gauges and counters; admission calls
  :meth:`TenantRegistry.check_submit` and a breach raises
  :class:`QuotaExceeded` (the daemon answers 429 with the bucket's own
  ``Retry-After`` hint);
* :class:`WeightedFairQueue` -- a stride scheduler over per-tenant
  lanes: each dequeue advances the chosen lane's virtual pass by
  ``1/weight``, so continuously-backlogged tenants complete jobs in
  exact proportion to their weights, while an idle tenant's lane
  re-activates at the current virtual time (no banked credit).  Lanes
  whose tenant is at its ``max_in_flight`` cap are skipped until a
  running job finishes (the daemon kicks the queue).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Union

__all__ = [
    "DEFAULT_TENANT",
    "QuotaExceeded",
    "TenantPolicy",
    "TenantRegistry",
    "WeightedFairQueue",
]

DEFAULT_TENANT = "default"

#: Tenant names travel in an HTTP header; keep them simple.
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_tenant_name(name: str) -> bool:
    return bool(name) and len(name) <= 64 and set(name) <= _NAME_CHARS


class QuotaExceeded(Exception):
    """A tenant hit one of its quotas; carries a Retry-After hint."""

    def __init__(self, tenant: str, reason: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's quotas and scheduling weight.

    ``None`` limits mean unlimited; ``rate`` is submissions per second
    refilling a bucket of ``burst`` tokens (default ``ceil(rate)``,
    min 1).
    """

    name: str = DEFAULT_TENANT
    weight: float = 1.0
    max_queued: Optional[int] = None
    max_in_flight: Optional[int] = None
    rate: Optional[float] = None
    burst: Optional[int] = None

    def __post_init__(self) -> None:
        if not valid_tenant_name(self.name):
            raise ValueError(f"invalid tenant name: {self.name!r}")
        if not (isinstance(self.weight, (int, float)) and self.weight > 0):
            raise ValueError(f"tenant weight must be > 0, got {self.weight!r}")
        for label in ("max_queued", "max_in_flight", "burst"):
            value = getattr(self, label)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"{label} must be a positive int, "
                                 f"got {value!r}")
        if self.rate is not None and not (
            isinstance(self.rate, (int, float)) and self.rate > 0
        ):
            raise ValueError(f"rate must be > 0, got {self.rate!r}")

    @property
    def bucket_size(self) -> Optional[int]:
        if self.rate is None:
            return None
        return self.burst if self.burst is not None \
            else max(1, int(math.ceil(self.rate)))

    @classmethod
    def parse(cls, text: str) -> "TenantPolicy":
        """Parse a CLI policy spec.

        ``"alice"`` (defaults), ``"alice:3"`` (weight shorthand) or
        ``"alice:weight=3,max_queued=16,max_in_flight=2,rate=5,burst=10"``.
        """
        name, _, rest = text.strip().partition(":")
        fields: Dict[str, Any] = {"name": name}
        if rest:
            for part in rest.split(","):
                part = part.strip()
                if not part:
                    continue
                key, sep, value = part.partition("=")
                if not sep:
                    fields["weight"] = float(key)
                    continue
                key = key.strip()
                if key == "weight":
                    fields[key] = float(value)
                elif key == "rate":
                    fields[key] = float(value)
                elif key in ("max_queued", "max_in_flight", "burst"):
                    fields[key] = int(value)
                else:
                    raise ValueError(f"unknown tenant policy field {key!r} "
                                     f"in {text!r}")
        return cls(**fields)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "weight": self.weight,
            "max_queued": self.max_queued,
            "max_in_flight": self.max_in_flight,
            "rate": self.rate,
            "burst": self.bucket_size,
        }


class _TenantState:
    """Live usage for one tenant: gauges, counters, token bucket."""

    __slots__ = ("policy", "queued", "in_flight", "tokens", "refreshed",
                 "counters")

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self.queued = 0
        self.in_flight = 0
        bucket = policy.bucket_size
        self.tokens = float(bucket) if bucket is not None else 0.0
        self.refreshed = time.monotonic()
        self.counters: Dict[str, int] = {}

    def refill(self) -> None:
        if self.policy.rate is None:
            return
        now = time.monotonic()
        self.tokens = min(
            float(self.policy.bucket_size),
            self.tokens + (now - self.refreshed) * self.policy.rate,
        )
        self.refreshed = now

    def inc(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by


class TenantRegistry:
    """Thread-safe table of tenant policies and live usage.

    Unknown tenants auto-register with the ``default_policy`` template
    (weight 1, no quotas unless configured otherwise), so a fresh client
    can always submit; configure explicit policies for tenants that need
    weights or limits.
    """

    def __init__(
        self,
        policies: Union[None, Iterable[Union[TenantPolicy, str]],
                        Mapping[str, Any]] = None,
        *,
        default_policy: Optional[TenantPolicy] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._states: "OrderedDict[str, _TenantState]" = OrderedDict()
        self.default_policy = default_policy or TenantPolicy()
        for policy in self._normalize(policies):
            self.configure(policy)

    @staticmethod
    def _normalize(
        policies: Union[None, Iterable[Union[TenantPolicy, str]],
                        Mapping[str, Any]]
    ) -> List[TenantPolicy]:
        if policies is None:
            return []
        result: List[TenantPolicy] = []
        if isinstance(policies, Mapping):
            for name, value in policies.items():
                if isinstance(value, TenantPolicy):
                    result.append(value)
                elif isinstance(value, Mapping):
                    result.append(TenantPolicy(name=name, **dict(value)))
                elif isinstance(value, (int, float)):
                    result.append(TenantPolicy(name=name, weight=float(value)))
                else:
                    raise ValueError(f"cannot build a TenantPolicy for "
                                     f"{name!r} from {value!r}")
            return result
        for item in policies:
            if isinstance(item, TenantPolicy):
                result.append(item)
            elif isinstance(item, str):
                result.append(TenantPolicy.parse(item))
            else:
                raise ValueError(f"cannot build a TenantPolicy from {item!r}")
        return result

    # -- configuration ---------------------------------------------------

    def configure(self, policy: TenantPolicy) -> None:
        """Add or replace one tenant's policy (usage is preserved)."""
        with self._lock:
            state = self._states.get(policy.name)
            if state is None:
                self._states[policy.name] = _TenantState(policy)
            else:
                state.policy = policy

    def _state(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            if not valid_tenant_name(tenant):
                raise ValueError(f"invalid tenant name: {tenant!r}")
            template = self.default_policy
            state = self._states[tenant] = _TenantState(
                TenantPolicy(
                    name=tenant,
                    weight=template.weight,
                    max_queued=template.max_queued,
                    max_in_flight=template.max_in_flight,
                    rate=template.rate,
                    burst=template.burst,
                )
            )
        return state

    def policy(self, tenant: str) -> TenantPolicy:
        with self._lock:
            return self._state(tenant).policy

    def weight_of(self, tenant: str) -> float:
        with self._lock:
            return self._state(tenant).policy.weight

    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._states)

    # -- admission -------------------------------------------------------

    def check_submit(self, tenant: str, n: int = 1) -> None:
        """Admit ``n`` submissions or raise :class:`QuotaExceeded`.

        Tokens are only consumed when every check passes, so a rejected
        burst does not starve the tenant's next polite attempt.
        """
        with self._lock:
            state = self._state(tenant)
            policy = state.policy
            if policy.max_queued is not None \
                    and state.queued + n > policy.max_queued:
                state.inc("rejected", n)
                raise QuotaExceeded(
                    tenant,
                    f"queued quota exceeded ({state.queued} queued, "
                    f"max {policy.max_queued})",
                )
            if policy.rate is not None:
                state.refill()
                if state.tokens < n:
                    state.inc("rejected", n)
                    state.inc("rate_limited", n)
                    wait = (n - state.tokens) / policy.rate
                    raise QuotaExceeded(
                        tenant,
                        f"submit rate exceeded ({policy.rate:g}/s)",
                        retry_after=max(1, int(math.ceil(wait))),
                    )
                state.tokens -= n

    # -- lifecycle accounting -------------------------------------------

    def on_enqueue(self, tenant: str, n: int = 1) -> None:
        with self._lock:
            state = self._state(tenant)
            state.queued += n
            state.inc("submitted", n)

    def on_recovered(self, tenant: str) -> None:
        with self._lock:
            state = self._state(tenant)
            state.queued += 1
            state.inc("recovered")

    def on_cache_hit(self, tenant: str) -> None:
        with self._lock:
            state = self._state(tenant)
            state.inc("submitted")
            state.inc("cache_hits")
            state.inc("completed")

    def on_start(self, tenant: str) -> None:
        with self._lock:
            state = self._state(tenant)
            state.queued = max(0, state.queued - 1)
            state.in_flight += 1

    def on_finish(self, tenant: str, ok: bool = True) -> None:
        with self._lock:
            state = self._state(tenant)
            state.in_flight = max(0, state.in_flight - 1)
            state.inc("completed" if ok else "failed")

    def on_handoff(self, tenant: str) -> None:
        with self._lock:
            state = self._state(tenant)
            state.queued = max(0, state.queued - 1)
            state.inc("handed_off")

    def can_start(self, tenant: str) -> bool:
        """Is the tenant under its in-flight cap right now?"""
        with self._lock:
            state = self._state(tenant)
            cap = state.policy.max_in_flight
            return cap is None or state.in_flight < cap

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            document: Dict[str, Dict[str, Any]] = {}
            for name, state in self._states.items():
                state.refill()
                document[name] = {
                    "policy": state.policy.as_dict(),
                    "queued": state.queued,
                    "in_flight": state.in_flight,
                    "tokens": (round(state.tokens, 3)
                               if state.policy.rate is not None else None),
                    "counters": dict(state.counters),
                }
            return document


class _Lane:
    """One tenant's backlog inside the :class:`WeightedFairQueue`."""

    __slots__ = ("heap", "vpass", "weight")

    def __init__(self, weight: float) -> None:
        self.heap: List[Any] = []
        self.vpass = 0.0
        self.weight = weight


_MISS = object()


class WeightedFairQueue:
    """An asyncio stride scheduler over per-tenant FIFO-by-priority lanes.

    Not a drop-in :class:`asyncio.Queue`: items are enqueued with a
    tenant and priority, dequeues pick the eligible lane with the
    smallest virtual pass (ties broken by arrival order), and drain
    sentinels (:meth:`put_sentinel` -> ``get()`` returns ``None``) are
    only served once no lane is eligible, so workers always finish the
    whole backlog before exiting.
    """

    def __init__(self, registry: Optional[TenantRegistry] = None) -> None:
        self._registry = registry
        self._lanes: "OrderedDict[str, _Lane]" = OrderedDict()
        self._counter = itertools.count()
        self._sentinels = 0
        self._waiters: Deque[asyncio.Future] = deque()
        self._vtime = 0.0
        self._size = 0

    # -- sizing ----------------------------------------------------------

    def qsize(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    def backlog(self) -> Dict[str, int]:
        """Queued items per tenant (for metrics)."""
        return {tenant: len(lane.heap)
                for tenant, lane in self._lanes.items() if lane.heap}

    # -- enqueue ---------------------------------------------------------

    def put_nowait(self, item: Any, *, tenant: str = DEFAULT_TENANT,
                   priority: int = 10) -> None:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = _Lane(self._weight(tenant))
        if not lane.heap:
            # Re-activation: no credit is banked while idle, and the
            # weight is re-read so policy changes apply live.
            lane.weight = self._weight(tenant)
            lane.vpass = max(lane.vpass, self._vtime)
        heapq.heappush(lane.heap, (priority, next(self._counter), item))
        self._size += 1
        self._wake()

    def put_sentinel(self) -> None:
        """Ask one worker to exit once the backlog is drained."""
        self._sentinels += 1
        self._wake()

    def _weight(self, tenant: str) -> float:
        if self._registry is None:
            return 1.0
        return max(self._registry.weight_of(tenant), 1e-9)

    # -- dequeue ---------------------------------------------------------

    def _pop(self, respect_limits: bool = True) -> Any:
        best_key = None
        best_lane = None
        for tenant, lane in self._lanes.items():
            if not lane.heap:
                continue
            if respect_limits and self._registry is not None \
                    and not self._registry.can_start(tenant):
                continue
            key = (lane.vpass, lane.heap[0][1])
            if best_key is None or key < best_key:
                best_key, best_lane = key, lane
        if best_lane is None:
            return _MISS
        _, _, item = heapq.heappop(best_lane.heap)
        self._size -= 1
        self._vtime = best_lane.vpass
        best_lane.vpass += 1.0 / best_lane.weight
        return item

    async def get(self) -> Any:
        """The next item by weighted-fair order; ``None`` = drain sentinel.

        A sentinel is only delivered when no lane is *eligible* (empty or
        blocked on its in-flight cap); a blocked lane's jobs are picked
        up by whichever worker finishes the blocking job, so drains
        cannot strand work.
        """
        while True:
            item = self._pop()
            if item is not _MISS:
                return item
            if self._sentinels:
                self._sentinels -= 1
                return None
            future = asyncio.get_event_loop().create_future()
            self._waiters.append(future)
            try:
                await future
            except asyncio.CancelledError:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
                raise

    def get_nowait(self) -> Any:
        """Pop any queued item, ignoring in-flight caps (drain handoff)."""
        item = self._pop(respect_limits=False)
        if item is _MISS:
            raise asyncio.QueueEmpty
        return item

    def kick(self) -> None:
        """Re-evaluate eligibility (call after a tenant's job finishes)."""
        self._wake()

    def _wake(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)
