"""Durability and tenancy for the serving tier.

Three pillars (see each module's docstring):

* :mod:`repro.durable.journal` -- the write-ahead job journal the
  daemon appends to before acking a submit and replays on restart;
* :mod:`repro.durable.tenants` -- per-tenant quotas and the
  weighted-fair scheduler that replaces the raw priority queue;
* :mod:`repro.durable.store` -- the shared pull-through cache tier
  fleet members hydrate from and publish back to.
"""

from .journal import (
    ADMITTED,
    ALL_KINDS,
    COMPLETED,
    FAILED,
    HANDOFF,
    JOURNAL_FORMAT,
    STARTED,
    TERMINAL_KINDS,
    JobJournal,
    JournalRecovery,
    decode_record,
    encode_record,
)
from .store import PullThroughCache
from .tenants import (
    DEFAULT_TENANT,
    QuotaExceeded,
    TenantPolicy,
    TenantRegistry,
    WeightedFairQueue,
)

__all__ = [
    "ADMITTED",
    "ALL_KINDS",
    "COMPLETED",
    "DEFAULT_TENANT",
    "FAILED",
    "HANDOFF",
    "JOURNAL_FORMAT",
    "JobJournal",
    "JournalRecovery",
    "PullThroughCache",
    "QuotaExceeded",
    "STARTED",
    "TERMINAL_KINDS",
    "TenantPolicy",
    "TenantRegistry",
    "WeightedFairQueue",
    "decode_record",
    "encode_record",
]
