"""A shared pull-through cache tier over the local result cache.

:class:`PullThroughCache` generalises the content-addressed, hard-link
first-writer-wins :class:`~repro.exec.cache.ResultCache` into a two-level
hierarchy: every fleet member keeps its private local cache directory,
and all members share one *store* directory (typically on a common
filesystem).  A local miss probes the shared store and, on a hit,
hydrates the local tier with a hard link (copy across filesystems); a
completed job is published back to the store, first writer wins.  A
rebuilt or freshly added member therefore rewarms from its peers'
completed work instead of recomputing it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..exec.cache import ResultCache, link_or_copy

__all__ = ["PullThroughCache"]


class PullThroughCache(ResultCache):
    """A :class:`ResultCache` backed by a shared second-tier store.

    ``root`` is this member's private cache directory; ``shared`` is the
    store every member publishes to (a path, or a :class:`ResultCache`
    to share one instance in-process).  All the parent's semantics --
    content-addressed keys, entry format validation, LRU pruning of the
    *local* tier -- are inherited unchanged; only miss and publish paths
    differ.
    """

    def __init__(
        self,
        root: Union[str, Path],
        shared: Union[str, Path, ResultCache],
        **kwargs: Any,
    ) -> None:
        super().__init__(root, **kwargs)
        if isinstance(shared, ResultCache):
            self.shared = shared
        else:
            self.shared = ResultCache(shared)
        self.remote_hits = 0
        self.publishes = 0

    # -- read ------------------------------------------------------------

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        entry = super().get_entry(key)
        if entry is not None:
            return entry
        remote = self.shared.get_entry(key)
        if remote is None:
            return None
        # Hydrate the local tier so the next probe is a local hit and the
        # local LRU pruner sees a fresh mtime.
        try:
            link_or_copy(self.shared.entry_path(key), self.entry_path(key))
        except OSError:
            pass
        # The super() probe counted a local miss, but the lookup as a
        # whole hit; report it as such.
        self.misses -= 1
        self.hits += 1
        self.remote_hits += 1
        return remote

    # -- write -----------------------------------------------------------

    def put_document(self, key: str, document: Dict[str, Any],
                     meta: Optional[Dict[str, Any]] = None) -> None:
        super().put_document(key, document, meta)
        self._publish(key)

    def _publish(self, key: str) -> None:
        local = self.entry_path(key)
        if not local.exists():
            return
        try:
            link_or_copy(local, self.shared.entry_path(key))
            self.publishes += 1
        except OSError:
            pass

    # -- ops -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        doc = super().stats()
        doc["remote_hits"] = self.remote_hits
        doc["publishes"] = self.publishes
        doc["shared"] = self.shared.stats()
        return doc
