"""PathFinder reproduction: a CXL.mem profiler over a simulated server.

Reproduces "Understanding and Profiling CXL.mem Using PathFinder"
(SIGCOMM 2025).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from . import baselines, core, exec, pmu, sim, tiering, tsdb, workloads  # noqa: F401
from . import api  # noqa: F401
from .api import compare, counters, fleet_run_many, run, run_many  # noqa: F401
from .options import RunOptions, UNSET  # noqa: F401

__all__ = [
    "api",
    "baselines",
    "compare",
    "core",
    "counters",
    "exec",
    "fleet_run_many",
    "pmu",
    "run",
    "run_many",
    "RunOptions",
    "sim",
    "tiering",
    "tsdb",
    "workloads",
    "UNSET",
    "__version__",
]
