"""PathFinder reproduction: a CXL.mem profiler over a simulated server.

Reproduces "Understanding and Profiling CXL.mem Using PathFinder"
(SIGCOMM 2025).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from . import baselines, core, pmu, sim, tiering, tsdb, workloads  # noqa: F401

__all__ = [
    "baselines",
    "core",
    "pmu",
    "sim",
    "tiering",
    "tsdb",
    "workloads",
    "__version__",
]
