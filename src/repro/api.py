"""The unified PathFinder entry points.

Four verbs cover the whole workflow the paper's evaluation needs:

* :func:`run` - profile one spec on a (default or explicit) machine,
  optionally through the content-addressed result cache;
* :func:`run_many` - execute a whole campaign of specs/jobs with
  worker-pool parallelism, caching, timeouts and retries;
* :func:`compare` - line up two sessions A/B (case 7's workflow);
* :func:`counters` - collapse a session into total counter deltas.

Example::

    from repro import api
    from repro.core import AppSpec, ProfileSpec
    from repro.workloads import SequentialWorkload

    spec = ProfileSpec(apps=[AppSpec(
        workload=SequentialWorkload("seq", 1 << 20, num_ops=4000),
        core=0, membind=0)])
    result = api.run(spec)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import dataclasses

from .core.diff import SessionDiff, compare_sessions
from .core.profiler import PathFinder, ProfileResult
from .core.spec import ProfileSpec
from .exec.cache import ResultCache, coerce_cache
from .exec.runner import (
    CampaignJob,
    CampaignResult,
    expand_duplicates,
    run_campaign,
)
from .options import UNSET, RunOptions, apply_trace, resolve_options
from .sim.fabric import apply_fabric
from .sim.machine import Machine
from .sim.topology import MachineConfig, spr_config

__all__ = ["run", "run_many", "fleet_run_many", "compare", "counters",
           "config_for", "RunOptions"]


def _tiered_cache(cache: Any, shared: Any) -> Optional[ResultCache]:
    """The resolved cache, wrapped in a pull-through tier when shared."""
    resolved = coerce_cache(cache)
    if shared is None:
        return resolved
    if resolved is None:
        raise ValueError(
            "shared_cache needs a local cache tier to hydrate; enable "
            "cache= as well"
        )
    from .durable.store import PullThroughCache

    return PullThroughCache(resolved.root, shared)


def config_for(spec: ProfileSpec) -> MachineConfig:
    """A default machine sized to fit the spec's pinned cores *and* nodes.

    Node ids follow the machine layout (local DDR first, an optional
    remote-socket DDR node, then one node per CXL device), so a spec
    bound - via ``membind``, ``interleave`` or ``preinstalled`` - to CXL
    node ``n`` gets a machine with enough CXL devices for node ``n`` to
    exist.
    """
    overrides = {"num_cores": max(2, max(a.core for a in spec.apps) + 1)}
    nodes = set()
    for app in spec.apps:
        if app.membind is not None:
            nodes.add(app.membind)
        if app.interleave is not None:
            nodes.update(app.interleave[:2])
        if app.preinstalled is not None:
            nodes.update(app.preinstalled)
    base = spr_config()
    first_cxl = 1 + (1 if base.remote_mem_bytes else 0)
    needed_devices = max(nodes, default=0) - first_cxl + 1
    if needed_devices > base.num_cxl_devices:
        overrides["num_cxl_devices"] = needed_devices
    return spr_config(**overrides)


def run(
    spec: ProfileSpec,
    *,
    options: Optional[RunOptions] = None,
    config: Optional[MachineConfig] = None,
    machine: Optional[Machine] = None,
    cache: Union[None, bool, str, ResultCache] = UNSET,
    max_events: Optional[int] = UNSET,
    timeout: Optional[float] = UNSET,
    retries: int = UNSET,
    trace: Any = UNSET,
    fabric: Any = UNSET,
    shared_cache: Any = UNSET,
    live: Any = UNSET,
    fidelity: Any = UNSET,
    on_epoch: Optional[Any] = None,
) -> ProfileResult:
    """Profile one spec and return its :class:`ProfileResult`.

    With no ``machine``, one is built from ``config`` (default: an SPR
    host sized to the spec's cores).  Execution knobs travel in
    ``options`` (a :class:`repro.RunOptions`); the individual keywords
    remain as a compatibility spelling of the same fields.  Pass
    ``cache=True`` (or a path / :class:`ResultCache`) to reuse and
    populate the content-addressed store; an explicit ``machine``
    disables caching because its mutated state is not part of the cache
    key.  ``fabric`` (a preset name or
    :class:`~repro.sim.fabric.FabricSpec`) interposes a switched
    multi-host fabric between the machine's root ports and its devices.

    ``live`` (``True`` or a :class:`~repro.live.LiveSpec`) runs the
    profiler in-process with streaming ingestion: the materializer keeps
    rolling workflows warm in a retention-tiered TSDB and ``on_epoch``
    receives one digest dict per epoch while the simulation runs.  Live
    runs are incompatible with ``cache``/``timeout``/``retries`` (the
    point is the in-flight stream, not a cached document); for live
    streaming over HTTP submit ``{"live": true}`` to a serve daemon and
    read ``GET /v1/live``.
    """
    opts = resolve_options(
        options,
        {"cache": cache, "max_events": max_events, "timeout": timeout,
         "retries": retries, "trace": trace, "fabric": fabric,
         "shared_cache": shared_cache, "live": live, "fidelity": fidelity},
        api="run",
        defaults={"cache": None, "max_events": None, "timeout": None,
                  "retries": 0, "trace": None, "fabric": None,
                  "shared_cache": None, "live": None, "fidelity": "exact"},
    )
    spec = apply_trace(spec, opts["trace"])
    if machine is not None or opts["live"] is not None:
        where = (
            "an explicit machine" if machine is not None else "a live run"
        )
        if opts["cache"] or opts["shared_cache"] is not None:
            raise ValueError(
                f"cache does not apply to {where}: the cached document "
                "cannot carry an explicit machine's state or a live "
                "stream"
            )
        if opts["timeout"] is not None or opts["retries"]:
            raise ValueError(
                f"timeout/retries need the campaign runner; they do not "
                f"apply to {where}"
            )
        if machine is None:
            machine = Machine(
                apply_fabric(
                    config if config is not None else config_for(spec),
                    opts["fabric"],
                )
            )
        elif opts["fabric"] is not None:
            raise ValueError(
                "fabric requires a declarative config; attach one to an "
                "explicit machine with repro.sim.fabric.attach_fabric"
            )
        if opts["max_events"] is not None:
            machine.engine.set_event_budget(opts["max_events"])
        profiler = PathFinder(
            machine, spec, live=opts["live"], on_epoch=on_epoch,
            fidelity=opts["fidelity"],
        )
        return profiler.run()
    job = CampaignJob(
        spec=spec,
        config=apply_fabric(
            config if config is not None else config_for(spec),
            opts["fabric"],
        ),
        max_events=opts["max_events"],
        fidelity=opts["fidelity"],
    )
    campaign = run_campaign(
        [job],
        parallel=False,
        cache=_tiered_cache(opts["cache"], opts["shared_cache"]),
        timeout=opts["timeout"],
        retries=opts["retries"],
    )
    record = campaign.jobs[0]
    if not record.ok:
        raise RuntimeError(f"profiling failed ({record.failure}): {record.error}")
    return campaign.results[0]


def _collect_jobs(
    specs: Sequence[Union[ProfileSpec, CampaignJob]],
    config: Optional[MachineConfig],
    tags: Optional[Sequence[str]],
    opts: Dict[str, Any],
) -> List[CampaignJob]:
    """Wrap specs into jobs and fold resolved options into each job.

    ``trace`` rewrites the job's spec (never mutating the caller's);
    ``max_events`` fills jobs that did not set their own budget;
    ``fidelity`` fills jobs still at the exact default; ``fabric``
    rewrites each job's machine config (a job whose config already
    carries a different fabric is a conflict and raises).
    """
    fabric = opts.get("fabric")
    fidelity = opts.get("fidelity")
    jobs: List[CampaignJob] = []
    for i, item in enumerate(specs):
        tag = tags[i] if tags is not None else ""
        if isinstance(item, CampaignJob):
            if tag and not item.tag:
                item.tag = tag
            changes: Dict[str, Any] = {}
            spec = apply_trace(item.spec, opts.get("trace"))
            if spec is not item.spec:
                changes["spec"] = spec
            if opts.get("max_events") is not None and item.max_events is None:
                changes["max_events"] = opts["max_events"]
            if fidelity not in (None, "exact") and item.fidelity == "exact":
                changes["fidelity"] = fidelity
            if fabric is not None:
                if item.config.fabric is not None:
                    raise ValueError(
                        f"job {item.tag or i}: fabric set both on the job's "
                        "config and via options; set it in one place"
                    )
                changes["config"] = apply_fabric(item.config, fabric)
            jobs.append(dataclasses.replace(item, **changes) if changes else item)
        else:
            jobs.append(
                CampaignJob(
                    spec=apply_trace(item, opts.get("trace")),
                    config=apply_fabric(
                        config if config is not None else config_for(item),
                        fabric,
                    ),
                    tag=tag,
                    max_events=opts.get("max_events"),
                    fidelity=opts.get("fidelity") or "exact",
                )
            )
    return jobs


def run_many(
    specs: Sequence[Union[ProfileSpec, CampaignJob]],
    *,
    options: Optional[RunOptions] = None,
    config: Optional[MachineConfig] = None,
    parallel: bool = True,
    workers: Optional[int] = None,
    cache: Union[None, bool, str, ResultCache] = UNSET,
    max_events: Optional[int] = UNSET,
    timeout: Optional[float] = UNSET,
    retries: int = UNSET,
    trace: Any = UNSET,
    fabric: Any = UNSET,
    shared_cache: Any = UNSET,
    fidelity: Any = UNSET,
    tags: Optional[Sequence[str]] = None,
) -> CampaignResult:
    """Execute a campaign of profiling jobs; see :func:`repro.exec.run_campaign`.

    Accepts plain :class:`ProfileSpec` items (wrapped into jobs, with
    ``config`` or a per-spec default machine) or pre-built
    :class:`CampaignJob` items for full control (setup hooks, per-job
    budgets).  Execution knobs travel in ``options``
    (:class:`repro.RunOptions`); the individual keywords remain as a
    compatibility spelling.  Caching defaults ON for campaigns - reruns
    and overlapping sweeps resolve from ``results/cache/``.
    """
    opts = resolve_options(
        options,
        {"cache": cache, "max_events": max_events, "timeout": timeout,
         "retries": retries, "trace": trace, "fabric": fabric,
         "shared_cache": shared_cache, "fidelity": fidelity},
        api="run_many",
        defaults={"cache": True, "max_events": None, "timeout": None,
                  "retries": 1, "trace": None, "fabric": None,
                  "shared_cache": None, "fidelity": "exact"},
    )
    jobs = _collect_jobs(specs, config, tags, opts)
    campaign = run_campaign(
        jobs,
        workers=workers,
        parallel=parallel,
        cache=_tiered_cache(opts["cache"], opts["shared_cache"]),
        timeout=opts["timeout"],
        retries=opts["retries"],
    )
    expand_duplicates(campaign)
    return campaign


def fleet_run_many(
    specs: Sequence[Union[ProfileSpec, CampaignJob]],
    members: Sequence[Union[str, Tuple[str, int]]],
    *,
    options: Optional[RunOptions] = None,
    config: Optional[MachineConfig] = None,
    tags: Optional[Sequence[str]] = None,
    monitor_interval_s: Optional[float] = 2.0,
    on_event: Optional[Any] = None,
    **shard_options: Any,
) -> "FleetResult":
    """Execute a campaign across a fleet of ``repro.serve`` daemons.

    The sharded twin of :func:`run_many`: each job is routed by
    consistent hashing on its cache key to one of ``members``
    (``"host:port"`` strings or ``(host, port)`` tuples), so repeated
    and overlapping sweeps resolve as member-local cache hits, and a
    member that dies mid-campaign has its jobs rerouted to ring
    successors.  Jobs must be declarative (no ``setup`` hooks - they
    cannot travel over HTTP).  Execution knobs travel in ``options``
    (:class:`repro.RunOptions`): ``max_events``/``trace`` fold into the
    shipped jobs, ``timeout`` becomes the per-member ``job_timeout``;
    ``cache`` and ``retries`` do not apply here (members cache locally,
    failover replaces retry).  Extra ``shard_options`` are forwarded to
    :meth:`repro.fleet.FleetCoordinator.shard_campaign`; ``on_event``
    receives every merged progress event.

    Returns a :class:`repro.fleet.FleetResult` - a
    :class:`CampaignResult` subclass, so every existing consumer
    (``render_campaign``, ``summary()``) works on it unchanged.
    """
    from .fleet import FleetCoordinator, FleetResult  # noqa: F811

    opts = resolve_options(
        options,
        {},
        api="fleet_run_many",
        defaults={"max_events": None, "timeout": None, "trace": None,
                  "fabric": None, "fidelity": "exact"},
    )
    if opts["timeout"] is not None:
        if "job_timeout" in shard_options:
            raise ValueError(
                "fleet_run_many: timeout set both via options= and as "
                "job_timeout=; set it in one place"
            )
        shard_options["job_timeout"] = opts["timeout"]
    jobs = _collect_jobs(specs, config, tags, opts)
    coordinator = FleetCoordinator(members)
    if monitor_interval_s is not None:
        coordinator.start_monitor(interval_s=monitor_interval_s)
    try:
        return coordinator.run_many(jobs, on_event=on_event, **shard_options)
    finally:
        coordinator.stop_monitor()


def compare(
    baseline: ProfileResult, treatment: ProfileResult, **kwargs: Any
) -> SessionDiff:
    """A/B-compare two sessions (wraps :func:`repro.core.compare_sessions`)."""
    return compare_sessions(baseline, treatment, **kwargs)


def counters(result: ProfileResult) -> Dict[Tuple[str, str], float]:
    """Total ``(scope, event) -> value`` deltas across the whole session.

    Continuous-mode sessions sum their epoch deltas; aggregated-mode
    sessions fall back to the final cumulative epoch.
    """
    epochs = result.epochs or ([result.final] if result.final else [])
    totals: Dict[Tuple[str, str], float] = {}
    for epoch in epochs:
        for key, value in epoch.snapshot.delta.items():
            totals[key] = totals.get(key, 0.0) + value
    return totals
