"""repro.serve - profiling-as-a-service on top of :mod:`repro.api`.

A single long-lived daemon owns the warm result cache and a bounded
priority queue of profiling jobs; clients submit
:class:`~repro.core.spec.ProfileSpec` documents over HTTP/JSON and
stream progress back as NDJSON.  See ``docs/SERVING.md`` for the API
reference and ops runbook.

    from repro.serve import BackgroundServer, ServeClient

    with BackgroundServer(workers=2, cache="results/cache") as server:
        client = ServeClient(port=server.port)
        job = client.submit_run(spec)
        final = client.wait(job["job_id"])
"""

from .client import ServeClient, ServeError, parse_retry_after
from .daemon import BackgroundServer, ServeDaemon
from .executor import JobExecutor
from .jobs import DONE, FAILED, QUEUED, RUNNING, JobStore, ServeJob
from .metrics import ServeMetrics

__all__ = [
    "BackgroundServer",
    "DONE",
    "FAILED",
    "JobExecutor",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeJob",
    "ServeMetrics",
    "parse_retry_after",
]
