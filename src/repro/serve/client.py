"""Blocking HTTP client for the ``repro.serve`` daemon.

Stdlib-only (``http.client``); covers the whole API surface::

    client = ServeClient(port=8023)
    job = client.submit_run(spec)                    # 202/200 -> job dict
    job = client.wait(job["job_id"], timeout=120)    # poll to terminal
    for event in client.events(job["job_id"]):       # or stream NDJSON
        print(event["event"])

Methods raise :class:`ServeError` on any non-2xx answer; a 429 carries
``retry_after`` so callers can implement polite backoff
(:meth:`ServeClient.submit_run` can do it for them via
``retry_on_busy=True``).
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import math
import random
import time
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.persistence import config_to_document, spec_to_document
from ..core.spec import ProfileSpec
from ..sim.topology import MachineConfig

DEFAULT_TIMEOUT_S = 30.0


def parse_retry_after(value: Optional[str]) -> Optional[int]:
    """Seconds to back off from a ``Retry-After`` header, or None.

    RFC 9110 allows both delta-seconds (``"7"``) and an HTTP-date
    (``"Wed, 21 Oct 2026 07:28:00 GMT"``); anything unparseable - or a
    date already in the past - degrades to None rather than raising, so
    a proxy's exotic header can never break the client.
    """
    if not value:
        return None
    value = value.strip()
    try:
        return max(0, int(value))
    except ValueError:
        pass
    try:
        when = parsedate_to_datetime(value)
    except (TypeError, ValueError, IndexError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    delta = (when - datetime.now(timezone.utc)).total_seconds()
    if delta <= 0:
        return None
    return int(math.ceil(delta))


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """One daemon endpoint; connections are per-request (server closes)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023, *,
                 timeout: float = DEFAULT_TIMEOUT_S,
                 tenant: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Tenant identity sent with every request (the
        #: ``X-Pathfinder-Tenant`` header); None means the daemon's
        #: default tenant.
        self.tenant = tenant

    # -- plumbing --------------------------------------------------------

    def _headers(self, payload: bool = False) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if payload:
            headers["Content-Type"] = "application/json"
        if self.tenant:
            headers["X-Pathfinder-Tenant"] = self.tenant
        return headers

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        *, timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload,
                         headers=self._headers(payload is not None))
            response = conn.getresponse()
            headers = {k.lower(): v for k, v in response.getheaders()}
            raw = response.read()
            document = json.loads(raw) if raw else None
            return response.status, headers, document
        finally:
            conn.close()

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Any:
        status, headers, document = self._request(method, path, body)
        if status >= 400:
            message = (document or {}).get("error", "") \
                if isinstance(document, dict) else str(document)
            raise ServeError(status, message,
                             parse_retry_after(headers.get("retry-after")))
        return document

    @staticmethod
    def _submission(
        spec: ProfileSpec,
        config: Optional[MachineConfig],
        *,
        tag: str = "",
        priority: int = 10,
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
        cacheable: bool = True,
        live: Any = False,
        fidelity: Any = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "spec": spec_to_document(spec),
            "tag": tag,
            "priority": priority,
            "cacheable": cacheable,
        }
        if config is not None:
            body["config"] = config_to_document(config)
        if timeout is not None:
            body["timeout"] = timeout
        if max_events is not None:
            body["max_events"] = max_events
        if live:
            if dataclasses.is_dataclass(live):
                body["live"] = dataclasses.asdict(live)
            else:
                body["live"] = live
        if fidelity is not None and fidelity != "exact":
            from ..sim.warp import fidelity_token

            body["fidelity"] = fidelity_token(fidelity)
        return body

    # -- submission ------------------------------------------------------

    def submit_run(
        self,
        spec: ProfileSpec,
        config: Optional[MachineConfig] = None,
        *,
        tag: str = "",
        priority: int = 10,
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
        cacheable: bool = True,
        live: Any = False,
        fidelity: Any = None,
        retry_on_busy: bool = False,
        max_wait: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit one job; returns its status dict (may be born done).

        ``live=True`` (or a :class:`~repro.live.LiveSpec`) asks the
        daemon to stream per-epoch digests into the job's event log and
        the daemon-wide ``/v1/live`` firehose (see :meth:`live`).
        ``fidelity="adaptive"`` (or a :class:`~repro.sim.warp.WarpSpec`)
        enables steady-state fast-forwarding; the fidelity is part of
        the job's cache key.
        """
        body = self._submission(spec, config, tag=tag, priority=priority,
                                timeout=timeout, max_events=max_events,
                                cacheable=cacheable, live=live,
                                fidelity=fidelity)
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self._call("POST", "/v1/run", body)["job"]
            except ServeError as exc:
                if not (retry_on_busy and exc.status == 429):
                    raise
                delay = exc.retry_after or 1
                if time.monotonic() + delay > deadline:
                    raise
                time.sleep(delay)

    def submit_campaign(
        self, submissions: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Submit a batch; each item is a dict as built by ``submission``.

        Admission is all-or-nothing: either every job is accepted or the
        call raises a 429 :class:`ServeError`.
        """
        return self._call("POST", "/v1/campaign", {"jobs": submissions})

    def submission(self, spec: ProfileSpec,
                   config: Optional[MachineConfig] = None,
                   **options: Any) -> Dict[str, Any]:
        """Build one campaign item (see :meth:`submit_campaign`)."""
        return self._submission(spec, config, **options)

    # -- status ----------------------------------------------------------

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll: float = 0.2, poll_max: float = 3.0,
             jitter: float = 0.25) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        Polling starts at ``poll`` seconds and backs off exponentially
        to ``poll_max``, with +/- ``jitter`` (fractional) randomisation
        on every sleep so a fleet of waiting clients does not hammer
        the daemon in lockstep.
        """
        deadline = time.monotonic() + timeout
        delay = max(0.01, poll)
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.0f}s"
                )
            spread = delay * (1.0 + random.uniform(-jitter, jitter))
            time.sleep(min(spread, max(0.0, deadline - time.monotonic())))
            delay = min(poll_max, delay * 2.0)

    def events(self, job_id: str, *,
               timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON events until it reaches a terminal state.

        ``http.client`` undoes the chunked transfer encoding, so each
        ``readline`` yields exactly one JSON event line.  A 429 answer
        (the daemon shedding load) is not fatal: the client honours the
        ``Retry-After`` hint, reconnects, and - because the event log
        replays from the start - deduplicates by ``seq`` so callers see
        every event exactly once.
        """
        deadline = time.monotonic() + timeout
        next_seq = 0
        while True:
            try:
                for event in self._events_once(job_id, deadline):
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        if seq < next_seq:
                            continue  # replayed after a reconnect
                        next_seq = seq + 1
                    yield event
                return
            except ServeError as exc:
                if exc.status != 429:
                    raise
                delay = exc.retry_after or 1
                if time.monotonic() + delay >= deadline:
                    raise
                time.sleep(delay)

    def _events_once(self, job_id: str,
                     deadline: float) -> Iterator[Dict[str, Any]]:
        """One connection's worth of the NDJSON event stream."""
        remaining = max(0.1, deadline - time.monotonic())
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=remaining)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                message = ""
                retry_after = None
                try:
                    message = json.loads(raw).get("error", "")
                except Exception:  # noqa: BLE001
                    message = raw.decode(errors="replace")
                for name, value in response.getheaders():
                    if name.lower() == "retry-after":
                        retry_after = parse_retry_after(value)
                raise ServeError(response.status, message, retry_after)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def live(self, *, max_events: Optional[int] = None,
             timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """Stream the daemon-wide live NDJSON firehose.

        Yields every job event the daemon publishes while the connection
        is open - per-epoch ``epoch`` digests of live jobs included.
        The stream ends after ``max_events`` events (when given) or when
        the daemon drains; the leading ``hello`` event is yielded too
        but does not count toward ``max_events``.
        """
        path = "/v1/live"
        if max_events is not None:
            path += f"?max_events={int(max_events)}"
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except Exception:  # noqa: BLE001
                    message = raw.decode(errors="replace")
                raise ServeError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def result(self, job_id: str) -> Dict[str, Any]:
        """Fetch a done job's full session digest (member protocol).

        Returns ``{"job_id", "key", "cache_hit", "session"}``; raises
        :class:`ServeError` 409 while the job is still in flight and
        404 for unknown or failed jobs.
        """
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    # -- ops -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/metricsz")

    def tenants(self) -> Dict[str, Any]:
        """Per-tenant policies, usage gauges and counters."""
        return self._call("GET", "/v1/tenants")["tenants"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._call("POST", "/v1/shutdown")
