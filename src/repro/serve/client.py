"""Blocking HTTP client for the ``repro.serve`` daemon.

Stdlib-only (``http.client``); covers the whole API surface::

    client = ServeClient(port=8023)
    job = client.submit_run(spec)                    # 202/200 -> job dict
    job = client.wait(job["job_id"], timeout=120)    # poll to terminal
    for event in client.events(job["job_id"]):       # or stream NDJSON
        print(event["event"])

Methods raise :class:`ServeError` on any non-2xx answer; a 429 carries
``retry_after`` so callers can implement polite backoff
(:meth:`ServeClient.submit_run` can do it for them via
``retry_on_busy=True``).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.persistence import config_to_document, spec_to_document
from ..core.spec import ProfileSpec
from ..sim.topology import MachineConfig

DEFAULT_TIMEOUT_S = 30.0


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """One daemon endpoint; connections are per-request (server closes)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023, *,
                 timeout: float = DEFAULT_TIMEOUT_S) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        *, timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"}
                         if payload else {})
            response = conn.getresponse()
            headers = {k.lower(): v for k, v in response.getheaders()}
            raw = response.read()
            document = json.loads(raw) if raw else None
            return response.status, headers, document
        finally:
            conn.close()

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None) -> Any:
        status, headers, document = self._request(method, path, body)
        if status >= 400:
            message = (document or {}).get("error", "") \
                if isinstance(document, dict) else str(document)
            retry_after = headers.get("retry-after")
            raise ServeError(status, message,
                             int(retry_after) if retry_after else None)
        return document

    @staticmethod
    def _submission(
        spec: ProfileSpec,
        config: Optional[MachineConfig],
        *,
        tag: str = "",
        priority: int = 10,
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
        cacheable: bool = True,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "spec": spec_to_document(spec),
            "tag": tag,
            "priority": priority,
            "cacheable": cacheable,
        }
        if config is not None:
            body["config"] = config_to_document(config)
        if timeout is not None:
            body["timeout"] = timeout
        if max_events is not None:
            body["max_events"] = max_events
        return body

    # -- submission ------------------------------------------------------

    def submit_run(
        self,
        spec: ProfileSpec,
        config: Optional[MachineConfig] = None,
        *,
        tag: str = "",
        priority: int = 10,
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
        cacheable: bool = True,
        retry_on_busy: bool = False,
        max_wait: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit one job; returns its status dict (may be born done)."""
        body = self._submission(spec, config, tag=tag, priority=priority,
                                timeout=timeout, max_events=max_events,
                                cacheable=cacheable)
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self._call("POST", "/v1/run", body)["job"]
            except ServeError as exc:
                if not (retry_on_busy and exc.status == 429):
                    raise
                delay = exc.retry_after or 1
                if time.monotonic() + delay > deadline:
                    raise
                time.sleep(delay)

    def submit_campaign(
        self, submissions: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Submit a batch; each item is a dict as built by ``submission``.

        Admission is all-or-nothing: either every job is accepted or the
        call raises a 429 :class:`ServeError`.
        """
        return self._call("POST", "/v1/campaign", {"jobs": submissions})

    def submission(self, spec: ProfileSpec,
                   config: Optional[MachineConfig] = None,
                   **options: Any) -> Dict[str, Any]:
        """Build one campaign item (see :meth:`submit_campaign`)."""
        return self._submission(spec, config, **options)

    # -- status ----------------------------------------------------------

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def events(self, job_id: str, *,
               timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON events until it reaches a terminal state.

        ``http.client`` undoes the chunked transfer encoding, so each
        ``readline`` yields exactly one JSON event line.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                message = ""
                try:
                    message = json.loads(raw).get("error", "")
                except Exception:  # noqa: BLE001
                    message = raw.decode(errors="replace")
                raise ServeError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    # -- ops -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/metricsz")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._call("POST", "/v1/shutdown")
