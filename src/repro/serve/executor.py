"""Synchronous job execution for the daemon's worker pool.

Each daemon worker hands one :class:`~repro.serve.jobs.ServeJob` at a
time to :meth:`JobExecutor.execute`, which runs on a thread but does all
the heavy lifting in a worker *process* - a leased worker from the warm
:class:`~repro.exec.pool.WorkerPool` when one is configured, else a
one-shot process via :func:`repro.exec.runner.run_single_job`.  Either
way the outcome dicts and wall-clock enforcement match the campaign
pool, so a hung or crashed simulation can never take the daemon down.

The executor shares one :class:`~repro.exec.cache.ResultCache` across
every client of the daemon: a result computed for one caller is a warm
hit for all later ones, and the cache key doubles as the idempotency
token (resubmitting a spec returns the recorded session).
"""

from __future__ import annotations

import logging
import time
from typing import Optional

from ..exec.cache import ResultCache
from ..exec.pool import PoolSpawnError, WorkerPool
from ..exec.runner import run_single_job
from .jobs import DONE, FAILED, RUNNING, ServeJob, counters_from_session
from .metrics import ServeMetrics

logger = logging.getLogger(__name__)


class JobExecutor:
    """Runs jobs against the shared cache with bounded retries."""

    def __init__(
        self,
        cache: Optional[ResultCache],
        metrics: ServeMetrics,
        *,
        retries: int = 0,
        backoff: float = 0.25,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.cache = cache
        self.metrics = metrics
        self.retries = retries
        self.backoff = backoff
        #: Warm worker pool jobs run on when set; a pool spawn failure
        #: degrades to the one-shot :func:`run_single_job` path.
        self.pool = pool

    def execute(self, record: ServeJob) -> None:
        """Drive one job to a terminal state (never raises)."""
        try:
            self._execute(record)
        except Exception:  # noqa: BLE001 - a worker must never die
            logger.exception("serve job %s failed unexpectedly",
                             record.job_id)
            self._finish_failed(record, "error", "internal executor error")

    def _execute(self, record: ServeJob) -> None:
        record.state = RUNNING
        record.started_at = time.time()
        record.publish("started", key=record.key)

        # A twin submission may have populated the cache since this job
        # was enqueued; re-probe before paying for a worker process.
        if self.cache is not None and record.job.cacheable:
            entry = self.cache.get_entry(record.key)
            if entry is not None:
                meta = entry.get("meta", {})
                record.events_executed = int(meta.get("events_executed", 0))
                record.total_cycles = float(meta.get("total_cycles", 0.0))
                self._finish_done(record, entry["session"], cache_hit=True)
                return

        on_progress = None
        if record.job.live:
            # Per-epoch digests from the worker land in the job's event
            # log, which both /v1/jobs/<id>/events and /v1/live stream.
            def on_progress(digest):
                data = {k: v for k, v in digest.items() if k != "event"}
                record.publish("epoch", **data)

        outcome = None
        while True:
            record.attempts += 1
            record.publish("attempt", attempt=record.attempts)
            outcome = self._run_attempt(record, on_progress)
            record.wall_time += float(outcome.get("wall_time", 0.0))
            if outcome.get("ok"):
                break
            kind = outcome.get("kind", "error")
            if record.attempts > self.retries:
                self._finish_failed(record, kind, outcome.get("error"))
                return
            record.publish("retry", attempt=record.attempts, failure=kind)
            time.sleep(self.backoff * (2 ** (record.attempts - 1)))

        record.events_executed = int(outcome.get("events_executed", 0))
        record.total_cycles = float(outcome.get("total_cycles", 0.0))
        record.num_epochs = int(outcome.get("num_epochs", 0))
        document = outcome["document"]
        if self.cache is not None and record.job.cacheable:
            try:
                self.cache.put_document(
                    record.key,
                    document,
                    meta={
                        "tag": record.tag,
                        "wall_time": record.wall_time,
                        "events_executed": record.events_executed,
                        "total_cycles": record.total_cycles,
                    },
                )
            except OSError as exc:
                logger.warning("could not persist %s: %s", record.key, exc)
        self._finish_done(record, document, cache_hit=False)

    def _run_attempt(self, record: ServeJob, on_progress) -> dict:
        """One execution attempt: warm pool first, one-shot fallback."""
        if self.pool is not None:
            try:
                return self.pool.run_job(
                    record.job.spec,
                    record.job.config,
                    max_events=record.job.max_events,
                    setup=record.job.setup,
                    timeout=record.job.timeout,
                    live=record.job.live,
                    on_progress=on_progress,
                    fidelity=record.job.fidelity,
                )
            except (PoolSpawnError, RuntimeError) as exc:
                logger.warning("pool unavailable for %s (%s); falling back "
                               "to a one-shot worker", record.job_id, exc)
        return run_single_job(
            record.job.spec,
            record.job.config,
            max_events=record.job.max_events,
            setup=record.job.setup,
            timeout=record.job.timeout,
            live=record.job.live,
            on_progress=on_progress,
            fidelity=record.job.fidelity,
        )

    # -- terminal transitions --------------------------------------------

    def _finish_done(self, record: ServeJob, session_document,
                     cache_hit: bool) -> None:
        record.counters = counters_from_session(session_document)
        record.session_document = session_document
        record.cache_hit = cache_hit
        if cache_hit:
            record.num_epochs = len(session_document.get("epochs", []))
            self.metrics.inc("jobs_cache_hit")
        record.state = DONE
        record.finished_at = time.time()
        self.metrics.inc("jobs_completed")
        self.metrics.observe_job(record.wall_time, tenant=record.tenant)
        record.publish(
            "done",
            cache_hit=cache_hit,
            wall_time=record.wall_time,
            events_executed=record.events_executed,
            total_cycles=record.total_cycles,
            counters=record.counters,
        )

    def _finish_failed(self, record: ServeJob, kind: str,
                       error: Optional[str]) -> None:
        record.failure = kind
        record.error = error
        record.state = FAILED
        record.finished_at = time.time()
        self.metrics.inc("jobs_failed")
        record.publish("failed", failure=kind, error=error,
                       attempts=record.attempts)
