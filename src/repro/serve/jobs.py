"""Job model and registry for the profiling daemon.

A :class:`ServeJob` is one accepted submission: the declarative
:class:`~repro.exec.runner.CampaignJob` it wraps, its lifecycle state,
and an append-only event log that the NDJSON streaming endpoint replays
to any number of subscribers.  Jobs are mutated from worker threads and
read from the asyncio loop, so every state transition goes through
:meth:`ServeJob.publish` / plain attribute writes that are safe under
the GIL (single writer per job; readers tolerate slightly stale views).
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exec.runner import CampaignJob

# Lifecycle states.  queued -> running -> done | failed; jobs resolved
# from the cache at submission time are born done.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

TERMINAL_STATES = (DONE, FAILED)


def counters_from_session(document: Dict[str, Any]) -> List[List[Any]]:
    """Total ``[scope, event, value]`` rows from a session digest.

    Mirrors :func:`repro.api.counters`: continuous-mode sessions sum
    their epoch deltas; aggregated-mode digests store the final
    cumulative epoch, so the sum is that epoch.
    """
    totals: Dict[tuple, float] = {}
    for epoch in document.get("epochs", []):
        for scope, event, value in epoch.get("delta", []):
            totals[(scope, event)] = totals.get((scope, event), 0.0) + value
    return [[scope, event, value] for (scope, event), value in
            sorted(totals.items())]


@dataclass
class ServeJob:
    """One submission and everything the API reports about it."""

    job_id: str
    key: str
    job: CampaignJob
    priority: int = 10
    tag: str = ""
    tenant: str = "default"
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cache_hit: bool = False
    failure: Optional[str] = None
    error: Optional[str] = None
    wall_time: float = 0.0
    events_executed: int = 0
    total_cycles: float = 0.0
    num_epochs: int = 0
    #: Total (scope, event) deltas as ``[scope, event, value]`` rows;
    #: populated when the job completes.
    counters: Optional[List[List[Any]]] = None
    #: The full session digest a completed job produced, served by the
    #: ``/v1/jobs/<id>/result`` member-protocol endpoint so a fleet
    #: coordinator can reconstruct the :class:`ProfileResult` remotely.
    #: Deliberately excluded from :meth:`as_dict` (it is large).
    session_document: Optional[Dict[str, Any]] = None
    #: Append-only NDJSON event log (each entry is one streamed line).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Optional callable every published event is forwarded to - the
    #: daemon points this at its live ingestion bus so ``/v1/live``
    #: streams all jobs' events as they happen.
    live_sink: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def publish(self, event: str, **data: Any) -> None:
        """Append one event; streamers pick it up by list position."""
        record = {
            "seq": len(self.events),
            "ts": time.time(),
            "job_id": self.job_id,
            "event": event,
        }
        record.update(data)
        record["event"] = event
        self.events.append(record)
        if self.live_sink is not None:
            self.live_sink(record)

    def as_dict(self, include_counters: bool = True) -> Dict[str, Any]:
        status = {
            "job_id": self.job_id,
            "key": self.key,
            "tag": self.tag,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "failure": self.failure,
            "error": self.error,
            "wall_time": self.wall_time,
            "events_executed": self.events_executed,
            "total_cycles": self.total_cycles,
            "num_epochs": self.num_epochs,
            "num_events": len(self.events),
        }
        if include_counters:
            status["counters"] = self.counters
        return status


class JobStore:
    """Thread-safe registry of every job the daemon has accepted.

    Memory is bounded: terminal job records beyond ``max_terminal`` (or
    older than ``max_age_s``, when set) are pruned oldest-first, so a
    daemon serving sustained traffic does not grow without bound.  A
    pruned job's ``/v1/jobs/<id>`` lookup 404s -- the same answer an
    unknown id always got -- and its result remains reachable through
    the cache by key.
    """

    def __init__(self, *, max_terminal: int = 1024,
                 max_age_s: Optional[float] = None) -> None:
        if max_terminal < 0:
            raise ValueError("max_terminal must be non-negative")
        self._lock = threading.Lock()
        self._jobs: Dict[str, ServeJob] = {}
        self._by_key: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self.max_terminal = max_terminal
        self.max_age_s = max_age_s
        self.pruned = 0

    def new_job(self, key: str, job: CampaignJob, *, priority: int = 10,
                tag: str = "", tenant: str = "default",
                job_id: Optional[str] = None) -> ServeJob:
        """Register a submission; ``job_id`` is only passed on journal
        replay so a recovered job keeps its pre-crash identity."""
        if job_id is None:
            job_id = f"j{next(self._ids):05d}-{uuid.uuid4().hex[:8]}"
        record = ServeJob(job_id=job_id, key=key, job=job,
                          priority=priority, tag=tag, tenant=tenant)
        with self._lock:
            self._jobs[job_id] = record
            self._by_key[key] = job_id
            self._prune_locked()
        return record

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def active_for_key(self, key: str) -> Optional[ServeJob]:
        """A queued/running job for this key, if any (dedupe target)."""
        with self._lock:
            job_id = self._by_key.get(key)
            job = self._jobs.get(job_id) if job_id else None
        if job is not None and not job.terminal:
            return job
        return None

    def jobs(self) -> List[ServeJob]:
        with self._lock:
            return list(self._jobs.values())

    def by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def prune(self) -> int:
        """Apply the retention policy now; returns records dropped."""
        with self._lock:
            return self._prune_locked()

    def _prune_locked(self) -> int:
        terminal = [job for job in self._jobs.values() if job.terminal]
        victims: List[ServeJob] = []
        if self.max_age_s is not None:
            horizon = time.time() - self.max_age_s
            victims.extend(job for job in terminal
                           if (job.finished_at or job.submitted_at) < horizon)
        victim_ids = {job.job_id for job in victims}
        survivors = [job for job in terminal if job.job_id not in victim_ids]
        overflow = len(survivors) - self.max_terminal
        if overflow > 0:
            survivors.sort(key=lambda job: job.finished_at
                           or job.submitted_at)
            victims.extend(survivors[:overflow])
        for job in victims:
            self._jobs.pop(job.job_id, None)
            if self._by_key.get(job.key) == job.job_id:
                del self._by_key[job.key]
        self.pruned += len(victims)
        return len(victims)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
