"""The profiling-as-a-service daemon: asyncio HTTP front, process workers.

One long-lived process owns the warm :class:`~repro.exec.cache.ResultCache`
and a bounded priority queue; any number of clients submit
:class:`~repro.core.spec.ProfileSpec` documents over HTTP/JSON and stream
progress back as NDJSON.  The HTTP layer is a deliberately small
hand-rolled HTTP/1.1 server on ``asyncio`` streams (stdlib only, one
request per connection) - the API surface is five JSON routes and one
chunked stream, not a web framework's worth of ambiguity.

Endpoints::

    POST /v1/run             submit one job        -> 202 {job}, 200 on
                                                      cache hit / dedupe
    POST /v1/campaign        submit a batch        -> 202 {jobs: [...]}
    GET  /v1/jobs            list jobs             -> 200 {jobs: [...]}
    GET  /v1/jobs/<id>       job status            -> 200 {job}
    GET  /v1/jobs/<id>/events  NDJSON event stream (chunked; ends when
                               the job reaches a terminal state)
    GET  /v1/jobs/<id>/result  full session digest of a done job
                               (the fleet member protocol: coordinators
                               rebuild ProfileResults from this)
    GET  /v1/live            daemon-wide NDJSON firehose of every job
                             event, including per-epoch ``epoch``
                             digests of jobs submitted with
                             ``"live": true`` (``?max_events=N`` to
                             bound the stream)
    POST /v1/shutdown        begin drain-then-exit -> 202
    GET  /healthz | /readyz | /metricsz

Operational behaviour:

* **admission control** - a full queue rejects submissions with ``429``
  and a ``Retry-After`` estimated from recent job durations;
* **idempotency** - the exec-layer cache key is the job identity: a spec
  already in the cache resolves instantly (born-done job), a spec
  already queued/running dedupes onto the existing job;
* **budgets** - per-job wall-clock timeouts terminate the worker
  process; event budgets ride the existing
  :class:`~repro.sim.engine.SimulationBudgetExceeded` machinery;
* **graceful shutdown** - SIGTERM/SIGINT (or ``POST /v1/shutdown``)
  stops admission, drains queued and in-flight jobs, then exits; status
  and metrics endpoints keep answering while the drain runs.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import math
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.persistence import (
    config_from_document,
    config_to_document,
    spec_from_document,
)
from ..durable import journal as wal
from ..durable.journal import JobJournal
from ..durable.store import PullThroughCache
from ..durable.tenants import (
    DEFAULT_TENANT,
    QuotaExceeded,
    TenantRegistry,
    WeightedFairQueue,
    valid_tenant_name,
)
from ..exec.cache import ResultCache, coerce_cache
from ..exec.pool import WorkerPool
from ..exec.runner import CampaignJob
from ..live.bus import IngestionBus
from ..live.spec import LiveSpec
from ..sim.warp import WarpSpec, coerce_fidelity, fidelity_token
from .executor import JobExecutor
from .jobs import DONE, JobStore, ServeJob, counters_from_session
from .metrics import ServeMetrics

logger = logging.getLogger(__name__)

#: Streamers poll the job event log at this cadence (seconds).
STREAM_POLL_S = 0.05
#: Reading a request (line, headers, body) must finish within this.
REQUEST_READ_TIMEOUT_S = 30.0
_MAX_BODY_BYTES = 64 * (1 << 20)


class BadRequest(Exception):
    """Client error carrying the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServeDaemon:
    """The daemon: queue, workers, metrics and the HTTP front-end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8023,
        *,
        workers: int = 2,
        queue_depth: int = 64,
        cache: Union[None, bool, str, ResultCache] = True,
        retries: int = 0,
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
        tenants: Any = None,
        journal_dir: Any = None,
        shared_cache: Any = None,
        max_terminal_jobs: int = 1024,
        job_retention_s: Optional[float] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_timeout = timeout
        self.default_max_events = max_events
        self.cache = coerce_cache(cache)
        if shared_cache is not None:
            if self.cache is None:
                raise ValueError(
                    "shared_cache needs a local cache tier to hydrate; "
                    "enable cache= as well"
                )
            self.cache = PullThroughCache(self.cache.root, shared_cache)
        if isinstance(tenants, TenantRegistry):
            self.tenants = tenants
        else:
            self.tenants = TenantRegistry(tenants)
        self.journal: Optional[JobJournal] = (
            JobJournal(journal_dir) if journal_dir is not None else None
        )
        self.store = JobStore(max_terminal=max_terminal_jobs,
                              max_age_s=job_retention_s)
        #: Daemon-wide live event fabric: every job event (including the
        #: per-epoch digests of live jobs) is published here and the
        #: ``GET /v1/live`` endpoint streams it as NDJSON.
        self.live_bus = IngestionBus()
        self.metrics = ServeMetrics()
        #: Warm worker pool shared by the daemon's worker threads; jobs
        #: reuse persistent forkserver processes instead of paying one
        #: spawn each (pool counters land in /metricsz as ``pool_*``).
        self.worker_pool = WorkerPool(
            workers=max(1, workers),
            metrics_hook=lambda event: self.metrics.inc(f"pool_{event}"),
        )
        self.executor = JobExecutor(self.cache, self.metrics, retries=retries,
                                    pool=self.worker_pool)
        self._seq = itertools.count()
        self._campaigns = itertools.count(1)
        self._queue: Optional[WeightedFairQueue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._in_flight = 0
        self._draining = False
        self._shutdown_requested = False
        self._finished = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the worker tasks."""
        self._loop = asyncio.get_running_loop()
        self._queue = WeightedFairQueue(self.tenants)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.workers),
            thread_name_prefix="serve-worker",
        )
        if self.journal is not None:
            self._recover_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.workers)
        ]
        logger.info("pathfinder-serve listening on http://%s:%d",
                    self.host, self.port)

    async def serve_forever(self) -> None:
        """Run until a shutdown request has fully drained; returns then."""
        if self._server is None:
            await self.start()
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
        await self._finished.wait()

    def request_shutdown(self) -> None:
        """Begin drain-then-exit; callable from signal handlers."""
        if self._shutdown_requested:
            return
        self._shutdown_requested = True
        self._draining = True
        logger.info("shutdown requested: draining %d queued, %d in flight",
                    self._queue.qsize() if self._queue else 0,
                    self._in_flight)
        asyncio.ensure_future(self._drain_and_exit())

    async def _drain_and_exit(self) -> None:
        # Sentinels are served only once the backlog is empty, so workers
        # finish every queued job before exiting.
        for _ in range(max(1, self.workers)):
            self._queue.put_sentinel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks)
        else:
            # No workers (admission-test configs): nothing can drain, but
            # the queued jobs are still owed.  Journal each as handed off
            # so a successor daemon replaying this journal re-runs them
            # instead of losing them.
            while True:
                try:
                    record = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                record.publish("handed_off")
                self.tenants.on_handoff(record.tenant)
                if self.journal is not None:
                    self.journal.append(wal.HANDOFF, record.job_id)
                self.metrics.inc("jobs_handed_off")
        # Close the live bus first: /v1/live streamers see the close
        # marker and finish, so wait_closed() (which waits for in-flight
        # handlers on 3.12+) cannot deadlock on an open stream.
        self.live_bus.close()
        self._server.close()
        await self._server.wait_closed()
        self._pool.shutdown(wait=True)
        self.worker_pool.close()
        if self.journal is not None:
            self.journal.close()
        logger.info("drained; exiting")
        self._finished.set()

    async def _worker(self) -> None:
        while True:
            record = await self._queue.get()
            if record is None:
                break
            self._in_flight += 1
            self.tenants.on_start(record.tenant)
            if self.journal is not None:
                self.journal.append(wal.STARTED, record.job_id)
            try:
                await self._loop.run_in_executor(
                    self._pool, self.executor.execute, record
                )
            finally:
                self._in_flight -= 1
                self.tenants.on_finish(record.tenant,
                                       ok=record.state == DONE)
                # Only journal genuinely terminal outcomes: a cancelled
                # worker (force stop) leaves the record non-terminal and
                # the journal replays it on restart.
                if self.journal is not None and record.terminal:
                    kind = wal.COMPLETED if record.state == DONE \
                        else wal.FAILED
                    self.journal.append(kind, record.job_id)
                # A finished job may unblock its tenant's in-flight cap.
                self._queue.kick()
                self.store.prune()

    # -- recovery --------------------------------------------------------

    def _recover_journal(self) -> None:
        """Replay the journal and re-enqueue every unfinished job.

        Runs before the listener binds, so recovered work is queued ahead
        of any new traffic.  Recovery bypasses admission quotas and queue
        depth -- these jobs were already admitted (and journaled) once.
        A job whose result landed in the cache before the crash resolves
        as a cache hit when a worker picks it up, which is what makes the
        whole scheme exactly-once *in effect*.
        """
        recovery = self.journal.recover()
        recovered = 0
        for job_id, doc in recovery.unfinished:
            tenant = str(doc.get("tenant", DEFAULT_TENANT))
            try:
                job, priority, tag, _ = self._parse_submission(doc, tenant)
            except BadRequest as exc:
                logger.warning("journal replay: job %s is unrecoverable "
                               "(%s); sealing it", job_id, exc)
                self.journal.append(wal.FAILED, job_id,
                                    {"error": f"unrecoverable replay: {exc}"})
                continue
            record = self.store.new_job(job.key(), job, priority=priority,
                                        tag=tag, tenant=tenant,
                                        job_id=job_id)
            record.live_sink = self.live_bus.publish
            record.publish("recovered", priority=priority, tenant=tenant)
            self.tenants.on_recovered(tenant)
            self.metrics.inc("jobs_recovered")
            self._queue.put_nowait(record, tenant=tenant, priority=priority)
            recovered += 1
        if recovery.records or recovery.corrupt:
            logger.info(
                "journal replay: %d records (%d corrupt) across %d "
                "segments; re-enqueued %d unfinished jobs",
                recovery.records, recovery.corrupt, recovery.segments,
                recovered,
            )
        if recovery.records:
            self.journal.compact()

    # -- submission ------------------------------------------------------

    def _parse_submission(
        self, body: Dict[str, Any], tenant: str = DEFAULT_TENANT
    ) -> Tuple[CampaignJob, int, str, Dict[str, Any]]:
        """Parse one submission body.

        Returns ``(job, priority, tag, journal_doc)``; the journal doc is
        the fully-resolved submission (derived config serialized, default
        timeout/budget folded in) so replaying it after a crash rebuilds
        the identical job regardless of the restarted daemon's defaults.
        """
        if not isinstance(body, dict) or "spec" not in body:
            raise BadRequest('body must be a JSON object with a "spec"')
        try:
            spec = spec_from_document(body["spec"])
            config = config_from_document(body.get("config"))
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"malformed spec/config: {exc}") from exc
        if config is None:
            from .. import api

            config = api.config_for(spec)
        timeout = body.get("timeout", self.default_timeout)
        max_events = body.get("max_events", self.default_max_events)
        priority = int(body.get("priority", 10))
        tag = str(body.get("tag", ""))
        live_doc = body.get("live", False)
        if isinstance(live_doc, dict):
            try:
                live: Any = LiveSpec(**live_doc)
            except (TypeError, ValueError) as exc:
                raise BadRequest(f'malformed "live" spec: {exc}') from exc
        elif isinstance(live_doc, bool):
            live = live_doc
        else:
            raise BadRequest('"live" must be a bool or a LiveSpec object')
        fidelity_doc = body.get("fidelity", "exact")
        try:
            if isinstance(fidelity_doc, dict):
                fidelity: Any = WarpSpec.from_dict(fidelity_doc)
            else:
                fidelity = coerce_fidelity(fidelity_doc) or "exact"
        except (TypeError, ValueError) as exc:
            raise BadRequest(
                f'"fidelity" must be "exact", "adaptive" or a WarpSpec '
                f"object: {exc}"
            ) from exc
        job = CampaignJob(
            spec=spec,
            config=config,
            tag=tag,
            timeout=float(timeout) if timeout is not None else None,
            max_events=int(max_events) if max_events is not None else None,
            cacheable=bool(body.get("cacheable", True)),
            live=live,
            fidelity=fidelity,
        )
        journal_doc = {
            "spec": body["spec"],
            "config": body.get("config") or config_to_document(config),
            "priority": priority,
            "tag": tag,
            "tenant": tenant,
            "timeout": job.timeout,
            "max_events": job.max_events,
            "cacheable": job.cacheable,
            "live": live_doc,
            "fidelity": fidelity_token(fidelity) or "exact",
        }
        return job, priority, tag, journal_doc

    def _retry_after(self) -> int:
        """Seconds a 429'd client should back off: one queue turn."""
        mean = self.metrics.mean_job_seconds() or 1.0
        turns = (self._queue.qsize() + self._in_flight) / max(1, self.workers)
        return max(1, min(60, int(math.ceil(mean * max(1.0, turns)))))

    def _admit(
        self,
        job: CampaignJob,
        priority: int,
        tag: str,
        tenant: str = DEFAULT_TENANT,
        *,
        journal_doc: Optional[Dict[str, Any]] = None,
        preauthorized: bool = False,
    ) -> Tuple[int, ServeJob, bool]:
        """Admission pipeline for one parsed job.

        Returns ``(http_status, record, admitted_to_queue)``; raises
        :class:`BadRequest` with 429/503 when the job cannot be taken.
        ``preauthorized`` skips the per-job tenant quota check (campaign
        submission checks the whole batch up front).  The journal append
        happens *before* the 202 is returned -- the write-ahead
        discipline that makes a crash unable to lose an acked job.
        """
        if self._draining:
            raise BadRequest("daemon is draining; not accepting work",
                             status=503)
        key = job.key()
        existing = self.store.active_for_key(key)
        if existing is not None:
            return 200, existing, False
        if self.cache is not None and job.cacheable:
            entry = self.cache.get_entry(key)
            if entry is not None:
                record = self.store.new_job(key, job, priority=priority,
                                            tag=tag, tenant=tenant)
                record.live_sink = self.live_bus.publish
                meta = entry.get("meta", {})
                record.events_executed = int(meta.get("events_executed", 0))
                record.total_cycles = float(meta.get("total_cycles", 0.0))
                record.num_epochs = len(entry["session"].get("epochs", []))
                record.counters = counters_from_session(entry["session"])
                record.session_document = entry["session"]
                record.cache_hit = True
                record.state = DONE
                record.finished_at = time.time()
                record.publish("done", cache_hit=True,
                               counters=record.counters)
                self.metrics.inc("jobs_submitted")
                self.metrics.inc("jobs_cache_hit")
                self.metrics.inc("jobs_completed")
                self.tenants.on_cache_hit(tenant)
                return 200, record, False
        if not preauthorized:
            try:
                self.tenants.check_submit(tenant)
            except QuotaExceeded as exc:
                self.metrics.inc("jobs_rejected")
                raise BadRequest(str(exc), status=429,
                                 retry_after=exc.retry_after) from exc
        if self._queue.qsize() >= self.queue_depth:
            self.metrics.inc("jobs_rejected")
            raise BadRequest(
                f"queue full ({self.queue_depth} jobs deep)", status=429
            )
        record = self.store.new_job(key, job, priority=priority, tag=tag,
                                    tenant=tenant)
        record.live_sink = self.live_bus.publish
        if self.journal is not None:
            self.journal.append(wal.ADMITTED, record.job_id, journal_doc)
        record.publish("queued", priority=priority, tag=tag, tenant=tenant)
        self.metrics.inc("jobs_submitted")
        self.tenants.on_enqueue(tenant)
        self._queue.put_nowait(record, tenant=tenant, priority=priority)
        return 202, record, True

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        endpoint = "?"
        began = time.perf_counter()
        try:
            try:
                method, path, headers, body = await asyncio.wait_for(
                    self._read_request(reader), REQUEST_READ_TIMEOUT_S
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            except BadRequest as exc:
                await self._respond_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            endpoint, handled = await self._route(
                writer, method, path, headers, body
            )
            if not handled:
                await self._respond_json(
                    writer, 404, {"error": f"no route for {method} {path}"}
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # noqa: BLE001 - a request must not kill the loop
            logger.exception("error handling request")
            try:
                await self._respond_json(
                    writer, 500, {"error": "internal server error"}
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            self.metrics.observe_request(endpoint,
                                         time.perf_counter() - began)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[Dict[str, Any]]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise BadRequest(f"malformed request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise BadRequest("request body too large", status=413)
        body: Optional[Dict[str, Any]] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise BadRequest(f"request body is not JSON: {exc}") from exc
        return method, target, headers, body

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        obj: Any,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        payload = (json.dumps(obj) + "\n").encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  413: "Payload Too Large",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    @staticmethod
    def _tenant_from(headers: Dict[str, str]) -> str:
        """The submitting tenant, from the identity header."""
        tenant = (headers or {}).get("x-pathfinder-tenant", "").strip()
        if not tenant:
            return DEFAULT_TENANT
        if not valid_tenant_name(tenant):
            raise BadRequest(f"invalid tenant name: {tenant!r}")
        return tenant

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> Tuple[str, bool]:
        """Dispatch one request; returns (endpoint template, handled)."""
        path, _, query = path.partition("?")
        if method == "GET" and path == "/healthz":
            await self._respond_json(writer, 200, {
                "status": "ok",
                "uptime_s": self.metrics.snapshot()["uptime_s"],
            })
            return "GET /healthz", True
        if method == "GET" and path == "/readyz":
            queue_full = self._queue.qsize() >= self.queue_depth
            if self._draining or queue_full:
                reason = "draining" if self._draining else "queue full"
                await self._respond_json(writer, 503, {
                    "ready": False, "reason": reason,
                })
            else:
                await self._respond_json(writer, 200, {"ready": True})
            return "GET /readyz", True
        if method == "GET" and path == "/metricsz":
            await self._respond_json(writer, 200, self._metrics_document())
            return "GET /metricsz", True
        if method == "GET" and path == "/v1/tenants":
            await self._respond_json(writer, 200,
                                     {"tenants": self.tenants.snapshot()})
            return "GET /v1/tenants", True
        if method == "POST" and path == "/v1/run":
            await self._handle_run(writer, headers, body)
            return "POST /v1/run", True
        if method == "POST" and path == "/v1/campaign":
            await self._handle_campaign(writer, headers, body)
            return "POST /v1/campaign", True
        if method == "GET" and path == "/v1/jobs":
            jobs = [j.as_dict(include_counters=False)
                    for j in self.store.jobs()]
            await self._respond_json(writer, 200, {"jobs": jobs})
            return "GET /v1/jobs", True
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method == "GET" and rest.endswith("/events"):
                await self._handle_events(writer, rest[:-len("/events")])
                return "GET /v1/jobs/<id>/events", True
            if method == "GET" and rest.endswith("/result"):
                await self._handle_result(writer, rest[:-len("/result")])
                return "GET /v1/jobs/<id>/result", True
            if method == "GET" and "/" not in rest:
                record = self.store.get(rest)
                if record is None:
                    await self._respond_json(
                        writer, 404, {"error": f"no such job: {rest}"}
                    )
                else:
                    await self._respond_json(writer, 200,
                                             {"job": record.as_dict()})
                return "GET /v1/jobs/<id>", True
        if method == "GET" and path == "/v1/live":
            await self._handle_live(writer, query)
            return "GET /v1/live", True
        if method == "POST" and path == "/v1/shutdown":
            self.request_shutdown()
            await self._respond_json(writer, 202, {"draining": True})
            return "POST /v1/shutdown", True
        return f"{method} {path}", False

    async def _handle_run(
        self,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> None:
        try:
            tenant = self._tenant_from(headers)
            job, priority, tag, journal_doc = self._parse_submission(
                body or {}, tenant
            )
            status, record, _ = self._admit(job, priority, tag, tenant,
                                            journal_doc=journal_doc)
        except BadRequest as exc:
            extra = ()
            if exc.status == 429:
                retry = exc.retry_after or self._retry_after()
                extra = (("Retry-After", str(retry)),)
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}, extra
            )
            return
        await self._respond_json(writer, status, {"job": record.as_dict()})

    async def _handle_campaign(
        self,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ) -> None:
        items = (body or {}).get("jobs")
        if not isinstance(items, list) or not items:
            await self._respond_json(
                writer, 400,
                {"error": 'body must carry a non-empty "jobs" array'},
            )
            return
        try:
            tenant = self._tenant_from(headers)
            parsed = [self._parse_submission(item, tenant)
                      for item in items]
        except BadRequest as exc:
            await self._respond_json(writer, exc.status,
                                     {"error": str(exc)})
            return
        # All-or-nothing admission: the batch either fits or 429s whole,
        # so a half-admitted sweep never needs client-side repair.  The
        # tenant's quota is checked for the whole batch for the same
        # reason; per-item admission below is then preauthorized.
        free = self.queue_depth - self._queue.qsize()
        if not self._draining and len(parsed) > free:
            self.metrics.inc("jobs_rejected", by=len(parsed))
            await self._respond_json(
                writer, 429,
                {"error": f"campaign of {len(parsed)} jobs exceeds free "
                          f"queue capacity {free}"},
                (("Retry-After", str(self._retry_after())),),
            )
            return
        if not self._draining:
            try:
                self.tenants.check_submit(tenant, n=len(parsed))
            except QuotaExceeded as exc:
                self.metrics.inc("jobs_rejected", by=len(parsed))
                retry = exc.retry_after or self._retry_after()
                await self._respond_json(
                    writer, 429, {"error": str(exc)},
                    (("Retry-After", str(retry)),),
                )
                return
        records = []
        try:
            for job, priority, tag, journal_doc in parsed:
                _, record, _ = self._admit(job, priority, tag, tenant,
                                           journal_doc=journal_doc,
                                           preauthorized=True)
                records.append(record)
        except BadRequest as exc:
            extra = (("Retry-After",
                      str(exc.retry_after or self._retry_after())),) \
                if exc.status == 429 else ()
            await self._respond_json(
                writer, exc.status,
                {"error": str(exc),
                 "jobs": [r.as_dict(include_counters=False)
                          for r in records]},
                extra,
            )
            return
        await self._respond_json(writer, 202, {
            "campaign_id": f"c{next(self._campaigns):05d}",
            "jobs": [r.as_dict(include_counters=False) for r in records],
        })

    async def _handle_result(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """Serve the full session digest of a completed job.

        409 while the job is still queued/running, 404 for unknown jobs
        and for failed jobs (which have no session to serve).  A done
        job whose in-memory document was dropped (e.g. recorded by an
        older daemon) falls back to the cache entry for its key.
        """
        record = self.store.get(job_id)
        if record is None:
            await self._respond_json(
                writer, 404, {"error": f"no such job: {job_id}"}
            )
            return
        if not record.terminal:
            await self._respond_json(
                writer, 409,
                {"error": f"job {job_id} is still {record.state}",
                 "state": record.state},
            )
            return
        document = record.session_document
        if document is None and record.state == DONE \
                and self.cache is not None and record.job.cacheable:
            entry = self.cache.get_entry(record.key)
            if entry is not None:
                document = entry["session"]
        if document is None:
            await self._respond_json(
                writer, 404,
                {"error": f"job {job_id} has no result ({record.state}:"
                          f" {record.failure or 'no session recorded'})",
                 "state": record.state},
            )
            return
        await self._respond_json(writer, 200, {
            "job_id": record.job_id,
            "key": record.key,
            "cache_hit": record.cache_hit,
            "session": document,
        })

    async def _handle_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        record = self.store.get(job_id)
        if record is None:
            await self._respond_json(
                writer, 404, {"error": f"no such job: {job_id}"}
            )
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())
        cursor = 0
        while True:
            pending = record.events[cursor:]
            for event in pending:
                line = (json.dumps(event) + "\n").encode()
                writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            cursor += len(pending)
            await writer.drain()
            if record.terminal and cursor >= len(record.events):
                break
            await asyncio.sleep(STREAM_POLL_S)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _handle_live(
        self, writer: asyncio.StreamWriter, query: str
    ) -> None:
        """Stream the daemon-wide live event fabric as chunked NDJSON.

        Every job event published while the connection is open is
        forwarded (per-epoch ``epoch`` digests included for live jobs).
        ``?max_events=N`` closes the stream after N events -- handy for
        scripted consumers; the stream also ends when the daemon drains.
        """
        params: Dict[str, str] = {}
        for pair in query.split("&"):
            if "=" in pair:
                name, _, value = pair.partition("=")
                params[name] = value
        max_events: Optional[int] = None
        if params.get("max_events"):
            try:
                max_events = int(params["max_events"])
            except ValueError:
                await self._respond_json(
                    writer, 400,
                    {"error": f"bad max_events: {params['max_events']!r}"},
                )
                return
        sub = self.live_bus.subscribe()
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())

        def _chunk(obj: Dict[str, Any]) -> None:
            line = (json.dumps(obj) + "\n").encode()
            writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")

        _chunk({"event": "hello", "ts": time.time(),
                "draining": self._draining})
        sent = 0
        try:
            while True:
                for event in sub.drain_nowait():
                    _chunk(event)
                    sent += 1
                    if max_events is not None and sent >= max_events:
                        break
                await writer.drain()
                if max_events is not None and sent >= max_events:
                    break
                if sub.closed:
                    break
                await asyncio.sleep(STREAM_POLL_S)
        finally:
            self.live_bus.unsubscribe(sub)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- metrics ---------------------------------------------------------

    def _metrics_document(self) -> Dict[str, Any]:
        document = self.metrics.snapshot()
        document["queue"] = {
            "depth": self._queue.qsize() if self._queue else 0,
            "capacity": self.queue_depth,
            "in_flight": self._in_flight,
            "workers": self.workers,
            "draining": self._draining,
        }
        document["queue"]["by_tenant"] = (
            self._queue.backlog() if self._queue is not None else {}
        )
        document["jobs_by_state"] = self.store.by_state()
        document["jobs_pruned"] = self.store.pruned
        document["tenants"] = self.tenants.snapshot()
        document["journal"] = (self.journal.stats()
                               if self.journal is not None else None)
        if self.cache is not None:
            document["cache"] = self.cache.stats()
        else:
            document["cache"] = None
        return document


class BackgroundServer:
    """Run a :class:`ServeDaemon` on a dedicated thread (tests, scripts).

    ::

        with BackgroundServer(workers=1, cache=tmp) as server:
            client = ServeClient(port=server.port)
            ...

    Exiting the context performs the same drain-then-exit path as
    SIGTERM; :meth:`stop` with ``force=True`` tears the loop down without
    draining (for admission tests that intentionally wedge the queue).
    """

    def __init__(self, **daemon_kwargs: Any) -> None:
        daemon_kwargs.setdefault("port", 0)
        self.daemon = ServeDaemon(**daemon_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stopped = threading.Event()

    @property
    def port(self) -> int:
        return self.daemon.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="pathfinder-serve")
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("serve daemon failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.daemon.start())
            self._started.set()
            try:
                loop.run_until_complete(self.daemon.serve_forever())
            except asyncio.CancelledError:
                pass  # force stop cancels serve_forever itself
        finally:
            try:
                pending = [t for t in asyncio.all_tasks(loop)
                           if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()
                self._stopped.set()

    def stop(self, force: bool = False, timeout: float = 60.0) -> None:
        if self._loop is None or self._loop.is_closed() \
                or self._stopped.is_set():
            return
        if force:
            def _cancel() -> None:
                self.daemon._draining = True
                if self.daemon._server is not None:
                    self.daemon._server.close()
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()
            self._loop.call_soon_threadsafe(_cancel)
        else:
            self._loop.call_soon_threadsafe(self.daemon.request_shutdown)
        self._stopped.wait(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop(force=exc_info[0] is not None)
