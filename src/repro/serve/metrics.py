"""Daemon metrics: counters, gauges and per-endpoint latency histograms.

The ``/metricsz`` endpoint snapshots this registry.  Endpoint latencies
reuse the log2-bucketed :class:`~repro.obs.histogram.LogHistogram` the
flight recorder introduced - the same constant-relative-resolution trick
works for request latencies spanning a sub-millisecond ``/healthz`` and
a multi-second synchronous cache probe.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..obs.histogram import LogHistogram


class ServeMetrics:
    """Thread-safe metrics registry for one daemon process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._counters: Dict[str, int] = {}
        self._endpoint_latency: Dict[str, LogHistogram] = {}
        self._job_seconds = LogHistogram()
        self._tenant_job_seconds: Dict[str, LogHistogram] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def observe_request(self, endpoint: str, seconds: float) -> None:
        """Record one served request's latency (keyed by route template)."""
        with self._lock:
            hist = self._endpoint_latency.get(endpoint)
            if hist is None:
                hist = self._endpoint_latency[endpoint] = LogHistogram()
            hist.add(max(0.0, seconds * 1e3))  # milliseconds

    def observe_job(self, seconds: float,
                    tenant: Optional[str] = None) -> None:
        with self._lock:
            self._job_seconds.add(max(0.0, seconds))
            if tenant:
                hist = self._tenant_job_seconds.get(tenant)
                if hist is None:
                    hist = self._tenant_job_seconds[tenant] = LogHistogram()
                hist.add(max(0.0, seconds))

    def mean_job_seconds(self) -> float:
        with self._lock:
            return self._job_seconds.mean

    # -- export ----------------------------------------------------------

    @staticmethod
    def _hist_summary(hist: LogHistogram) -> Dict[str, float]:
        return {
            "count": hist.count,
            "mean": hist.mean,
            "p50": hist.percentile(50.0),
            "p95": hist.percentile(95.0),
            "p99": hist.percentile(99.0),
            "max": hist.max,
        }

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            endpoints = {
                endpoint: self._hist_summary(hist)
                for endpoint, hist in sorted(self._endpoint_latency.items())
            }
            job_seconds = self._hist_summary(self._job_seconds)
            tenant_job_seconds = {
                tenant: self._hist_summary(hist)
                for tenant, hist in sorted(self._tenant_job_seconds.items())
            }
        return {
            "uptime_s": time.monotonic() - self._started_monotonic,
            "started_at": self.started_at,
            "counters": counters,
            "endpoint_latency_ms": endpoints,
            "job_seconds": job_seconds,
            "tenant_job_seconds": tenant_job_seconds,
        }
