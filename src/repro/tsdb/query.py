"""Flux-like query pipeline.

PFMaterializer translates user scenarios into query sequences like::

    db.from_("path_set")
      .where(mflow_pid="1234", dst="LLC")
      .range(start, stop)
      .values("hits")

Each stage returns a new :class:`Query` over a filtered record list;
terminal stages (``values``, ``min``/``max``/``mean``, ``pearsonr``,
``moving_average``, ``holt_winters``) produce numbers or series.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .database import Record, RecordsView
from .operators import (
    holt_winters,
    moving_average,
    pearsonr,
    series_avg,
    series_max,
    series_min,
)


class Query:
    """Immutable pipeline over a sequence of records.

    ``TimeSeriesDB.from_`` hands it a lazy :class:`RecordsView` snapshot
    (no copy); filtering stages materialise lists only for what they
    keep.
    """

    def __init__(self, records: Sequence[Record]) -> None:
        self._records = records

    # -- filtering stages --------------------------------------------------

    def range(self, start: Optional[float] = None, stop: Optional[float] = None) -> "Query":
        return Query(
            [
                r
                for r in self._records
                if (start is None or r.timestamp >= start)
                and (stop is None or r.timestamp <= stop)
            ]
        )

    def where(self, **tags: str) -> "Query":
        """Keep records whose tags match all keyword equalities."""
        return Query(
            [
                r
                for r in self._records
                if all(r.tag(k) == v for k, v in tags.items())
            ]
        )

    def filter(self, predicate: Callable[[Record], bool]) -> "Query":
        return Query([r for r in self._records if predicate(r)])

    def group_by(self, tag: str) -> Dict[str, "Query"]:
        groups: Dict[str, List[Record]] = {}
        for record in self._records:
            groups.setdefault(record.tag(tag), []).append(record)
        return {key: Query(records) for key, records in groups.items()}

    # -- extraction ------------------------------------------------------------

    def records(self) -> List[Record]:
        return list(self._records)

    def timestamps(self) -> List[float]:
        records = self._records
        if isinstance(records, RecordsView):
            return records.timestamps()
        return [r.timestamp for r in records]

    def values(self, field: str) -> List[float]:
        records = self._records
        if isinstance(records, RecordsView):
            return records.values(field)
        return [r.field(field) for r in records]

    def series(self, field: str) -> List[Tuple[float, float]]:
        return [(r.timestamp, r.field(field)) for r in self._records]

    def __len__(self) -> int:
        return len(self._records)

    @property
    def empty(self) -> bool:
        return not self._records

    # -- terminal operators ------------------------------------------------

    def min(self, field: str) -> float:
        return series_min(self.values(field))

    def max(self, field: str) -> float:
        return series_max(self.values(field))

    def mean(self, field: str) -> float:
        return series_avg(self.values(field))

    def sum(self, field: str) -> float:
        return float(sum(self.values(field)))

    def moving_average(self, field: str, window: int) -> List[float]:
        return moving_average(self.values(field), window)

    def holt_winters(self, field: str, horizon: int = 1, **kwargs) -> List[float]:
        return holt_winters(self.values(field), horizon=horizon, **kwargs)

    def pearsonr(self, field_x: str, field_y: str) -> float:
        return pearsonr(self.values(field_x), self.values(field_y))

    def pearsonr_with(self, other: "Query", field: str) -> float:
        """Correlate this query's series with another query's, aligned by
        snapshot order (cross-mFlow correlation, section 4.6 step 5).

        Fewer than two overlapping points carry no correlation signal;
        returns 0.0 rather than raising so streaming callers can poll
        before both series have warmed up.
        """
        x = self.values(field)
        y = other.values(field)
        n = min(len(x), len(y))
        if n < 2:
            return 0.0
        return pearsonr(x[:n], y[:n])
