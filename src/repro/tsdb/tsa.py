"""Classical time-series analysis: trend, seasonality, residual.

Section 4.6 step 4 applies TSA decomposition to snapshot series to expose
data trends, periodic behaviour and anomalies.  We implement the textbook
additive decomposition: centred-moving-average trend, per-phase seasonal
means, and the leftover residual; anomalies are residual outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class Decomposition:
    trend: List[float]
    seasonal: List[float]
    residual: List[float]

    def anomalies(self, z_threshold: float = 3.0) -> List[int]:
        """Indices whose residual deviates more than ``z_threshold`` sigma."""
        res = np.asarray(self.residual, dtype=np.float64)
        finite = res[np.isfinite(res)]
        if len(finite) < 2:
            return []
        sigma = finite.std()
        if sigma == 0.0:
            return []
        mu = finite.mean()
        return [
            i
            for i, value in enumerate(res)
            if np.isfinite(value) and abs(value - mu) > z_threshold * sigma
        ]


def decompose(
    values: Sequence[float], period: Optional[int] = None
) -> Decomposition:
    """Additive decomposition ``value = trend + seasonal + residual``.

    Without a ``period`` the seasonal component is zero and the trend is a
    centred moving average over ~an eighth of the series.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = len(arr)
    if n == 0:
        raise ValueError("empty series")
    window = period if period else max(3, n // 8) | 1  # odd window
    window = min(window if window % 2 else window + 1, n if n % 2 else n - 1)
    window = max(window, 1)
    trend = _centered_moving_average(arr, window)
    detrended = arr - trend
    if period and n >= 2 * period:
        seasonal_means = np.array(
            [np.nanmean(detrended[i::period]) for i in range(period)]
        )
        seasonal_means -= np.nanmean(seasonal_means)
        seasonal = np.array([seasonal_means[i % period] for i in range(n)])
    else:
        seasonal = np.zeros(n)
    residual = arr - trend - seasonal
    return Decomposition(
        trend=trend.tolist(), seasonal=seasonal.tolist(), residual=residual.tolist()
    )


def detect_period(values: Sequence[float], max_period: Optional[int] = None) -> Optional[int]:
    """Dominant period via autocorrelation; None when nothing repeats."""
    arr = np.asarray(values, dtype=np.float64)
    n = len(arr)
    if n < 6:
        return None
    arr = arr - arr.mean()
    if arr.std() == 0.0:
        return None
    limit = max_period or n // 2
    best_lag, best_corr = None, 0.3  # require meaningful correlation
    for lag in range(2, min(limit, n - 2) + 1):
        a = arr[:-lag]
        b = arr[lag:]
        denom = a.std() * b.std()
        if denom == 0:
            continue
        corr = float((a * b).mean() / denom)
        if corr > best_corr:
            best_corr = corr
            best_lag = lag
    return best_lag


def _centered_moving_average(arr: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return arr.copy()
    half = window // 2
    out = np.empty_like(arr)
    for i in range(len(arr)):
        lo = max(0, i - half)
        hi = min(len(arr), i + half + 1)
        out[i] = arr[lo:hi].mean()
    return out
