"""In-memory time-series database (the paper's InfluxDB role, section 4.6).

PFMaterializer encapsulates each profiling snapshot as a compacted record
tagged with its timestamp and stores it in a time-series database, then
explores execution characteristics with Flux queries.  This module
provides the storage engine: measurements hold :class:`Record` rows
(timestamp + tags + numeric fields); :class:`Query` (tsdb.query) gives the
Flux-like pipeline on top.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional


@dataclass(frozen=True)
class Record:
    """One row: a timestamped, tagged bag of numeric fields."""

    timestamp: float
    tags: Mapping[str, str]
    fields: Mapping[str, float]

    def tag(self, key: str, default: str = "") -> str:
        return self.tags.get(key, default)

    def field(self, key: str, default: float = 0.0) -> float:
        return self.fields.get(key, default)


class Measurement:
    """Append-mostly store of records ordered by timestamp."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: List[Record] = []
        self._timestamps: List[float] = []

    def insert(self, record: Record) -> None:
        index = bisect.bisect_right(self._timestamps, record.timestamp)
        self._timestamps.insert(index, record.timestamp)
        self._records.insert(index, record)

    def range(
        self, start: Optional[float] = None, stop: Optional[float] = None
    ) -> List[Record]:
        lo = 0 if start is None else bisect.bisect_left(self._timestamps, start)
        hi = (
            len(self._records)
            if stop is None
            else bisect.bisect_right(self._timestamps, stop)
        )
        return self._records[lo:hi]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)


class TimeSeriesDB:
    """A bag of named measurements plus the entry point for queries."""

    def __init__(self) -> None:
        self._measurements: Dict[str, Measurement] = {}

    def measurement(self, name: str) -> Measurement:
        table = self._measurements.get(name)
        if table is None:
            table = Measurement(name)
            self._measurements[name] = table
        return table

    def insert(
        self,
        measurement: str,
        timestamp: float,
        tags: Optional[Mapping[str, str]] = None,
        fields: Optional[Mapping[str, float]] = None,
    ) -> Record:
        record = Record(
            timestamp=timestamp, tags=dict(tags or {}), fields=dict(fields or {})
        )
        self.measurement(measurement).insert(record)
        return record

    def from_(self, measurement: str) -> "Query":
        """Start a Flux-like query pipeline (``from(bucket: ...)``)."""
        from .query import Query  # local import to avoid a cycle

        return Query(list(self.measurement(measurement)))

    def measurements(self) -> List[str]:
        return sorted(self._measurements)

    def __contains__(self, measurement: str) -> bool:
        return measurement in self._measurements
