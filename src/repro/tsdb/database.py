"""In-memory time-series database (the paper's InfluxDB role, section 4.6).

PFMaterializer encapsulates each profiling snapshot as a compacted record
tagged with its timestamp and stores it in a time-series database, then
explores execution characteristics with Flux queries.  This module
provides the storage engine: measurements hold :class:`Record` rows
(timestamp + tags + numeric fields); :class:`Query` (tsdb.query) gives the
Flux-like pipeline on top.

Storage is built for streaming ingestion (see ``repro.live``):

* **append fast path** - monotone timestamps (the overwhelmingly common
  case: one record per epoch) append in O(1) to a columnar timestamp
  array plus an aligned record list;
* **out-of-order merge on read** - stragglers land in a small pending
  buffer and are merged into the sorted run only when a reader shows up
  (or the buffer fills), so a burst of late records never degrades
  ingestion to O(n) per insert;
* **lazy snapshot views** - :meth:`Measurement.snapshot` hands queries a
  zero-copy view of the sorted run (appends go past its length bound;
  merges and retention trims build *new* arrays), so repeated workflow
  queries stop copying the record list;
* **bounded retention** - an optional ``max_points`` cap drops the
  oldest records in amortised-O(1) chunks, keeping million-point series
  queryable under bounded memory (downsampled history survives in the
  retention tiers, see :mod:`repro.tsdb.tiers`).
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from itertools import islice
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

#: Out-of-order records buffered before a merge is forced even without a
#: reader (bounds the pending buffer's unsorted scan cost).
MERGE_THRESHOLD = 512


@dataclass(frozen=True)
class Record:
    """One row: a timestamped, tagged bag of numeric fields."""

    timestamp: float
    tags: Mapping[str, str]
    fields: Mapping[str, float]

    def tag(self, key: str, default: str = "") -> str:
        return self.tags.get(key, default)

    def field(self, key: str, default: float = 0.0) -> float:
        return self.fields.get(key, default)


class RecordsView(Sequence):
    """Zero-copy snapshot of a measurement's sorted run.

    Holds a reference to the measurement's record list plus a length
    bound.  Appends only extend the list past the bound, and merges /
    retention trims replace the list object wholesale, so the view stays
    a consistent point-in-time snapshot without copying anything.
    """

    __slots__ = ("_records", "_length", "_source", "_version")

    def __init__(
        self,
        records: List[Record],
        length: int,
        source: Optional["Measurement"] = None,
        version: int = -1,
    ) -> None:
        self._records = records
        self._length = length
        self._source = source
        self._version = version

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            return [self._records[i] for i in range(start, stop, step)]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._records[index]

    def __iter__(self) -> Iterator[Record]:
        return islice(iter(self._records), self._length)

    def values(self, field: str) -> List[float]:
        """Field column over the snapshot; uses the measurement's cached
        columnar array when the snapshot is still current."""
        source = self._source
        if source is not None and source.version == self._version:
            return source.column(field).tolist()
        return [r.fields.get(field, 0.0) for r in self]

    def timestamps(self) -> List[float]:
        source = self._source
        if source is not None and source.version == self._version:
            return source.timestamps_array().tolist()
        return [r.timestamp for r in self]


class Measurement:
    """Append-mostly store of records ordered by timestamp."""

    __slots__ = (
        "name",
        "max_points",
        "dropped",
        "_times",
        "_records",
        "_pending",
        "_version",
        "_columns",
    )

    def __init__(self, name: str, max_points: Optional[int] = None) -> None:
        if max_points is not None and max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.name = name
        self.max_points = max_points
        #: Records dropped by the retention cap (observability counter).
        self.dropped = 0
        self._times = array("d")
        self._records: List[Record] = []
        self._pending: List[Record] = []
        self._version = 0
        self._columns: Dict[str, Tuple[int, np.ndarray]] = {}

    # -- writes ----------------------------------------------------------

    def insert(self, record: Record) -> None:
        times = self._times
        if not times or record.timestamp >= times[-1]:
            times.append(record.timestamp)
            self._records.append(record)
        else:
            # Out-of-order straggler: defer the merge instead of paying
            # list.insert's O(n) tail shift per record.
            self._pending.append(record)
            if len(self._pending) >= MERGE_THRESHOLD:
                self._consolidate()
        self._version += 1
        if self.max_points is not None:
            self._enforce_retention()

    def _consolidate(self) -> None:
        """Merge pending stragglers into the sorted run (on read)."""
        pending = self._pending
        if not pending:
            return
        # Stable sort keeps same-timestamp stragglers in insert order,
        # matching what repeated bisect_right inserts produced before.
        pending.sort(key=lambda r: r.timestamp)
        old_times, old_records = self._times, self._records
        merged_times = array("d")
        merged_records: List[Record] = []
        i = j = 0
        n, k = len(old_records), len(pending)
        while i < n and j < k:
            # '<=' keeps existing records ahead of equal-time stragglers
            # (bisect_right semantics).
            if old_times[i] <= pending[j].timestamp:
                merged_times.append(old_times[i])
                merged_records.append(old_records[i])
                i += 1
            else:
                merged_times.append(pending[j].timestamp)
                merged_records.append(pending[j])
                j += 1
        while i < n:
            merged_times.append(old_times[i])
            merged_records.append(old_records[i])
            i += 1
        while j < k:
            merged_times.append(pending[j].timestamp)
            merged_records.append(pending[j])
            j += 1
        # New objects: snapshot views over the old run stay valid.
        self._times = merged_times
        self._records = merged_records
        self._pending = []

    def _enforce_retention(self) -> None:
        """Trim the oldest records once the cap is exceeded.

        Trims in chunks (an eighth of the cap) so the O(n) front-drop is
        amortised over many appends; new list/array objects are built so
        outstanding snapshot views keep their indices.
        """
        cap = self.max_points
        total = len(self._records) + len(self._pending)
        slack = max(64, cap // 8)
        if total < cap + slack:
            return
        self._consolidate()
        excess = len(self._records) - cap
        if excess <= 0:
            return
        self._times = self._times[excess:]
        self._records = self._records[excess:]
        self.dropped += excess

    # -- reads -----------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    def snapshot(self) -> RecordsView:
        """A zero-copy, point-in-time view of the sorted records."""
        self._consolidate()
        return RecordsView(
            self._records, len(self._records), source=self, version=self._version
        )

    def column(self, field: str) -> np.ndarray:
        """The field's values as a cached columnar float64 array.

        Rebuilt lazily when the measurement changed since the last call;
        repeated queries between inserts hit the cache.
        """
        self._consolidate()
        cached = self._columns.get(field)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        records = self._records
        arr = np.fromiter(
            (r.fields.get(field, 0.0) for r in records),
            dtype=np.float64,
            count=len(records),
        )
        self._columns[field] = (self._version, arr)
        return arr

    def timestamps_array(self) -> np.ndarray:
        self._consolidate()
        cached = self._columns.get("\x00time")
        if cached is not None and cached[0] == self._version:
            return cached[1]
        arr = np.frombuffer(self._times, dtype=np.float64).copy() \
            if self._times else np.empty(0, dtype=np.float64)
        self._columns["\x00time"] = (self._version, arr)
        return arr

    def range(
        self, start: Optional[float] = None, stop: Optional[float] = None
    ) -> List[Record]:
        self._consolidate()
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = (
            len(self._records)
            if stop is None
            else bisect.bisect_right(self._times, stop)
        )
        return self._records[lo:hi]

    def __len__(self) -> int:
        return len(self._records) + len(self._pending)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.snapshot())


class TimeSeriesDB:
    """A bag of named measurements plus the entry point for queries.

    With a :class:`~repro.tsdb.tiers.RetentionPolicy`, every insert also
    feeds per-tag-set downsampling tiers (raw -> 10x -> 100x by default)
    and the raw tier is capped, so long-running streaming ingestion stays
    bounded in memory while the full history remains queryable at
    coarser resolution (``from_(name, tier=1)``).
    """

    def __init__(self, retention: Optional["RetentionPolicy"] = None) -> None:
        if retention is not None:
            from .tiers import RetentionPolicy  # local import, no cycle

            if not isinstance(retention, RetentionPolicy):
                raise TypeError(
                    f"retention must be a RetentionPolicy, got {retention!r}"
                )
        self.retention = retention
        self._measurements: Dict[str, Measurement] = {}
        self._tiers: Dict[Tuple[str, int], Measurement] = {}
        self._downsamplers: Dict[str, "TierSet"] = {}

    def measurement(self, name: str, tier: int = 0) -> Measurement:
        """The raw measurement (``tier=0``) or a downsampling tier."""
        if tier:
            return self.tier(name, tier)
        table = self._measurements.get(name)
        if table is None:
            max_points = (
                self.retention.raw_points if self.retention is not None else None
            )
            table = Measurement(name, max_points=max_points)
            self._measurements[name] = table
        return table

    def tier(self, name: str, tier: int) -> Measurement:
        """The ``tier``-th downsampling tier (1-based) of a measurement."""
        if self.retention is None:
            raise ValueError("this TimeSeriesDB has no retention tiers")
        factors = self.retention.tier_factors
        if not 1 <= tier <= len(factors):
            raise ValueError(
                f"tier must be in 1..{len(factors)}, got {tier}"
            )
        key = (name, tier)
        table = self._tiers.get(key)
        if table is None:
            table = Measurement(
                f"{name}@{factors[tier - 1]}x",
                max_points=self.retention.tier_points,
            )
            self._tiers[key] = table
        return table

    def insert(
        self,
        measurement: str,
        timestamp: float,
        tags: Optional[Mapping[str, str]] = None,
        fields: Optional[Mapping[str, float]] = None,
    ) -> Record:
        record = Record(
            timestamp=timestamp, tags=dict(tags or {}), fields=dict(fields or {})
        )
        self.measurement(measurement).insert(record)
        if self.retention is not None and self.retention.tier_factors:
            tiers = self._downsamplers.get(measurement)
            if tiers is None:
                from .tiers import TierSet

                tiers = TierSet(self, measurement, self.retention)
                self._downsamplers[measurement] = tiers
            tiers.observe(record)
        return record

    def from_(self, measurement: str, tier: int = 0) -> "Query":
        """Start a Flux-like query pipeline (``from(bucket: ...)``).

        Hands the query a lazy snapshot view of the measurement - no
        record-list copy per query.
        """
        from .query import Query  # local import to avoid a cycle

        return Query(self.measurement(measurement, tier).snapshot())

    def measurements(self) -> List[str]:
        return sorted(self._measurements)

    def __contains__(self, measurement: str) -> bool:
        return measurement in self._measurements

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-measurement point counts and retention drops."""
        doc: Dict[str, Dict[str, float]] = {}
        for name, table in sorted(self._measurements.items()):
            doc[name] = {"points": len(table), "dropped": table.dropped}
        for (name, tier), table in sorted(self._tiers.items()):
            doc[table.name] = {"points": len(table), "dropped": table.dropped}
        return doc
