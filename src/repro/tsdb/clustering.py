"""Time-series window clustering.

Section 4.6 step 3: partition snapshots into windows with similar values
so the window length reflects how long an application stays in its
current phase.  We use a bottom-up change-point segmentation: greedily
merge adjacent segments while the merged segment's spread stays within a
tolerance of the series' dynamic range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class Window:
    """One stable phase: ``[start, stop)`` indices over the snapshot list."""

    start: int
    stop: int
    mean: float

    @property
    def length(self) -> int:
        return self.stop - self.start


def cluster_windows(
    values: Sequence[float], tolerance: float = 0.15, min_length: int = 1
) -> List[Window]:
    """Split a series into maximal windows of similar magnitude.

    ``tolerance`` is the allowed within-window spread as a fraction of the
    series' overall range; windows shorter than ``min_length`` are merged
    into their closer neighbour.
    """
    if len(values) == 0:
        return []
    arr = np.asarray(values, dtype=np.float64)
    spread = float(arr.max() - arr.min())
    if spread == 0.0:
        return [Window(0, len(arr), float(arr[0]))]
    limit = tolerance * spread
    windows: List[List[int]] = [[i, i + 1] for i in range(len(arr))]
    # Greedy adjacent merging while the merged window stays tight.
    merged = True
    while merged and len(windows) > 1:
        merged = False
        out: List[List[int]] = [windows[0]]
        for window in windows[1:]:
            lo, hi = out[-1][0], window[1]
            segment = arr[lo:hi]
            if segment.max() - segment.min() <= limit:
                out[-1][1] = hi
                merged = True
            else:
                out.append(window)
        windows = out
    # Absorb too-short windows into the neighbour with the closer mean.
    result = [
        Window(lo, hi, float(arr[lo:hi].mean())) for lo, hi in windows
    ]
    changed = True
    while changed and len(result) > 1:
        changed = False
        for i, window in enumerate(result):
            if window.length >= min_length:
                continue
            neighbours = []
            if i > 0:
                neighbours.append(i - 1)
            if i + 1 < len(result):
                neighbours.append(i + 1)
            target = min(
                neighbours, key=lambda j: abs(result[j].mean - window.mean)
            )
            lo = min(result[target].start, window.start)
            hi = max(result[target].stop, window.stop)
            merged_window = Window(lo, hi, float(arr[lo:hi].mean()))
            result = [
                w for j, w in enumerate(result) if j not in (i, target)
            ]
            result.append(merged_window)
            result.sort(key=lambda w: w.start)
            changed = True
            break
    return result


def dominant_window(windows: List[Window]) -> Window:
    """The longest stable phase."""
    if not windows:
        raise ValueError("no windows")
    return max(windows, key=lambda w: w.length)
