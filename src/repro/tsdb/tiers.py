"""Downsampling/retention tiers for the time-series database.

Long-running streaming ingestion (``repro.live``) produces one record
per (measurement, tag set) per epoch, forever.  A flat store either
grows without bound or forgets history.  The tier scheme keeps both
properties bounded:

* **tier 0 (raw)** holds the most recent ``raw_points`` records per
  measurement at full resolution;
* **tier k** holds one record per ``tier_factors[k-1]`` raw records
  (default raw -> 10x -> 100x), each a mean over its block's numeric
  fields, capped at ``tier_points``.

Blocks are per tag signature: a series tagged ``pid=alpha`` downsamples
independently from ``pid=beta`` sharing the measurement, so coarse
queries can still ``where(tag, value)``.  A tier record's timestamp is
the last raw timestamp of its block (the moment the aggregate became
known); a trailing partial block is not emitted until it fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Record, TimeSeriesDB

#: Default tier cascade: one 10x tier and one 100x tier over raw.
DEFAULT_TIER_FACTORS: Tuple[int, ...] = (10, 100)


@dataclass(frozen=True)
class RetentionPolicy:
    """How much of each resolution a :class:`TimeSeriesDB` keeps.

    ``tier_factors`` are multiples of the *raw* cadence and must be
    strictly increasing; each later tier must be an integer multiple of
    the previous so tiers cascade (tier 2 aggregates tier-1 blocks).
    """

    raw_points: int = 100_000
    tier_factors: Tuple[int, ...] = DEFAULT_TIER_FACTORS
    tier_points: int = 100_000

    def __post_init__(self) -> None:
        if self.raw_points < 1:
            raise ValueError("raw_points must be >= 1")
        if self.tier_points < 1:
            raise ValueError("tier_points must be >= 1")
        factors = tuple(int(f) for f in self.tier_factors)
        object.__setattr__(self, "tier_factors", factors)
        prev = 1
        for f in factors:
            if f <= prev:
                raise ValueError(
                    "tier_factors must be strictly increasing multiples, "
                    f"got {factors}"
                )
            if f % prev:
                raise ValueError(
                    f"each tier factor must divide the next, got {factors}"
                )
            prev = f


def tag_signature(tags: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    """Hashable identity of a record's tag set (sorted key/value pairs)."""
    return tuple(sorted(tags.items()))


@dataclass
class _Accumulator:
    """Running mean over one block of one tagged series."""

    count: int = 0
    last_timestamp: float = 0.0
    sums: Dict[str, float] = field(default_factory=dict)

    def add(self, record: "Record") -> None:
        self.count += 1
        self.last_timestamp = record.timestamp
        for key, value in record.fields.items():
            self.sums[key] = self.sums.get(key, 0.0) + value

    def mean_fields(self) -> Dict[str, float]:
        n = self.count
        return {key: total / n for key, total in self.sums.items()}


class TierSet:
    """The downsampling cascade for one measurement.

    ``observe`` is O(active tag sets is irrelevant - O(1) per record):
    the record lands in its series' tier-1 accumulator; every ``factor``
    records the block's mean is emitted into the tier measurement and
    handed to the next tier's accumulator in turn.
    """

    def __init__(
        self, db: "TimeSeriesDB", measurement: str, policy: RetentionPolicy
    ) -> None:
        self._db = db
        self._measurement = measurement
        # Per-tier block sizes in units of the *previous* tier's records.
        self._strides: List[int] = []
        prev = 1
        for factor in policy.tier_factors:
            self._strides.append(factor // prev)
            prev = factor
        # accumulators[tier_index][tag_signature]
        self._accumulators: List[Dict[Tuple[Tuple[str, str], ...], _Accumulator]] = [
            {} for _ in self._strides
        ]

    def observe(self, record: "Record") -> None:
        self._feed(0, record)

    def _feed(self, tier_index: int, record: "Record") -> None:
        if tier_index >= len(self._strides):
            return
        table = self._accumulators[tier_index]
        sig = tag_signature(record.tags)
        acc = table.get(sig)
        if acc is None:
            acc = table[sig] = _Accumulator()
        acc.add(record)
        if acc.count < self._strides[tier_index]:
            return
        from .database import Record as _Record

        emitted = _Record(
            timestamp=acc.last_timestamp,
            tags=dict(record.tags),
            fields=acc.mean_fields(),
        )
        del table[sig]
        self._db.tier(self._measurement, tier_index + 1).insert(emitted)
        self._feed(tier_index + 1, emitted)
