"""In-memory time-series database with Flux-like queries (InfluxDB stand-in).

PFMaterializer (section 4.6) layers a time-series database over the
profiler core; this package provides that substrate: measurements of
tagged records, a chainable query pipeline, the section's named operators
(movingAverage, holtWinters, pearsonr), phase-window clustering, and
trend/seasonality/residual decomposition.
"""

from .clustering import Window, cluster_windows, dominant_window
from .database import Measurement, Record, RecordsView, TimeSeriesDB
from .operators import (
    holt_winters,
    moving_average,
    pearsonr,
    series_avg,
    series_max,
    series_min,
)
from .query import Query
from .tiers import RetentionPolicy
from .tsa import Decomposition, decompose, detect_period

__all__ = [
    "Decomposition",
    "Measurement",
    "Query",
    "Record",
    "RecordsView",
    "RetentionPolicy",
    "TimeSeriesDB",
    "Window",
    "cluster_windows",
    "decompose",
    "detect_period",
    "dominant_window",
    "holt_winters",
    "moving_average",
    "pearsonr",
    "series_avg",
    "series_max",
    "series_min",
]
