"""Flux-style series operators.

The operators PFMaterializer's workflows call out in section 4.6:
``min()``, ``max()``, ``avg()``, ``movingAverage()``, ``holtWinters()``
(forecast of regular patterns) and ``pearsonr()`` (cross-flow correlation,
used by the bandwidth-partition case to reach r=0.998 in Figure 11-b).
All operate on plain sequences of floats.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def series_min(values: Sequence[float]) -> float:
    _require_nonempty(values)
    return float(np.min(values))


def series_max(values: Sequence[float]) -> float:
    _require_nonempty(values)
    return float(np.max(values))


def series_avg(values: Sequence[float]) -> float:
    _require_nonempty(values)
    return float(np.mean(values))


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing moving average; the first ``window-1`` points average the
    prefix (InfluxDB emits fewer points; a full-length output is easier to
    align against the original series)."""
    _require_nonempty(values)
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(values, dtype=np.float64)
    cumsum = np.cumsum(arr)
    out = np.empty_like(arr)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out.tolist()


def holt_winters(
    values: Sequence[float],
    horizon: int = 1,
    alpha: float = 0.5,
    beta: float = 0.3,
    gamma: float = 0.3,
    season_length: Optional[int] = None,
) -> List[float]:
    """Holt-Winters forecast (additive seasonality when season_length set).

    Returns ``horizon`` forecast points past the end of the series, or an
    empty forecast for an empty series (streaming callers poll before the
    first epoch lands).  Used to test whether an application's access
    pattern is predictable (section 4.6 step 4).
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if len(values) == 0:
        return []
    arr = np.asarray(values, dtype=np.float64)
    n = len(arr)
    if season_length and n >= 2 * season_length:
        m = season_length
        # Seasonal indices from the first two seasons only (classic
        # init).  Deliberately independent of n so the online operator
        # (repro.live.incremental) reproduces this path exactly without
        # buffering the whole series.
        season = arr[: 2 * m].reshape(2, m).mean(axis=0)
        season = season - season.mean()
        level = arr[:m].mean()
        trend = (arr[m : 2 * m].mean() - arr[:m].mean()) / m
        for i in range(n):
            s_idx = i % m
            prev_level = level
            level = alpha * (arr[i] - season[s_idx]) + (1 - alpha) * (
                level + trend
            )
            trend = beta * (level - prev_level) + (1 - beta) * trend
            season[s_idx] = gamma * (arr[i] - level) + (1 - gamma) * season[s_idx]
        return [
            float(level + (h + 1) * trend + season[(n + h) % m])
            for h in range(horizon)
        ]
    # Double exponential smoothing (no seasonality).
    level = arr[0]
    trend = arr[1] - arr[0] if n > 1 else 0.0
    for i in range(1, n):
        prev_level = level
        level = alpha * arr[i] + (1 - alpha) * (level + trend)
        trend = beta * (level - prev_level) + (1 - beta) * trend
    return [float(level + (h + 1) * trend) for h in range(horizon)]


def pearsonr(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length series.

    Degenerate series - fewer than two points, or zero variance - carry
    no correlation signal and yield 0.0 (never NaN, never a raise), so
    streaming callers can query mid-warm-up.  A length mismatch is still
    a caller bug and raises.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        return 0.0
    ax = np.asarray(x, dtype=np.float64)
    ay = np.asarray(y, dtype=np.float64)
    sx = ax.std()
    sy = ay.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((ax - ax.mean()) * (ay - ay.mean())).mean() / (sx * sy))


def _require_nonempty(values: Sequence[float]) -> None:
    if len(values) == 0:
        raise ValueError("empty series")
