"""Set-associative caches with pluggable replacement.

Tag arrays are functional: workloads generate real addresses, so hit/miss
behaviour (and therefore every locality effect the paper measures - LFB hit
shifts, L2 hit drops under CXL, LLC occupancy changes) emerges from actual
reuse distances rather than from tuned probabilities.

Lines carry MESIF coherence states (section 2.2); the CHA's directory
drives the state transitions, the cache itself only stores them.

Hot-path layout: each set keeps a ``tag -> way`` index next to the
``way -> line`` store so lookup/probe/fill are O(1) dict probes instead of
linear tag scans; line objects are ``__slots__``-flat.  See docs/ENGINE.md.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .request import CACHELINE


class MESIF(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"
    FORWARD = "F"


@dataclass(slots=True)
class CacheLine:
    tag: int
    state: MESIF = MESIF.EXCLUSIVE
    dirty: bool = False
    # S3-FIFO metadata
    freq: int = 0
    in_main: bool = False


@dataclass(slots=True)
class EvictedLine:
    """What fell out of a set on fill: address plus write-back need."""

    address: int
    dirty: bool
    state: MESIF


class ReplacementPolicy:
    """Interface: pick a victim way index within one set."""

    def touch(self, cache_set: "CacheSet", way: int) -> None:
        raise NotImplementedError

    def victim(self, cache_set: "CacheSet") -> int:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used over the set's recency list."""

    def touch(self, cache_set: "CacheSet", way: int) -> None:
        order = cache_set.recency
        if order[-1] != way:
            order.remove(way)
            order.append(way)

    def victim(self, cache_set: "CacheSet") -> int:
        return cache_set.recency[0]


class S3FIFOPolicy(ReplacementPolicy):
    """S3-FIFO (SOSP'23): small probationary FIFO + main FIFO + ghost.

    The paper models on-path components as "a variant of the FCFS queue
    (S3-FIFO)" in section 4.5, so we provide it as an alternative LLC
    policy.  New lines enter the small queue; lines re-referenced while
    there (freq > 0) are promoted into main on eviction; main evicts lazily,
    demoting once-unused lines.
    """

    def touch(self, cache_set: "CacheSet", way: int) -> None:
        cache_set.lines[way].freq = min(3, cache_set.lines[way].freq + 1)

    def victim(self, cache_set: "CacheSet") -> int:
        # Evict from the small (probationary) FIFO first.
        for attempt in range(2 * len(cache_set.recency)):
            if not cache_set.small_fifo and not cache_set.main_fifo:
                break
            if cache_set.small_fifo:
                way = cache_set.small_fifo[0]
                line = cache_set.lines[way]
                if line.freq > 0:
                    # promote to main
                    cache_set.small_fifo.popleft()
                    line.in_main = True
                    line.freq = 0
                    cache_set.main_fifo.append(way)
                    continue
                cache_set.small_fifo.popleft()
                return way
            way = cache_set.main_fifo[0]
            line = cache_set.lines[way]
            if line.freq > 0:
                cache_set.main_fifo.popleft()
                line.freq -= 1
                cache_set.main_fifo.append(way)
                continue
            cache_set.main_fifo.popleft()
            return way
        # Degenerate fallback: first valid way.
        return cache_set.recency[0]


class CacheSet:
    """One set: way->line store plus a tag->way index kept in lockstep."""

    __slots__ = ("lines", "tags", "recency", "small_fifo", "main_fifo")

    def __init__(self) -> None:
        self.lines: Dict[int, CacheLine] = {}   # way -> line
        self.tags: Dict[int, int] = {}          # tag -> way (any state)
        self.recency: List[int] = []            # LRU order
        self.small_fifo: Deque[int] = deque()   # S3-FIFO
        self.main_fifo: Deque[int] = deque()


class Cache:
    """One level of set-associative cache (L1D, L2, or an LLC slice)."""

    __slots__ = (
        "name",
        "line_size",
        "ways",
        "num_sets",
        "sets",
        "policy",
        "_policy_name",
        "hits",
        "misses",
        "observer",
    )

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        name: str = "cache",
        policy: str = "lru",
        line_size: int = CACHELINE,
    ) -> None:
        self.name = name
        self.line_size = line_size
        self.ways = ways
        # Round capacity down to a whole number of sets.
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets < 1:
            raise ValueError(f"{name}: zero sets")
        self.sets: Dict[int, CacheSet] = {}
        if policy == "lru":
            self.policy: ReplacementPolicy = LRUPolicy()
        elif policy == "s3fifo":
            self.policy = S3FIFOPolicy()
        else:
            raise ValueError(f"unknown replacement policy: {policy}")
        self._policy_name = policy
        self.hits = 0
        self.misses = 0
        # Optional flight-recorder hook (``on_cache_lookup(name, hit)``);
        # None unless a traced profiling session attached a recorder.
        self.observer = None

    # -- indexing ----------------------------------------------------------

    def _index(self, address: int) -> Tuple[int, int]:
        line = address // self.line_size
        return line % self.num_sets, line // self.num_sets  # (set, tag)

    def _set(self, set_index: int) -> CacheSet:
        cache_set = self.sets.get(set_index)
        if cache_set is None:
            cache_set = CacheSet()
            self.sets[set_index] = cache_set
        return cache_set

    # -- operations ---------------------------------------------------------

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Probe the tag array.  Counts a hit/miss; updates recency on hit."""
        line_no = address // self.line_size
        set_index = line_no % self.num_sets
        cache_set = self.sets.get(set_index)
        if cache_set is None:
            cache_set = CacheSet()
            self.sets[set_index] = cache_set
            way = None
        else:
            way = cache_set.tags.get(line_no // self.num_sets)
        if way is not None:
            line = cache_set.lines[way]
            if line.state is not MESIF.INVALID:
                self.hits += 1
                if self.observer is not None:
                    self.observer.on_cache_lookup(self.name, True)
                if touch:
                    self.policy.touch(cache_set, way)
                return line
        self.misses += 1
        if self.observer is not None:
            self.observer.on_cache_lookup(self.name, False)
        return None

    def probe(self, address: int) -> Optional[CacheLine]:
        """Tag check with no side effects (used by snoops and tests)."""
        set_index, tag = self._index(address)
        cache_set = self.sets.get(set_index)
        if cache_set is None:
            return None
        way = cache_set.tags.get(tag)
        if way is None:
            return None
        line = cache_set.lines[way]
        return line if line.state is not MESIF.INVALID else None

    def fill(
        self, address: int, state: MESIF = MESIF.EXCLUSIVE, dirty: bool = False
    ) -> Optional[EvictedLine]:
        """Install a line, returning whatever got evicted (if anything)."""
        set_index, tag = self._index(address)
        cache_set = self._set(set_index)
        # Refill of an already-present line just updates state.
        way = cache_set.tags.get(tag)
        if way is not None:
            line = cache_set.lines[way]
            line.state = state
            line.dirty = line.dirty or dirty
            return None
        evicted: Optional[EvictedLine] = None
        if len(cache_set.lines) >= self.ways:
            victim_way = self.policy.victim(cache_set)
            victim = cache_set.lines.pop(victim_way)
            del cache_set.tags[victim.tag]
            if victim_way in cache_set.recency:
                cache_set.recency.remove(victim_way)
            if victim_way in cache_set.small_fifo:
                cache_set.small_fifo.remove(victim_way)
            if victim_way in cache_set.main_fifo:
                cache_set.main_fifo.remove(victim_way)
            if victim.state is not MESIF.INVALID:
                evicted = EvictedLine(
                    address=self._reconstruct(set_index, victim.tag),
                    dirty=victim.dirty or victim.state is MESIF.MODIFIED,
                    state=victim.state,
                )
            way = victim_way
        else:
            way = len(cache_set.lines)
            while way in cache_set.lines:
                way += 1
        cache_set.lines[way] = CacheLine(tag=tag, state=state, dirty=dirty)
        cache_set.tags[tag] = way
        cache_set.recency.append(way)
        if self._policy_name == "s3fifo":
            cache_set.small_fifo.append(way)
        return evicted

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Drop a line (snoop invalidation).  Returns the old line."""
        set_index, tag = self._index(address)
        cache_set = self.sets.get(set_index)
        if cache_set is None:
            return None
        way = cache_set.tags.get(tag)
        if way is None:
            return None
        line = cache_set.lines.pop(way)
        del cache_set.tags[tag]
        if way in cache_set.recency:
            cache_set.recency.remove(way)
        if way in cache_set.small_fifo:
            cache_set.small_fifo.remove(way)
        if way in cache_set.main_fifo:
            cache_set.main_fifo.remove(way)
        return line

    def set_state(self, address: int, state: MESIF) -> bool:
        line = self.probe(address)
        if line is None:
            return False
        line.state = state
        return True

    def _reconstruct(self, set_index: int, tag: int) -> int:
        return (tag * self.num_sets + set_index) * self.line_size

    # -- introspection ---------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_size

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1
            for cache_set in self.sets.values()
            for line in cache_set.lines.values()
            if line.state is not MESIF.INVALID
        )

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
