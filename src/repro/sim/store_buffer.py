"""Store Buffer (SB).

Per-core FIFO with dozens of entries decoupling store execution from
retirement (section 2.2, path #2).  A store occupies an entry from issue
until its cacheline write commits; commitment requires ownership, so a
store to a line not held in M/E triggers an RFO and the entry drains only
when that RFO's data returns.  When the SB fills the pipeline stalls - the
two scenarios the core PMU distinguishes (Table 1) are "loads still being
issued" (``resource_stalls.sb``) versus write-only pressure
(``exe_activity.bound_on_stores``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .engine import Engine, Waiter
from .queues import QueueStats


@dataclass
class SBEntry:
    line: int
    issued_at: float


class StoreBuffer:
    """Bounded store queue for one core.

    Entries are freed by the core model when the store's write commits
    (immediately for an owned line, or at RFO completion otherwise).
    Occupancy is metered so PFAnalyzer can reason about write intensity.
    """

    def __init__(self, engine: Engine, entries: int = 56, core_id: int = 0) -> None:
        if entries <= 0:
            raise ValueError("store buffer needs at least one entry")
        self.engine = engine
        self.capacity = entries
        self.core_id = core_id
        self._occupied = 0
        self.stats = QueueStats()
        self.stats._capacity = entries
        self.space_waiter = Waiter(engine)
        self.allocations = 0

    @property
    def full(self) -> bool:
        return self._occupied >= self.capacity

    def __len__(self) -> int:
        return self._occupied

    def allocate(self, line: int) -> Optional[SBEntry]:
        """Take an entry for a store to ``line``; None when full."""
        if self.full:
            return None
        self._occupied += 1
        self.stats.on_insert(self.engine.now)
        self.allocations += 1
        return SBEntry(line=line, issued_at=self.engine.now)

    def release(self, entry: SBEntry) -> None:
        """The store committed; free its slot and wake a stalled producer."""
        if self._occupied <= 0:
            raise ValueError("releasing into an empty store buffer")
        self._occupied -= 1
        self.stats.on_remove(self.engine.now)
        self.space_waiter.wake_one()

    def sync(self, now: float) -> None:
        self.stats.sync(now)
