"""Monitored queueing primitives.

Every uncore PMU counter in the paper (Tables 3-4) is one of three shapes:
number of inserts, cycles-not-empty, or time-integrated occupancy, all over
some hardware FIFO (RPQ/WPQ, TOR, M2PCIe ingress, CXL packing buffers).
:class:`MonitoredQueue` provides exactly those three meters over a bounded
FIFO; :class:`Server` adds a service process so a queue plus a server form
one stage of the Clos network.

These classes sit on the simulator's hottest path (every request crosses
several stages), so the layout is deliberately flat: ``__slots__``
instances, meters advanced only when the clock actually moved, and a
pass-through fast path in :class:`Server` for the common
empty-queue/idle-server case.  Metering and observer hooks fire in exactly
the same order on both paths.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import Engine, Waiter


class QueueStats:
    """Insert / not-empty / full / occupancy meters for one FIFO.

    Occupancy and cycle counters are integrals over time, accumulated
    lazily: ``_advance`` folds in ``depth * (now - last_update)`` whenever
    depth changes or a reader syncs.
    """

    __slots__ = (
        "inserts",
        "occupancy_integral",
        "cycles_not_empty",
        "cycles_full",
        "_depth",
        "_capacity",
        "_last_update",
    )

    def __init__(self) -> None:
        self.inserts = 0
        self.occupancy_integral = 0.0   # sum of depth over cycles
        self.cycles_not_empty = 0.0
        self.cycles_full = 0.0
        self._depth = 0
        self._capacity: Optional[int] = None
        self._last_update = 0.0

    def _advance(self, now: float) -> None:
        dt = now - self._last_update
        if dt < 0:
            raise ValueError("time went backwards in queue stats")
        if dt:
            depth = self._depth
            self.occupancy_integral += depth * dt
            if depth > 0:
                self.cycles_not_empty += dt
            if self._capacity is not None and depth >= self._capacity:
                self.cycles_full += dt
            self._last_update = now

    def on_insert(self, now: float) -> None:
        if now != self._last_update:
            self._advance(now)
        self.inserts += 1
        self._depth += 1

    def on_remove(self, now: float) -> None:
        if now != self._last_update:
            self._advance(now)
        if self._depth <= 0:
            raise ValueError("removing from empty queue")
        self._depth -= 1

    def on_transit(self, now: float) -> None:
        """An insert+remove pair at one instant (pass-through fast path).

        Equivalent to ``on_insert(now); on_remove(now)``: one meter
        advance, one insert, and no net depth change.
        """
        if now != self._last_update:
            self._advance(now)
        self.inserts += 1

    def sync(self, now: float) -> None:
        self._advance(now)

    @property
    def depth(self) -> int:
        return self._depth

    def mean_occupancy(self, elapsed: float) -> float:
        """Average queue length over ``elapsed`` cycles."""
        if elapsed <= 0:
            return 0.0
        return self.occupancy_integral / elapsed


class MonitoredQueue:
    """Bounded FIFO with PMU-style meters and blocking producers.

    ``try_push`` is non-blocking (returns False when full, letting the
    caller count a stall and park on :attr:`space_waiter`); ``pop`` frees a
    slot and wakes one parked producer.
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "stats",
        "_items",
        "space_waiter",
        "observer",
    )

    def __init__(
        self,
        engine: Engine,
        capacity: Optional[int] = None,
        name: str = "queue",
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.stats = QueueStats()
        self.stats._capacity = capacity
        self._items: Deque[Any] = deque()
        self.space_waiter = Waiter(engine)
        # Optional flight-recorder hook (``on_queue_push``/``on_queue_pop``);
        # None unless a traced profiling session attached a recorder.
        self.observer: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def try_push(self, item: Any) -> bool:
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self.stats.on_insert(self.engine.now)
        if self.observer is not None:
            self.observer.on_queue_push(self, item)
        return True

    def push(self, item: Any) -> None:
        """Push that trusts the caller already checked ``full``."""
        if not self.try_push(item):
            raise OverflowError(f"{self.name} is full (cap={self.capacity})")

    def pop(self) -> Any:
        if not self._items:
            raise IndexError(f"{self.name} is empty")
        item = self._items.popleft()
        self.stats.on_remove(self.engine.now)
        if self.observer is not None:
            self.observer.on_queue_pop(self, item)
        self.space_waiter.wake_one()
        return item

    def peek(self) -> Any:
        if not self._items:
            raise IndexError(f"{self.name} is empty")
        return self._items[0]


class Server:
    """A k-server service stage draining a :class:`MonitoredQueue`.

    ``service_time(item)`` returns the cycles one server spends on an item;
    ``on_done(item)`` fires when service completes.  Throughput is thus
    ``servers / mean_service_time`` - this is how every bandwidth limit in
    the simulator (DRAM channels, FlexBus link, CXL media) is expressed.
    """

    __slots__ = (
        "engine",
        "queue",
        "service_time",
        "on_done",
        "servers",
        "name",
        "busy",
        "busy_integral",
        "_last_update",
        "completed",
    )

    def __init__(
        self,
        engine: Engine,
        queue: MonitoredQueue,
        service_time: Callable[[Any], float],
        on_done: Callable[[Any], None],
        servers: int = 1,
        name: str = "server",
    ) -> None:
        if servers <= 0:
            raise ValueError(f"{name}: need at least one server")
        self.engine = engine
        self.queue = queue
        self.service_time = service_time
        self.on_done = on_done
        self.servers = servers
        self.name = name
        self.busy = 0
        self.busy_integral = 0.0
        self._last_update = 0.0
        self.completed = 0

    def _account(self) -> None:
        now = self.engine.now
        dt = now - self._last_update
        if dt:
            self.busy_integral += self.busy * dt
            self._last_update = now

    def submit(self, item: Any) -> bool:
        """Enqueue ``item`` and kick a server if one is idle."""
        queue = self.queue
        if self.busy < self.servers and not queue._items:
            # Pass-through fast path: the item crosses the (empty) queue
            # into an idle server at one instant.  Meter the insert+remove
            # pair and fire the hooks in the same order as push()+pop().
            now = self.engine.now
            observer = queue.observer
            if observer is None:
                queue.stats.on_transit(now)
            else:
                stats = queue.stats
                stats.on_insert(now)
                observer.on_queue_push(queue, item)
                stats.on_remove(now)
                observer.on_queue_pop(queue, item)
            waiter = queue.space_waiter
            if waiter._waiting:
                waiter.wake_one()
            dt = now - self._last_update
            if dt:
                self.busy_integral += self.busy * dt
                self._last_update = now
            self.busy += 1
            delay = self.service_time(item)
            if delay < 0:
                raise ValueError(f"{self.name}: negative service time")
            self.engine.after(delay, lambda it=item: self._finish(it))
            return True
        if not queue.try_push(item):
            return False
        self._dispatch()
        return True

    def _dispatch(self) -> None:
        while self.busy < self.servers and self.queue._items:
            item = self.queue.pop()
            self._account()
            self.busy += 1
            delay = self.service_time(item)
            if delay < 0:
                raise ValueError(f"{self.name}: negative service time")
            self.engine.after(delay, lambda it=item: self._finish(it))

    def _finish(self, item: Any) -> None:
        now = self.engine.now
        dt = now - self._last_update
        if dt:
            self.busy_integral += self.busy * dt
            self._last_update = now
        self.busy -= 1
        self.completed += 1
        self.on_done(item)
        if self.queue._items:
            self._dispatch()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.busy_integral / (elapsed * self.servers)
