"""CXL Type-3 memory device.

The device (an Agilex FPGA card with DDR4 on the SPR testbed, Micron CZ120
on EMR) receives M2S Req/RwD flits, packs them into ingress packing
buffers (Mem Request for reads, Mem Data for writes), drains them through
its own memory controller into the media, and emits S2M DRS/NDR through
egress packing buffers (section 3.5, Table 4 ``unc_cxlcm_*`` counters).

Because the device has its own command queues, host-side IMC queues stay
empty for CXL traffic - the paper's Figure 4-a observation - and queue
build-up under load happens *here*, where PFEstimator's back-propagation
starts (Algorithm 2 line 3).
"""

from __future__ import annotations

import enum
from typing import Callable

from ..pmu.registry import CounterRegistry
from .dram import DRAMTiming
from .engine import Engine
from .queues import MonitoredQueue, Server
from .request import MemRequest


class QoSLoadClass(enum.Enum):
    """CXL 3.x QoS telemetry for memory (section 3.5)."""

    LIGHT = "light"
    OPTIMAL = "optimal"
    MODERATE_OVERLOAD = "moderate_overload"
    SEVERE_OVERLOAD = "severe_overload"


class CXLDevice:
    """Type-3 host-managed device memory endpoint."""

    __slots__ = (
        "engine",
        "pmu",
        "scope",
        "timing",
        "controller_latency",
        "rx_req",
        "rx_data",
        "mc_queue",
        "unpack_latency",
        "_mc_server",
        "_respond_latency",
        "recorder",
        "tx_inserts_mem_req",
        "tx_inserts_mem_data",
        "reads_served",
        "writes_served",
    )

    def __init__(
        self,
        engine: Engine,
        pmu: CounterRegistry,
        timing: DRAMTiming,
        scope: str = "cxl0",
        pack_buf_depth: int = 32,
        mc_queue_depth: int = 48,
        controller_latency: float = 60.0,
    ) -> None:
        self.engine = engine
        self.pmu = pmu
        self.scope = scope
        self.timing = timing
        self.controller_latency = controller_latency
        # Ingress packing buffers: Mem Request (reads), Mem Data (writes).
        # A flit occupies its packing buffer until the device MC accepts
        # the command, so MC back-pressure is visible as pack-buffer
        # occupancy/full cycles (the Table 4 counters).
        self.rx_req = MonitoredQueue(engine, pack_buf_depth, name=f"{scope}.rx_req")
        self.rx_data = MonitoredQueue(engine, pack_buf_depth, name=f"{scope}.rx_data")
        # Device MC command queue in front of the media.
        self.mc_queue = MonitoredQueue(engine, mc_queue_depth, name=f"{scope}.mc")
        self.unpack_latency = 2.0
        service_cycles = timing.service_cycles
        self._mc_server = Server(
            engine,
            self.mc_queue,
            service_time=lambda _: service_cycles,
            on_done=self._media_done,
            servers=timing.channels,
            name=f"{scope}.media",
        )
        self._respond_latency = controller_latency + timing.trailing_latency
        # Flight recorder; None unless the profiling spec asked for tracing.
        self.recorder = None
        self.tx_inserts_mem_req = 0   # NDR completions
        self.tx_inserts_mem_data = 0  # DRS data responses
        self.reads_served = 0
        self.writes_served = 0
        pmu.on_sync(self._sync)

    # -- M2S receive -----------------------------------------------------

    def receive(
        self, request: MemRequest, respond: Callable[[MemRequest], None]
    ) -> None:
        """A flit arrived off the FlexBus; pack it for the device MC."""
        buffer = self.rx_data if request.is_store else self.rx_req
        event = (
            "unc_cxlcm_rxc_pack_buf_inserts.mem_data"
            if request.is_store
            else "unc_cxlcm_rxc_pack_buf_inserts.mem_req"
        )
        if buffer.try_push((request, respond)):
            self.pmu.add(self.scope, event)
            if self.recorder is not None:
                self.recorder.hop(request, "CXL_MC", "enq")
            self.engine.after(self.unpack_latency, lambda: self._drain(buffer))
        else:
            # Packing buffer full: link-level credits would throttle the
            # sender; retry shortly (back-pressure, never a drop).
            self.engine.after(4.0, lambda: self.receive(request, respond))

    def _drain(self, buffer: MonitoredQueue) -> None:
        """Move the buffer head into the MC once the MC has room."""
        if buffer.empty:
            return
        item = buffer.peek()
        if self._mc_server.submit(item):
            buffer.pop()
            if not buffer.empty:
                self.engine.after(self.unpack_latency, lambda: self._drain(buffer))
        else:
            # MC full: the flit stays packed; retry when the media advances.
            self.mc_queue.space_waiter.wait(lambda: self._drain(buffer))

    # -- media + S2M respond ------------------------------------------------

    def _media_done(self, item) -> None:
        request, respond = item
        if self.recorder is not None:
            self.recorder.hop(request, "CXL_MC", "deq")
        if request.is_store:
            self.writes_served += 1
            self.tx_inserts_mem_req += 1  # NDR goes out the Mem Req egress
        else:
            self.reads_served += 1
            self.tx_inserts_mem_data += 1  # DRS carries data
        self.engine.after(self._respond_latency, lambda: respond(request))

    # -- telemetry ------------------------------------------------------------

    def qos_class(self, elapsed: float) -> QoSLoadClass:
        """CXL-spec QoS telemetry derived from MC queue pressure."""
        if elapsed <= 0:
            return QoSLoadClass.LIGHT
        occupancy = self.mc_queue.stats.mean_occupancy(elapsed)
        capacity = self.mc_queue.capacity or 1
        ratio = occupancy / capacity
        if ratio < 0.25:
            return QoSLoadClass.LIGHT
        if ratio < 0.5:
            return QoSLoadClass.OPTIMAL
        if ratio < 0.8:
            return QoSLoadClass.MODERATE_OVERLOAD
        return QoSLoadClass.SEVERE_OVERLOAD

    def _sync(self, now: float) -> None:
        for queue, tag in ((self.rx_req, "mem_req"), (self.rx_data, "mem_data")):
            queue.stats.sync(now)
            self.pmu.set(
                self.scope,
                f"unc_cxlcm_rxc_pack_buf_ne.{tag}",
                queue.stats.cycles_not_empty,
            )
            self.pmu.set(
                self.scope,
                f"unc_cxlcm_rxc_pack_buf_full.{tag}",
                queue.stats.cycles_full,
            )
            self.pmu.set(
                self.scope,
                f"unc_cxlcm_rxc_pack_buf_occupancy.{tag}",
                queue.stats.occupancy_integral,
            )
        self.mc_queue.stats.sync(now)
        self.pmu.set(
            self.scope, "unc_cxlcm_mc_occupancy", self.mc_queue.stats.occupancy_integral
        )
        self.pmu.set(
            self.scope, "unc_cxlcm_mc_cycles_ne", self.mc_queue.stats.cycles_not_empty
        )
        self.pmu.set(
            self.scope,
            "unc_cxlcm_txc_pack_buf_inserts.mem_req",
            float(self.tx_inserts_mem_req),
        )
        self.pmu.set(
            self.scope,
            "unc_cxlcm_txc_pack_buf_inserts.mem_data",
            float(self.tx_inserts_mem_data),
        )
