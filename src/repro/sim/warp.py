"""Adaptive-fidelity fast-forward: skip converged steady-state epochs.

Full-fidelity discrete-event simulation spends most of its wall-clock on
phases where nothing changes: every epoch issues the same mix of loads
and stores, the queues sit at the same depths, and the PMU deltas repeat
within noise.  CXL-DMSim-style full-system simulators close that gap by
*fast-forwarding* converged phases analytically instead of dispatching
their events one by one, and PathFinder's epoch-structured profiles make
the convergence trivially observable.

The protocol implemented here:

1. A :class:`SteadyStateDetector` watches per-epoch PMU deltas (queue
   occupancies are time-integral counters, so they are covered by the
   same comparison).  After ``steady_epochs`` consecutive epochs agree
   within ``tolerance`` relative error, the warp is *armed*.
2. :class:`WarpController.attempt` then skips ``skip_epochs`` epochs at
   once: it consumes the corresponding operations from each core's
   workload iterator (:meth:`~repro.sim.core.Core.skip_ops`), teleports
   the event queue with :meth:`~repro.sim.engine.Engine.fast_forward`
   (pending events keep their relative offsets, so in-flight work and
   every parked :class:`~repro.sim.engine.Waiter` survive), and emits one
   *synthetic* epoch snapshot whose counter delta is the natural
   over-the-jump movement (time integrals, op completions) backfilled
   with ``skip_epochs x`` the steady per-epoch delta for event counters.
3. The next simulated epoch is a *verification epoch*: it runs exactly,
   and its delta is compared against the steady profile.  On agreement
   the warp stays armed (the cadence becomes one exact epoch per
   ``skip_epochs`` skipped); on divergence the warp aborts - the detector
   resets and full fidelity resumes until steadiness is re-established.

``fidelity="exact"`` (the default everywhere) never instantiates any of
this, so cache keys and existing results are untouched;
``fidelity="adaptive"`` opts a run in with the default :class:`WarpSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

CounterKey = Tuple[str, str]

__all__ = [
    "WarpSpec",
    "WarpEvent",
    "WarpReport",
    "SteadyStateDetector",
    "WarpController",
    "coerce_fidelity",
    "fidelity_token",
]


@dataclass(frozen=True)
class WarpSpec:
    """Tuning knobs for the adaptive-fidelity warp.

    * ``steady_epochs`` - consecutive agreeing epochs required to arm.
    * ``skip_epochs`` - epochs extrapolated per warp.
    * ``tolerance`` - relative disagreement allowed both when detecting
      steadiness and when checking the post-warp verification epoch.
      Deviations also get a Poisson-style allowance of
      ``3 * sqrt(count)``, so low-count counters (which jitter by tens of
      percent even in perfect steady state) do not hold the warp hostage.
    * ``min_magnitude`` - counters whose per-epoch delta never exceeds
      this are ignored by the comparison (tiny counters are all jitter).
    """

    steady_epochs: int = 3
    skip_epochs: int = 8
    tolerance: float = 0.2
    min_magnitude: float = 8.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "steady_epochs": self.steady_epochs,
            "skip_epochs": self.skip_epochs,
            "tolerance": self.tolerance,
            "min_magnitude": self.min_magnitude,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WarpSpec":
        return cls(
            steady_epochs=int(data.get("steady_epochs", 3)),
            skip_epochs=int(data.get("skip_epochs", 8)),
            tolerance=float(data.get("tolerance", 0.2)),
            min_magnitude=float(data.get("min_magnitude", 8.0)),
        )


def coerce_fidelity(value: Any) -> Optional[WarpSpec]:
    """Normalise a ``fidelity`` option into ``Optional[WarpSpec]``.

    ``None``/``"exact"`` mean full fidelity (no warp machinery at all);
    ``"adaptive"`` selects the default :class:`WarpSpec`; a ``WarpSpec``
    passes through for full control.
    """
    if value is None or value == "exact":
        return None
    if value == "adaptive":
        return WarpSpec()
    if isinstance(value, WarpSpec):
        return value
    raise ValueError(
        f"fidelity must be 'exact', 'adaptive' or a WarpSpec, got {value!r}"
    )


def fidelity_token(value: Any) -> Any:
    """The cache-key contribution of a ``fidelity`` setting.

    Returns ``None`` for exact fidelity - the key must not change for
    existing results - and a stable, JSON-serialisable token otherwise
    (``fidelity`` participates in the job key because warped counters are
    extrapolations, not measurements).
    """
    spec = coerce_fidelity(value)
    if spec is None:
        return None
    if spec == WarpSpec():
        return "adaptive"
    return spec.to_dict()


class SteadyStateDetector:
    """Arms after K consecutive epochs whose PMU deltas agree.

    Each incoming epoch delta is compared against the *mean* of the
    current agreeing window.  Agreement is judged on the
    magnitude-weighted aggregate deviation

        ``D = sum_k |a_k - b_k| / sum_k max(|a_k|, |b_k|)  <=  tolerance``

    rather than per-counter relative error: queue-occupancy integrals
    fluctuate by tens of percent epoch-to-epoch even in perfect steady
    state (they sample instantaneous depth), and a per-counter gate would
    hold the warp hostage to that burstiness while the workload-defining
    high-volume counters sit rock steady.  A weight-proportional
    criterion keys off exactly those dominant counters.  As a guard
    against a *small* counter exploding unnoticed (a new path lighting
    up at 1% weight), any counter carrying at least 1% of the total
    magnitude must additionally stay within ``4 * tolerance`` relative
    error plus a ``3 * sqrt(count)`` shot-noise allowance.  A
    disagreeing epoch restarts the window, disarming the warp.
    """

    def __init__(self, spec: WarpSpec) -> None:
        self.spec = spec
        self._window: List[Dict[CounterKey, float]] = []
        self._mean: Optional[Dict[CounterKey, float]] = None

    @property
    def armed(self) -> bool:
        return len(self._window) >= self.spec.steady_epochs

    @property
    def steady_delta(self) -> Optional[Dict[CounterKey, float]]:
        """The per-epoch delta warps extrapolate from.

        This is the *latest* agreeing epoch, not the window mean: the
        window may still contain warm-up epochs (they pass the
        magnitude-weighted aggregate test because the dominant
        time-integral counters are steady from the start, while small
        event counters are still ramping), and a mean polluted by
        warm-up systematically under-extrapolates those ramps.  The
        newest entry is, by definition of arming, a fully steady epoch;
        the mean remains the smoothed reference for *matching*.
        """
        return dict(self._window[-1]) if self.armed else None

    def reset(self) -> None:
        self._window = []
        self._mean = None

    def matches(self, delta: Mapping[CounterKey, float],
                reference: Mapping[CounterKey, float]) -> bool:
        tolerance = self.spec.tolerance
        floor = self.spec.min_magnitude
        deviation = 0.0
        total = 0.0
        guarded: List[Tuple[float, float]] = []
        for key in delta.keys() | reference.keys():
            a = delta.get(key, 0.0)
            b = reference.get(key, 0.0)
            magnitude = max(abs(a), abs(b))
            if magnitude <= floor:
                continue
            deviation += abs(a - b)
            total += magnitude
            guarded.append((magnitude, abs(a - b)))
        if total <= 0.0:
            return True
        if deviation > tolerance * total:
            return False
        weight_floor = 0.01 * total
        for magnitude, diff in guarded:
            if magnitude < weight_floor:
                continue
            if diff > 4.0 * tolerance * magnitude + 3.0 * magnitude ** 0.5:
                return False
        return True

    def _recompute_mean(self) -> None:
        window = self._window
        totals: Dict[CounterKey, float] = {}
        for delta in window:
            for key, value in delta.items():
                totals[key] = totals.get(key, 0.0) + value
        inv = 1.0 / len(window)
        self._mean = {key: value * inv for key, value in totals.items()}

    def observe(self, delta: Mapping[CounterKey, float]) -> bool:
        """Feed one exact epoch's delta; returns whether the warp is armed."""
        snapshot = dict(delta)
        if self._mean is not None and self.matches(snapshot, self._mean):
            self._window.append(snapshot)
            if len(self._window) > max(self.spec.steady_epochs, 1) * 2:
                # Keep the window bounded (and responsive to slow drift).
                self._window.pop(0)
        else:
            self._window = [snapshot]
        self._recompute_mean()
        return self.armed


@dataclass
class WarpEvent:
    """One fast-forward: a skipped span and its verification outcome."""

    epoch: int
    t_start: float
    t_end: float
    epochs_skipped: float
    ops_skipped: int
    #: None until the verification epoch runs; then True (agreed) or
    #: False (diverged - the warp was aborted and fidelity restored).
    verified: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "epochs_skipped": self.epochs_skipped,
            "ops_skipped": self.ops_skipped,
            "verified": self.verified,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WarpEvent":
        return cls(
            epoch=int(data["epoch"]),
            t_start=float(data["t_start"]),
            t_end=float(data["t_end"]),
            epochs_skipped=float(data["epochs_skipped"]),
            ops_skipped=int(data["ops_skipped"]),
            verified=data.get("verified"),
        )


@dataclass
class WarpReport:
    """All warps of one profiling session."""

    spec: WarpSpec = field(default_factory=WarpSpec)
    events: List[WarpEvent] = field(default_factory=list)

    @property
    def cycles_skipped(self) -> float:
        return sum(e.t_end - e.t_start for e in self.events)

    @property
    def epochs_skipped(self) -> float:
        return sum(e.epochs_skipped for e in self.events)

    @property
    def ops_skipped(self) -> int:
        return sum(e.ops_skipped for e in self.events)

    @property
    def aborted(self) -> int:
        return sum(1 for e in self.events if e.verified is False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "cycles_skipped": self.cycles_skipped,
            "epochs_skipped": self.epochs_skipped,
            "ops_skipped": self.ops_skipped,
            "aborted": self.aborted,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WarpReport":
        return cls(
            spec=WarpSpec.from_dict(data.get("spec", {})),
            events=[WarpEvent.from_dict(e) for e in data.get("events", [])],
        )


class WarpController:
    """Drives the detect / skip / verify protocol for one session.

    Owned by :class:`~repro.core.profiler.PathFinder` when the run's
    ``fidelity`` is adaptive; the profiler feeds it every exact epoch via
    :meth:`observe` and offers it the chance to skip via :meth:`attempt`.
    """

    def __init__(self, machine: Any, spec: WarpSpec,
                 epoch_cycles: float) -> None:
        self.machine = machine
        self.spec = spec
        self.epoch_cycles = epoch_cycles
        self.detector = SteadyStateDetector(spec)
        self.report = WarpReport(spec=spec)
        self._pending_verify: Optional[WarpEvent] = None
        #: The extrapolation basis: the latest exact epoch that did NOT
        #: immediately follow a warp.  Post-warp verification epochs are
        #: microarchitecturally cold (the jump drains prefetch and cache
        #: pipelines), so using them as the basis would systematically
        #: under-extrapolate hit-path counters warp after warp.
        self._basis: Optional[Dict[CounterKey, float]] = None

    @property
    def armed(self) -> bool:
        return self.detector.armed

    def observe(self, delta: Mapping[CounterKey, float]) -> None:
        """Feed one exact epoch's delta (also verifies a pending warp)."""
        pending = self._pending_verify
        if pending is not None:
            self._pending_verify = None
            reference = self.detector.steady_delta
            agreed = reference is not None and self.detector.matches(
                delta, reference
            )
            pending.verified = bool(agreed)
            if not agreed:
                # Diverged: abort the warp and re-earn steadiness from
                # scratch at full fidelity.
                self.detector.reset()
                self._basis = None
        else:
            # Only epochs that are not post-warp verification epochs may
            # become the extrapolation basis (see ``_basis`` above).
            self._basis = dict(delta)
        self.detector.observe(delta)

    def attempt(self) -> Optional[Tuple[Dict[CounterKey, float], float,
                                        WarpEvent]]:
        """Skip ahead if armed; returns (steady_delta, scale, event).

        The caller (PathFinder) turns the result into a synthetic epoch
        snapshot via ``SnapshotTaker.take_extrapolated(steady, scale)``.
        Returns ``None`` when not armed or when no core has measurable
        steady throughput to skip.
        """
        steady = self.detector.steady_delta
        if steady is None or self._pending_verify is not None:
            return None
        if self._basis is not None:
            steady = self._basis
        machine = self.machine
        skip = self.spec.skip_epochs
        # Per-core op budget from the steady profile; a core with no
        # throughput in the window contributes nothing (it may be parked
        # on a full queue - its pending events shift with the jump).
        targets: List[Tuple[Any, int]] = []
        for core in machine.cores:
            rate = steady.get((core.scope, "app.ops_completed"), 0.0)
            target = int(round(rate * skip))
            if target > 0 and core.running:
                targets.append((core, target))
        if not targets:
            return None
        # Consume the skipped operations from the workload iterators; a
        # shortfall (workload nearly exhausted) scales the whole warp
        # down so counters stay proportional to the ops actually skipped.
        fraction = 1.0
        ops_skipped = 0
        for core, target in targets:
            actual = core.skip_ops(target)
            ops_skipped += actual
            if actual < target:
                fraction = min(fraction, actual / target)
        if ops_skipped == 0:
            return None
        scale = skip * fraction
        span = self.epoch_cycles * scale
        t_start = machine.now
        machine.engine.fast_forward(span)
        event = WarpEvent(
            epoch=0,  # the caller stamps the epoch index
            t_start=t_start,
            t_end=machine.now,
            epochs_skipped=scale,
            ops_skipped=ops_skipped,
        )
        self.report.events.append(event)
        self._pending_verify = event
        return steady, scale, event
