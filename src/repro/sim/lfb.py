"""Line Fill Buffer (LFB).

Per-core hardware FIFO with tens of cacheline entries buffering read
responses (section 2.2, path #1).  It doubles as the MSHR file: a demand
load that misses L1D but targets a line already in flight coalesces onto
the existing entry (the ``mem_load_retired.fb_hit`` event); a load that
finds no entry and no free slot stalls the core
(``l1d_pend_miss.fb_full``).  LFB occupancy also caps the core's
memory-level parallelism, which is what makes slow CXL responses throttle
request issue (section 2.3's "limited memory-level parallelism").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .engine import Engine, Waiter
from .queues import QueueStats
from .request import MemRequest


@dataclass
class LFBEntry:
    line: int
    primary: MemRequest
    allocated_at: float
    waiters: List[Callable[[float], None]] = field(default_factory=list)


class LineFillBuffer:
    """MSHR-style fill buffer for one core."""

    def __init__(self, engine: Engine, entries: int = 16, core_id: int = 0) -> None:
        if entries <= 0:
            raise ValueError("LFB needs at least one entry")
        self.engine = engine
        self.capacity = entries
        self.core_id = core_id
        self._entries: Dict[int, LFBEntry] = {}
        self.stats = QueueStats()
        self.stats._capacity = entries
        self.space_waiter = Waiter(engine)
        self.fb_hits = 0          # loads coalesced onto an in-flight line
        self.allocations = 0

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def outstanding(self, line: int) -> Optional[LFBEntry]:
        return self._entries.get(line)

    def coalesce(self, line: int, on_fill: Callable[[float], None]) -> bool:
        """Attach a secondary load to an in-flight line.  True on fb-hit."""
        entry = self._entries.get(line)
        if entry is None:
            return False
        entry.waiters.append(on_fill)
        self.fb_hits += 1
        return True

    def allocate(self, request: MemRequest) -> Optional[LFBEntry]:
        """Reserve an entry for ``request``'s line; None when full."""
        if self.full:
            return None
        line = request.line
        if line in self._entries:
            raise ValueError(f"line {line:#x} already in flight in LFB")
        entry = LFBEntry(line=line, primary=request, allocated_at=self.engine.now)
        self._entries[line] = entry
        self.stats.on_insert(self.engine.now)
        self.allocations += 1
        return entry

    def fill(self, line: int) -> LFBEntry:
        """Data returned: release the entry and wake coalesced loads."""
        entry = self._entries.pop(line, None)
        if entry is None:
            raise KeyError(f"no LFB entry for line {line:#x}")
        now = self.engine.now
        self.stats.on_remove(now)
        for waiter in entry.waiters:
            self.engine.after(0.0, lambda w=waiter, t=now: w(t))
        self.space_waiter.wake_one()
        return entry

    def sync(self, now: float) -> None:
        self.stats.sync(now)
