"""CXL switch: one fabric tier between the host and a device pool.

The paper's introduction motivates next-generation CXL fabrics with
multi-tier switching ("a disaggregated memory pool can provide tens to
hundreds of terabytes"); its evaluation stops at directly-attached
devices.  This module builds the next step: a store-and-forward switch
that sits between one or more host root ports and several downstream
Type-3 devices.

Model: per-direction crossbar with input-queued ports.  A flit arriving
from the host is queued at the switch ingress, takes ``forward_latency``
to traverse the crossbar (serialised per output port at the port's
bandwidth), and is delivered to the target device; responses flow back
the same way.  The switch exposes PMU-style meters per port so PathFinder
can treat it as one more Clos stage - which is exactly how the paper's
system model would absorb it (section 4.2: "a middle stage").

Use :func:`attach_switch` to retrofit a built machine: it interposes the
switch on every (root port, device) pair, after which all CXL.mem traffic
transits the fabric.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..pmu.registry import CounterRegistry
from .cxl_device import CXLDevice
from .engine import Engine
from .flexbus import M2PCIe
from .queues import MonitoredQueue, Server
from .request import MemRequest


class SwitchPort:
    """One output-serialised direction of the crossbar."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        forward_latency: float,
        queue_depth: int = 128,
    ) -> None:
        self.engine = engine
        self.forward_latency = forward_latency
        self.queue = MonitoredQueue(engine, queue_depth, name=name)
        self._server = Server(
            engine,
            self.queue,
            service_time=lambda item: item[0] / bytes_per_cycle,
            on_done=self._forward,
            name=name,
        )

    def _forward(self, item) -> None:
        _flit_bytes, deliver = item
        self.engine.after(self.forward_latency, deliver)

    def send(self, flit_bytes: float, deliver: Callable[[], None]) -> bool:
        return self._server.submit((flit_bytes, deliver))


class CXLSwitch:
    """An N-downstream-port CXL fabric switch."""

    def __init__(
        self,
        engine: Engine,
        pmu: CounterRegistry,
        scope: str = "cxlsw0",
        bytes_per_cycle: float = 32.0,
        forward_latency: float = 60.0,
        queue_depth: int = 128,
    ) -> None:
        self.engine = engine
        self.pmu = pmu
        self.scope = scope
        self.bytes_per_cycle = bytes_per_cycle
        self.forward_latency = forward_latency
        self.queue_depth = queue_depth
        self.down_ports: Dict[str, SwitchPort] = {}   # towards devices
        self.up_ports: Dict[str, SwitchPort] = {}     # towards hosts
        self.forwarded_down = 0
        self.forwarded_up = 0
        self.retried_down = 0
        self.retried_up = 0
        pmu.on_sync(self._sync)

    def _port(self, ports: Dict[str, SwitchPort], key: str) -> SwitchPort:
        port = ports.get(key)
        if port is None:
            direction = "down" if ports is self.down_ports else "up"
            port = SwitchPort(
                self.engine,
                f"{self.scope}.{direction}.{key}",
                self.bytes_per_cycle,
                self.forward_latency,
                self.queue_depth,
            )
            ports[key] = port
        return port

    def forward_to_device(
        self, device_key: str, flit_bytes: float, deliver: Callable[[], None]
    ) -> None:
        port = self._port(self.down_ports, device_key)
        if port.send(flit_bytes, deliver):
            # Count accepted flits only: under saturation the retry path
            # re-enters this method, and counting on entry would inflate
            # unc_cxlsw_fwd_down by one per throttled attempt.
            self.forwarded_down += 1
        else:
            # Input queue full: fabric credits throttle; retry shortly.
            self.retried_down += 1
            self.engine.after(
                4.0, lambda: self.forward_to_device(device_key, flit_bytes, deliver)
            )

    def forward_to_host(
        self, host_key: str, flit_bytes: float, deliver: Callable[[], None]
    ) -> None:
        port = self._port(self.up_ports, host_key)
        if port.send(flit_bytes, deliver):
            self.forwarded_up += 1
        else:
            self.retried_up += 1
            self.engine.after(
                4.0, lambda: self.forward_to_host(host_key, flit_bytes, deliver)
            )

    def _sync(self, now: float) -> None:
        for direction, ports in (("down", self.down_ports), ("up", self.up_ports)):
            for key, port in ports.items():
                port.queue.stats.sync(now)
                self.pmu.set(
                    self.scope,
                    f"unc_cxlsw_{direction}_occupancy.{key}",
                    port.queue.stats.occupancy_integral,
                )
                self.pmu.set(
                    self.scope,
                    f"unc_cxlsw_{direction}_cycles_ne.{key}",
                    port.queue.stats.cycles_not_empty,
                )
        self.pmu.set(self.scope, "unc_cxlsw_fwd_down", float(self.forwarded_down))
        self.pmu.set(self.scope, "unc_cxlsw_fwd_up", float(self.forwarded_up))
        self.pmu.set(self.scope, "unc_cxlsw_retry_down", float(self.retried_down))
        self.pmu.set(self.scope, "unc_cxlsw_retry_up", float(self.retried_up))


class _SwitchedEndpoint:
    """Device-side shim: routes an M2PCIe's traffic through the switch."""

    def __init__(
        self,
        switch: CXLSwitch,
        device: CXLDevice,
        host_key: str,
        device_key: str,
        port: M2PCIe,
    ) -> None:
        self.switch = switch
        self.device = device
        self.host_key = host_key
        self.device_key = device_key
        self.port = port

    def receive(
        self, request: MemRequest, respond: Callable[[MemRequest], None]
    ) -> None:
        flit_down = (
            self.port.data_flit_bytes if request.is_store
            else self.port.header_flit_bytes
        )

        def back_through_switch(req: MemRequest) -> None:
            flit_up = (
                self.port.header_flit_bytes if req.is_store
                else self.port.data_flit_bytes
            )
            self.switch.forward_to_host(
                self.host_key, flit_up, lambda: respond(req)
            )

        self.switch.forward_to_device(
            self.device_key,
            flit_down,
            lambda: self.device.receive(request, back_through_switch),
        )


def attach_switch(
    machine,
    bytes_per_cycle: float = 32.0,
    forward_latency: float = 60.0,
    queue_depth: int = 128,
) -> CXLSwitch:
    """Interpose a fabric switch between a machine's root ports and its
    CXL devices.  Every CXL access afterwards pays the switch traversal
    (two crossings) - the "switched pooling case" of section 2.3.

    Attaching twice would re-register the PMU sync hook and wrap the
    already-wrapped endpoints (double-charging traversal latency), so a
    second call - or a call on a machine already routing through a
    multi-host fabric - raises instead.
    """
    if getattr(machine, "cxl_switch", None) is not None:
        raise RuntimeError(
            "machine already has a CXL switch attached; attach_switch is "
            "not idempotent (it would double-wrap the device endpoints)"
        )
    if getattr(machine, "fabric", None) is not None:
        raise RuntimeError(
            "machine already routes CXL traffic through a multi-host "
            "fabric; a one-tier switch cannot be layered on top"
        )
    if any(
        isinstance(port.device, _SwitchedEndpoint)
        for port in machine.m2pcie.values()
    ):
        raise RuntimeError(
            "machine's CXL endpoints are already switched; refusing to "
            "wrap them again"
        )
    switch = CXLSwitch(
        machine.engine,
        machine.pmu,
        bytes_per_cycle=bytes_per_cycle,
        forward_latency=forward_latency,
        queue_depth=queue_depth,
    )
    host_key = getattr(machine, "host_id", "host0")
    for node_id, port in machine.m2pcie.items():
        device = machine.cxl_devices[node_id]
        port.device = _SwitchedEndpoint(
            switch,
            device,
            host_key=host_key,
            device_key=f"dev{node_id}",
            port=port,
        )
    machine.cxl_switch = switch
    return switch
