"""DRAM media timing model.

Both the host DDR5 DIMMs (behind the IMC) and the CXL device's DDR4
(behind the device-side memory controller) are modelled as a bank of
channels, each a bandwidth pipe with a fixed access latency on top:
service time at the channel enforces bandwidth, and the remaining media
latency elapses without holding the channel (column access overlaps with
the next command's row activation in a real part; the PMU only sees CAS
counts and pending-queue occupancy, which this shape reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import CACHELINE


@dataclass(frozen=True)
class DRAMTiming:
    """Timing of one DRAM module, expressed in CPU cycles.

    ``access_latency``: idle-load latency of the media (activation + CAS +
    data return).  ``bytes_per_cycle``: per-channel peak bandwidth.
    """

    access_latency: float
    bytes_per_cycle: float
    channels: int = 1

    def __post_init__(self) -> None:
        if self.access_latency < 0 or self.bytes_per_cycle <= 0:
            raise ValueError("invalid DRAM timing")
        if self.channels < 1:
            raise ValueError("need at least one channel")

    @property
    def service_cycles(self) -> float:
        """Channel-occupancy time of one cacheline CAS."""
        return CACHELINE / self.bytes_per_cycle

    @property
    def trailing_latency(self) -> float:
        """Latency beyond channel occupancy (pure delay, no resource)."""
        return max(0.0, self.access_latency - self.service_cycles)

    @property
    def peak_bandwidth_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle * self.channels


def ddr5_timing(frequency_ghz: float = 2.0) -> DRAMTiming:
    """SPR testbed DDR5: ~55 ns media latency, ~131 GB/s across 8 channels."""
    cycles_per_ns = frequency_ghz
    per_channel_gbs = 131.1 / 8
    return DRAMTiming(
        access_latency=55.0 * cycles_per_ns,
        bytes_per_cycle=per_channel_gbs / frequency_ghz,
        channels=8,
    )


def cxl_ddr4_timing(frequency_ghz: float = 2.0) -> DRAMTiming:
    """Agilex CXL card DDR4: slower media, single effective channel."""
    cycles_per_ns = frequency_ghz
    return DRAMTiming(
        access_latency=95.0 * cycles_per_ns,
        bytes_per_cycle=(17.6 * 1.15) / frequency_ghz,
        channels=1,
    )
