"""Mesh interconnect (NoC).

Cores, CHA/LLC slices, IMCs and the M2PCIe block all sit on the socket's
2-D mesh (section 2.2).  The paper's counters expose no per-router
queueing, so we model the mesh as its PMUs see it: a fixed hop latency per
segment plus an aggregate bandwidth pipe whose utilisation PathFinder can
report as "available bandwidth" on an edge (section 4.6's edge records).
Congestion effects the paper measures concentrate at the endpoints (TOR,
RPQ/WPQ, M2PCIe ingress), which are modelled with real bounded queues.
"""

from __future__ import annotations

from typing import Callable

from .engine import Engine
from .queues import MonitoredQueue, Server
from .request import CACHELINE


class Mesh:
    """Latency + shared-bandwidth model of one socket's interconnect."""

    __slots__ = (
        "engine",
        "hop_latency",
        "core_to_cha",
        "cha_to_imc",
        "cha_to_io",
        "snc_penalty",
        "socket_penalty",
        "_queue",
        "_server",
        "transferred_lines",
    )

    def __init__(
        self,
        engine: Engine,
        hop_latency: float = 4.0,
        avg_hops_core_to_cha: int = 3,
        avg_hops_cha_to_imc: int = 4,
        avg_hops_cha_to_io: int = 5,
        snc_penalty: float = 12.0,
        socket_penalty: float = 120.0,
        bytes_per_cycle: float = 512.0,
    ) -> None:
        self.engine = engine
        self.hop_latency = hop_latency
        self.core_to_cha = hop_latency * avg_hops_core_to_cha
        self.cha_to_imc = hop_latency * avg_hops_cha_to_imc
        self.cha_to_io = hop_latency * avg_hops_cha_to_io
        self.snc_penalty = snc_penalty
        self.socket_penalty = socket_penalty
        # One aggregate pipe: generous, so it only matters under extreme load.
        self._queue = MonitoredQueue(engine, capacity=4096, name="mesh")
        line_cycles = CACHELINE / bytes_per_cycle
        self._server = Server(
            engine,
            self._queue,
            service_time=lambda _: line_cycles,
            on_done=self._deliver,
            servers=8,
            name="mesh",
        )
        self.transferred_lines = 0

    def _deliver(self, item) -> None:
        latency, callback = item
        self.transferred_lines += 1
        self.engine.after(latency, callback)

    def send(self, latency: float, callback: Callable[[], None]) -> None:
        """Move one cacheline-sized message across the mesh."""
        if not self._server.submit((latency, callback)):
            # The aggregate pipe overflowed; deliver late rather than drop.
            self.engine.after(latency * 2, callback)

    # -- canned segment latencies --------------------------------------------

    def core_to_cha_latency(self, same_cluster: bool) -> float:
        base = self.core_to_cha
        return base if same_cluster else base + self.snc_penalty

    def cha_to_memory_latency(self, cross_socket: bool = False) -> float:
        base = self.cha_to_imc
        return base + (self.socket_penalty if cross_socket else 0.0)

    def cha_to_flexbus_latency(self) -> float:
        return self.cha_to_io

    def utilization(self, elapsed: float) -> float:
        return self._server.utilization(elapsed)
