"""Physical address space and NUMA routing.

Both testbed machines (section 5.1) expose CXL Type-3 memory as a CPU-less
NUMA node next to the socket-local DDR5 nodes.  We reproduce that layout:
a flat physical address space carved into contiguous NUMA regions, each
tagged with a :class:`NodeKind`, plus a page map so the tiering substrate
(TPP/Colloid, section 5.8) can migrate pages between nodes at runtime.

Address-to-DIMM routing is what makes a path "deterministic based on the
address mapping" (section 4.2): every architectural module consults this
map, never private state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

PAGE_SIZE = 4096


class NodeKind(enum.Enum):
    LOCAL_DDR = "local_ddr"     # socket-local DDR5 behind the IMC
    REMOTE_DDR = "remote_ddr"   # other socket's DDR5 (plain NUMA)
    CXL = "cxl"                 # CPU-less CXL Type-3 node behind FlexBus


@dataclass(frozen=True)
class NumaNode:
    """One NUMA region: ``[base, base + size)`` of physical memory."""

    node_id: int
    kind: NodeKind
    base: int
    size: int
    socket: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"node {self.node_id}: non-positive size")
        if self.base % PAGE_SIZE:
            raise ValueError(f"node {self.node_id}: base not page aligned")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class AddressSpace:
    """The machine's physical memory map plus a migratable page table.

    Applications address *virtual* pages; :meth:`translate` maps them to
    physical frames.  Initially the mapping is identity within whichever
    node a region was allocated from; tiering engines call
    :meth:`migrate_page` to remap a virtual page onto a different node,
    which is exactly the effect TPP's promotion/demotion has on the
    access stream.
    """

    def __init__(self, nodes: List[NumaNode]) -> None:
        if not nodes:
            raise ValueError("address space needs at least one node")
        self.nodes = sorted(nodes, key=lambda n: n.base)
        for prev, nxt in zip(self.nodes, self.nodes[1:]):
            if prev.end > nxt.base:
                raise ValueError(
                    f"nodes {prev.node_id} and {nxt.node_id} overlap"
                )
        self._by_id: Dict[int, NumaNode] = {n.node_id: n for n in self.nodes}
        if len(self._by_id) != len(self.nodes):
            raise ValueError("duplicate node ids")
        # virtual page number -> physical frame base address
        self._page_map: Dict[int, int] = {}
        # simple bump allocators per node for page frames
        self._next_free: Dict[int, int] = {n.node_id: n.base for n in self.nodes}

    # -- lookup ---------------------------------------------------------

    def node_of(self, address: int) -> NumaNode:
        """Return the NUMA node owning physical ``address``."""
        for node in self.nodes:
            if node.contains(address):
                return node
        raise KeyError(f"address {address:#x} outside all NUMA nodes")

    def node(self, node_id: int) -> NumaNode:
        return self._by_id[node_id]

    def is_cxl(self, address: int) -> bool:
        return self.node_of(address).kind is NodeKind.CXL

    @property
    def cxl_nodes(self) -> List[NumaNode]:
        return [n for n in self.nodes if n.kind is NodeKind.CXL]

    @property
    def local_nodes(self) -> List[NumaNode]:
        return [n for n in self.nodes if n.kind is NodeKind.LOCAL_DDR]

    # -- allocation / translation ----------------------------------------

    def alloc_pages(self, node_id: int, num_pages: int, vpn_base: int) -> None:
        """Back virtual pages ``[vpn_base, vpn_base+num_pages)`` on a node."""
        node = self._by_id[node_id]
        cursor = self._next_free[node_id]
        need = num_pages * PAGE_SIZE
        if cursor + need > node.end:
            raise MemoryError(
                f"node {node_id} exhausted: need {need} bytes, "
                f"{node.end - cursor} free"
            )
        for i in range(num_pages):
            self._page_map[vpn_base + i] = cursor + i * PAGE_SIZE
        self._next_free[node_id] = cursor + need

    def translate(self, virtual_address: int) -> int:
        """Virtual address -> physical address (identity if unmapped)."""
        vpn, offset = divmod(virtual_address, PAGE_SIZE)
        frame = self._page_map.get(vpn)
        if frame is None:
            return virtual_address
        return frame + offset

    def page_node(self, vpn: int) -> Optional[NumaNode]:
        frame = self._page_map.get(vpn)
        if frame is None:
            return None
        return self.node_of(frame)

    def migrate_page(self, vpn: int, target_node_id: int) -> int:
        """Remap virtual page ``vpn`` onto ``target_node_id``.

        Returns the new frame base.  The old frame is not recycled (the
        tiering engines only migrate a bounded hot/cold set per epoch, so a
        bump allocator is sufficient and keeps the map append-only).
        """
        if vpn not in self._page_map:
            raise KeyError(f"virtual page {vpn} is not mapped")
        node = self._by_id[target_node_id]
        cursor = self._next_free[target_node_id]
        if cursor + PAGE_SIZE > node.end:
            raise MemoryError(f"node {target_node_id} exhausted")
        self._page_map[vpn] = cursor
        self._next_free[target_node_id] = cursor + PAGE_SIZE
        return cursor

    def mapped_pages(self) -> Dict[int, int]:
        """Snapshot of the virtual->physical page map (copy)."""
        return dict(self._page_map)

    def free_bytes(self, node_id: int) -> int:
        node = self._by_id[node_id]
        return node.end - self._next_free[node_id]


def build_address_space(
    local_gb: float = 256.0,
    cxl_gb: float = 16.0,
    remote_gb: float = 0.0,
) -> AddressSpace:
    """Convenience builder mirroring the SPR testbed's memory map."""
    gib = 1 << 30
    nodes = [NumaNode(0, NodeKind.LOCAL_DDR, 0, int(local_gb * gib), socket=0)]
    base = nodes[-1].end
    if remote_gb > 0:
        nodes.append(
            NumaNode(1, NodeKind.REMOTE_DDR, base, int(remote_gb * gib), socket=1)
        )
        base = nodes[-1].end
    nodes.append(
        NumaNode(len(nodes), NodeKind.CXL, base, int(cxl_gb * gib), socket=0)
    )
    return AddressSpace(nodes)
