"""Core model: pipeline front of the Clos network.

A :class:`Core` pulls :class:`~repro.sim.request.MemOp` items from a
workload, pushes them through its private hierarchy (SB -> L1D -> LFB ->
L2) and hands L2 misses to the CHA.  It is the ingress stage of the
paper's Clos view (section 4.1) and the place where every core-PMU event
of Table 1 is produced.

Stall semantics
---------------
The core blocks - and stall-cycle counters tick - in exactly the
situations the paper measures:

* store issue with a full SB (``resource_stalls.sb`` when loads are in
  flight, ``exe_activity.bound_on_stores`` otherwise);
* load miss with a full LFB (``l1d_pend_miss.fb_full``);
* a dependent load whose producer has not returned, or the out-of-order
  window (bounded outstanding demand loads) filling up - during such waits
  ``memory_activity.stalls_l{1d,2}_miss`` / ``cycle_activity.stalls_l3_miss``
  tick according to how deep the blocking load has missed.

Latency observation mirrors perf's load-latency sampling: at completion,
each demand load adds its end-to-end latency to a per-serve-location
histogram (``lat_sample.<location>.{sum,count}``), which is what gives
PFAnalyzer its per-hop delays without touching simulator internals.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..pmu.registry import CounterRegistry
from .address import AddressSpace
from .cache import Cache, MESIF
from .cha import CHA
from .engine import Engine
from .lfb import LineFillBuffer
from .prefetch import CorePrefetchers
from .request import MemOp, MemRequest, Path, ServeLocation
from .store_buffer import StoreBuffer


def _build_l2_tables():
    """Precompute the L2 PMU key tuples per (path, outcome).

    ``_count_l2`` fans one L2 event into several counters whose names
    depend only on the request's path and hit/miss outcome; expanding the
    product once turns the per-request conditionals into a dict lookup
    feeding ``pmu.add_many``.  Key order matches the original add order.
    """
    ref_keys = {}
    out_keys = {}
    for path in Path:
        if path is Path.DRD:
            ref_keys[path] = (
                "l2_rqsts.references",
                "l2_rqsts.all_demand_references",
                "l2_rqsts.all_demand_data_rd",
            )
        else:
            ref_keys[path] = ("l2_rqsts.references",)
        for hit in (True, False):
            suffix = "hit" if hit else "miss"
            keys = []
            if path is Path.DRD:
                keys += [f"l2_rqsts.demand_data_rd_{suffix}",
                         f"mem_load_retired.l2_{suffix}"]
                if not hit:
                    keys += ["l2_rqsts.all_demand_miss",
                             "offcore_requests.demand_data_rd"]
            elif path is Path.RFO:
                keys.append(f"l2_rqsts.rfo_{suffix}")
                if hit:
                    keys.append("mem_store_retired.l2_hit")
            elif path is Path.SWPF:
                keys.append(f"l2_rqsts.swpf_{suffix}")
            else:
                keys.append(f"l2_rqsts.pf_{suffix}")
            if not hit:
                keys += ["l2_rqsts.miss", "offcore_requests.all.requests",
                         "offcore_requests.data_rd"]
            out_keys[(path, hit)] = tuple(keys)
    return ref_keys, out_keys


_L2_REF_KEYS, _L2_OUT_KEYS = _build_l2_tables()

# Per-serve-location latency histogram keys (f-string-free hot path).
_LAT_KEYS = {
    location: (f"lat_sample.{location.value}.sum",
               f"lat_sample.{location.value}.count")
    for location in ServeLocation
}

_DEMAND_PATHS = (Path.DRD, Path.RFO)
_RFO_PATHS = (Path.RFO, Path.L2_HWPF_RFO)
_OWNED_STATES = (MESIF.MODIFIED, MESIF.EXCLUSIVE)


class GatedIntegrator:
    """Integral of a count over time, plus cycles where count > 0.

    The primitive behind ``offcore_requests_outstanding.*`` and
    ``cycle_activity.cycles_l*_miss``.
    """

    __slots__ = ("count", "integral", "active_cycles", "_last")

    def __init__(self) -> None:
        self.count = 0
        self.integral = 0.0
        self.active_cycles = 0.0
        self._last = 0.0

    def _advance(self, now: float) -> None:
        dt = now - self._last
        if dt > 0:
            self.integral += self.count * dt
            if self.count > 0:
                self.active_cycles += dt
        self._last = now

    def inc(self, now: float) -> None:
        self._advance(now)
        self.count += 1

    def dec(self, now: float) -> None:
        self._advance(now)
        self.count -= 1

    def sync(self, now: float) -> None:
        self._advance(now)


class Core:
    """One CPU core with private L1D/L2, SB, LFB and prefetch engines."""

    def __init__(
        self,
        core_id: int,
        engine: Engine,
        pmu: CounterRegistry,
        cha: CHA,
        address_space: AddressSpace,
        l1d_size: int = 48 * 1024,
        l1d_ways: int = 12,
        l2_size: int = 2 * (1 << 20),
        l2_ways: int = 16,
        sb_entries: int = 56,
        lfb_entries: int = 16,
        max_outstanding_loads: int = 48,
        l1_latency: float = 5.0,
        l2_latency: float = 15.0,
        prefetchers: Optional[CorePrefetchers] = None,
    ) -> None:
        self.core_id = core_id
        self.engine = engine
        self.pmu = pmu
        self.cha = cha
        self.address_space = address_space
        self.scope = f"core{core_id}"
        self.l1d = Cache(l1d_size, l1d_ways, name=f"core{core_id}.l1d")
        self.l2 = Cache(l2_size, l2_ways, name=f"core{core_id}.l2")
        self.sb = StoreBuffer(engine, sb_entries, core_id)
        self.lfb = LineFillBuffer(engine, lfb_entries, core_id)
        self.prefetchers = prefetchers or CorePrefetchers()
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.max_outstanding_loads = max_outstanding_loads

        # Flight recorder; None unless the profiling spec asked for tracing.
        self.recorder = None
        self._workload: Optional[Iterator[MemOp]] = None
        self._l2_pf_pending: set = set()
        self._rfo_pending: Dict[int, List] = {}
        self._handover = None
        self._running = False
        # Optional sampling hook: tiering engines (TPP) register here to
        # observe the virtual access stream, standing in for NUMA hint
        # faults.  Called as probe(core_id, virtual_address, is_store).
        self.access_probe: Optional[Callable[[int, int, bool], None]] = None
        self._done_callback: Optional[Callable[[], None]] = None
        self._last_load: Optional[MemRequest] = None
        self._outstanding_demand: Dict[int, MemRequest] = {}

        # Stall/latency integrators.
        self._oro_demand_rd = GatedIntegrator()   # outstanding demand reads
        self._oro_all_rd = GatedIntegrator()      # demand + prefetch reads
        self._l1_miss_out = GatedIntegrator()
        self._l2_miss_out = GatedIntegrator()
        self._l3_miss_out = GatedIntegrator()
        self.ops_completed = 0
        self.loads_issued = 0
        self.stores_issued = 0
        pmu.on_sync(self._sync)

    # -- lifecycle -------------------------------------------------------

    def run(self, workload: Iterator[MemOp], on_done: Optional[Callable[[], None]] = None) -> None:
        """Start executing ``workload``; ``on_done`` fires at exhaustion."""
        if self._running:
            raise RuntimeError(f"core {self.core_id} is already running")
        self._workload = iter(workload)
        self._done_callback = on_done
        self._running = True
        self.engine.post(self._next_op)

    @property
    def running(self) -> bool:
        return self._running

    def skip_ops(self, count: int) -> int:
        """Consume up to ``count`` ops without simulating them.

        The warp fast-forward (:mod:`repro.sim.warp`) uses this to retire
        steady-state work analytically: the ops are drawn from the
        workload iterator and booked as completed instructions, but no
        requests enter the memory hierarchy - the skipped span's counters
        are extrapolated by the caller instead.  Returns the number of
        ops actually consumed (less than ``count`` when the workload runs
        dry; exhaustion still fires through the normal ``_next_op`` path
        so the done callback and idle accounting stay untouched).
        """
        if not self._running or self._workload is None or count <= 0:
            return 0
        skipped = 0
        retired = 0.0
        workload = self._workload
        while skipped < count:
            try:
                op = next(workload)
            except StopIteration:
                break
            retired += 1.0 + op.gap
            skipped += 1
        if retired:
            self.pmu.add(self.scope, "inst_retired.any", retired)
        self.ops_completed += skipped
        return skipped

    def request_preempt(
        self, handover: Callable[[Iterator[MemOp], Optional[Callable[[], None]]], None]
    ) -> None:
        """Preempt at the next op boundary (OS context switch).

        ``handover(remaining_ops, on_done)`` receives the un-consumed
        workload iterator and the original completion callback, so the
        scheduler can resume the thread on another core.  Requests already
        in flight drain on this core, exactly as hardware would.
        """
        if not self._running:
            raise RuntimeError(f"core {self.core_id} is not running anything")
        self._handover = handover

    def _next_op(self) -> None:
        assert self._workload is not None
        if self._handover is not None:
            handover, self._handover = self._handover, None
            workload, self._workload = self._workload, None
            done, self._done_callback = self._done_callback, None
            self._running = False
            handover(workload, done)
            return
        try:
            op = next(self._workload)
        except StopIteration:
            self._running = False
            if self._done_callback:
                self._done_callback()
            return
        self.pmu.add(self.scope, "inst_retired.any", 1.0 + op.gap)
        if op.gap > 0:
            self.engine.after(op.gap, lambda: self._issue(op))
        else:
            self._issue(op)

    # -- issue -----------------------------------------------------------

    def _issue(self, op: MemOp) -> None:
        if self.access_probe is not None:
            self.access_probe(self.core_id, op.address, op.is_store)
        physical = self.address_space.translate(op.address)
        if op.software_prefetch:
            self._issue_swpf(physical)
            self._op_done()
            return
        if op.is_store:
            self._issue_store(physical)
        else:
            self._issue_load(physical, op.dependent)

    def _op_done(self) -> None:
        self.ops_completed += 1
        self.engine.post(self._next_op)

    # -- stall accounting ----------------------------------------------------

    def _stalled(self, start: float, reason: str, request: Optional[MemRequest]) -> None:
        """Book a blocked interval ``[start, now)`` against PMU counters.

        The interval is measured with :meth:`Engine.elapsed`, which
        excludes fast-forwarded spans - a stall in flight across a warp
        already had its skipped cycles extrapolated into the warped
        epoch's counters.
        """
        duration = self.engine.elapsed(start)
        if duration <= 0:
            return
        if reason == "sb":
            if self._outstanding_demand:
                self.pmu.add(self.scope, "resource_stalls.sb", duration)
            else:
                self.pmu.add(self.scope, "exe_activity.bound_on_stores", duration)
            return
        if reason == "lfb_full":
            self.pmu.add(self.scope, "l1d_pend_miss.fb_full", duration)
        # Intel semantics: memory_activity.stalls_lX_miss counts execution
        # stall cycles while *any* LX-miss demand load is outstanding.
        # The blocking request's own miss flags stand in for the counts,
        # which may already have been decremented by the time we wake.
        if (
            reason == "lfb_full"
            or self._l1_miss_out.count > 0
            or (request is not None and request.missed_l1)
        ):
            self.pmu.add(self.scope, "memory_activity.stalls_l1d_miss", duration)
        if self._l2_miss_out.count > 0 or (
            request is not None and request.missed_l2
        ):
            self.pmu.add(self.scope, "memory_activity.stalls_l2_miss", duration)
        if self._l3_miss_out.count > 0 or (
            request is not None and request.missed_llc
        ):
            self.pmu.add(self.scope, "cycle_activity.stalls_l3_miss", duration)

    # -- store path (DWr / RFO, section 2.2 paths #2-#3) -------------------

    def _issue_store(self, address: int) -> None:
        entry = self.sb.allocate(address // 64)
        if entry is None:
            start = self.engine.now
            self.sb.space_waiter.wait(
                lambda: (self._stalled(start, "sb", None), self._issue_store(address))
            )
            return
        self.stores_issued += 1
        self.pmu.add(self.scope, "mem_inst_retired.all_stores")
        for addr, path in self.prefetchers.on_l1_access(address):
            self._issue_hw_prefetch(addr, path)
        line = self.l1d.lookup(address)
        if line is not None and line.state in _OWNED_STATES:
            # Owned: commit in place, drain the SB entry after commit latency.
            line.state = MESIF.MODIFIED
            line.dirty = True
            self.cha.directory.mark_modified(address // 64, self.core_id)
            self.engine.after(self.l1_latency, lambda: self.sb.release(entry))
            self._op_done()
            return
        # Not owned: RFO to gain exclusive access.  The pipeline moves on;
        # the SB entry drains when ownership data returns.  Stores to a
        # line whose RFO is already in flight coalesce onto it.
        line = address // 64
        pending = self._rfo_pending.get(line)
        if pending is not None:
            pending.append(entry)
            self._op_done()
            return
        self._rfo_pending[line] = [entry]
        if self.recorder is None:
            request = MemRequest.acquire(
                address, Path.RFO, self.core_id, self.engine.now
            )
            request.missed_l1 = True
        else:
            request = MemRequest(
                address=address,
                path=Path.RFO,
                core_id=self.core_id,
                issue_time=self.engine.now,
            )
            request.missed_l1 = True
            self.recorder.maybe_trace(request)
        self.pmu.add(self.scope, "l2_rqsts.all_rfo")

        def rfo_done(req: MemRequest) -> None:
            self._fill_l1(req.address, state=MESIF.MODIFIED, dirty=True)
            self.cha.directory.mark_modified(req.line, self.core_id)
            self._record_latency(req)
            for waiting in self._rfo_pending.pop(req.line, []):
                self.sb.release(waiting)
            if self.recorder is None:
                req.release()

        self._access_l2(request, rfo_done)
        self._op_done()

    # -- load path (DRd, section 2.2 path #1) ----------------------------------

    def _issue_load(self, address: int, dependent: bool) -> None:
        # A dependent load must wait for the previous load's data; a full
        # out-of-order window must wait for the oldest load to drain.
        previous = self._last_load
        blocker: Optional[MemRequest] = None
        if dependent and previous is not None and previous.completion_time is None:
            blocker = previous
        elif len(self._outstanding_demand) >= self.max_outstanding_loads:
            blocker = next(iter(self._outstanding_demand.values()))
        if blocker is not None:
            start = self.engine.now
            self._watch_completion(
                blocker,
                lambda: (
                    self._stalled(start, "load", blocker),
                    self._issue_load(address, dependent),
                ),
            )
            return
        self.loads_issued += 1
        self.pmu.add(self.scope, "mem_inst_retired.all_loads")
        for addr, path in self.prefetchers.on_l1_access(address):
            self._issue_hw_prefetch(addr, path)
        line = self.l1d.lookup(address)
        if line is not None:
            self.pmu.add(self.scope, "mem_load_retired.l1_hit")
            self._last_load = None
            self._op_done()
            return
        request = MemRequest(
            address=address,
            path=Path.DRD,
            core_id=self.core_id,
            issue_time=self.engine.now,
        )
        request.missed_l1 = True
        if self.recorder is not None:
            self.recorder.maybe_trace(request)
        self._outstanding_demand[request.req_id] = request
        self._l1_miss_out.inc(self.engine.now)
        self._last_load = request
        # LFB: coalesce onto an in-flight line, else take a new entry.
        # Intel keeps l1_hit / l1_miss / fb_hit disjoint (Table 1).
        if self.lfb.coalesce(request.line, lambda t: self._demand_filled(request)):
            self.pmu.add(self.scope, "mem_load_retired.fb_hit")
            self._op_done()
            return
        self.pmu.add(self.scope, "mem_load_retired.l1_miss")
        self._allocate_lfb_and_descend(request)

    def _allocate_lfb_and_descend(self, request: MemRequest) -> None:
        entry = self.lfb.allocate(request)
        if entry is None:
            start = self.engine.now
            self.lfb.space_waiter.wait(
                lambda: (
                    self._stalled(start, "lfb_full", None),
                    self._allocate_lfb_and_descend(request),
                )
            )
            return
        if self.recorder is not None:
            self.recorder.hop(request, "LFB", "enq")
        self._oro_demand_rd.inc(self.engine.now)
        self._oro_all_rd.inc(self.engine.now)

        def load_done(req: MemRequest) -> None:
            self._fill_l1(req.address, state=MESIF.EXCLUSIVE)
            self._record_latency(req)
            self._oro_demand_rd.dec(self.engine.now)
            self._oro_all_rd.dec(self.engine.now)
            self.lfb.fill(req.line)
            if self.recorder is not None:
                self.recorder.hop(req, "LFB", "deq")
            self._demand_filled(req)

        self._access_l2(request, load_done)
        self._op_done()

    def _demand_filled(self, request: MemRequest) -> None:
        """A demand load's data is usable: clear outstanding bookkeeping."""
        now = self.engine.now
        if request.completion_time is None:
            request.completion_time = now
        if self.recorder is not None:
            self.recorder.complete(request)
        self._outstanding_demand.pop(request.req_id, None)
        self._l1_miss_out.dec(now)
        if request.missed_l2 and request.path is Path.DRD:
            self._l2_miss_out.dec(now)
        if request.missed_llc and request.path is Path.DRD:
            self._l3_miss_out.dec(now)
        self._notify_completion(request)

    def _watch_completion(self, request: MemRequest, callback: Callable[[], None]) -> None:
        """Poll-free completion watch: piggyback on the request's fill."""
        if request.completion_time is not None:
            self.engine.post(callback)
            return
        waiters = request._completion_waiters
        if waiters is None:
            request._completion_waiters = [callback]
        else:
            waiters.append(callback)

    def _notify_completion(self, request: MemRequest) -> None:
        waiters = request._completion_waiters
        if waiters:
            post = self.engine.post
            for callback in waiters:
                post(callback)
            request._completion_waiters = None

    # -- L2 and beyond ------------------------------------------------------

    def _access_l2(
        self, request: MemRequest, on_done: Callable[[MemRequest], None]
    ) -> None:
        """Look up L2 after the L1->L2 transfer latency."""
        self.engine.after(self.l2_latency, lambda: self._at_l2(request, on_done))

    def _at_l2(
        self, request: MemRequest, on_done: Callable[[MemRequest], None]
    ) -> None:
        engine = self.engine
        request.hops.append(("l2", engine.now))
        if self.recorder is not None:
            self.recorder.hop(request, "L2", "enq")
        path = request.path
        self.pmu.add_many(self.scope, _L2_REF_KEYS[path])
        line = self.l2.lookup(request.address)
        # Prefetchers train on demand traffic only; letting prefetches
        # re-train them would self-sustain an infinite stream.
        if path in _DEMAND_PATHS:
            for addr, pf_path in self.prefetchers.on_l2_access(
                request.address, path is Path.RFO
            ):
                self._issue_hw_prefetch(addr, pf_path)
        if line is not None:
            self._count_l2(request, hit=True)
            if path in _RFO_PATHS and line.state in (
                MESIF.SHARED,
                MESIF.FORWARD,
            ):
                # Upgrade needed despite L2 presence: go to CHA.
                if self.recorder is not None:
                    self.recorder.hop(request, "L2", "deq")
                self._go_uncore(request, on_done)
                return
            engine.after(
                self.l2_latency, lambda: self._l2_served(request, on_done)
            )
            return
        self._count_l2(request, hit=False)
        request.missed_l2 = True
        if self.recorder is not None:
            self.recorder.hop(request, "L2", "deq")
        if path is Path.DRD:
            self._l2_miss_out.inc(engine.now)
        self._go_uncore(request, on_done)

    def _l2_served(self, request: MemRequest, on_done) -> None:
        request.complete(ServeLocation.L2, self.engine.now)
        if self.recorder is not None:
            self.recorder.hop(request, "L2", "deq")
            self.recorder.complete(request)
        on_done(request)
        self._notify_completion(request)

    def _count_l2(self, request: MemRequest, hit: Optional[bool], silent: bool = False) -> None:
        if hit is None:
            self.pmu.add_many(self.scope, _L2_REF_KEYS[request.path])
            return
        if silent:
            return
        keys = _L2_OUT_KEYS[(request.path, hit)]
        if not hit and request.is_store:
            keys = keys[:-1]  # stores do not count offcore_requests.data_rd
        self.pmu.add_many(self.scope, keys)

    def _go_uncore(self, request: MemRequest, on_done) -> None:
        if request.path is Path.DRD:
            # The L3-miss-outstanding meter ticks only once the CHA resolves
            # the lookup as a miss; the CHA flips this hook at that point.
            request.on_llc_miss = lambda: self._l3_miss_out.inc(self.engine.now)

        def uncore_done(req: MemRequest) -> None:
            self._fill_l2(req)
            on_done(req)
            self._notify_completion(req)

        self.cha.submit(request, uncore_done)

    # -- fills / evictions ---------------------------------------------------

    def _fill_l2(self, request: MemRequest) -> None:
        state = (
            MESIF.EXCLUSIVE
            if request.path in _RFO_PATHS
            else MESIF.SHARED
        )
        evicted = self.l2.fill(request.address, state=state)
        if evicted is not None:
            self.l1d.invalidate(evicted.address)
            if evicted.dirty:
                self.cha.writeback(evicted.address, self.core_id)
            else:
                self.cha.directory.drop(evicted.address // 64, self.core_id)

    def _fill_l1(self, address: int, state: MESIF, dirty: bool = False) -> None:
        evicted = self.l1d.fill(address, state=state, dirty=dirty)
        if evicted is not None:
            self.pmu.add(self.scope, "l1d.replacement")
            if evicted.dirty:
                # Dirty L1 victim folds into L2 (write-back cache).
                self.l2.fill(evicted.address, state=MESIF.MODIFIED, dirty=True)

    def _record_latency(self, request: MemRequest) -> None:
        if request.serve_location is None or request.completion_time is None:
            return
        sum_key, count_key = _LAT_KEYS[request.serve_location]
        self.pmu.add(self.scope, sum_key,
                     self.engine.elapsed(request.issue_time,
                                         request.completion_time))
        self.pmu.add(self.scope, count_key)

    # -- prefetch issue -----------------------------------------------------

    def _issue_hw_prefetch(self, address: int, path: Path) -> None:
        """Asynchronous prefetch: never blocks, drops instead of stalling."""
        if self.l1d.probe(address) is not None:
            return
        pooled = self.recorder is None
        if pooled:
            request = MemRequest.acquire(address, path, self.core_id, self.engine.now)
            request.missed_l1 = True
        else:
            request = MemRequest(
                address=address,
                path=path,
                core_id=self.core_id,
                issue_time=self.engine.now,
            )
            request.missed_l1 = True
            self.recorder.maybe_trace(request)
        if path is Path.L1_HWPF:
            if self.lfb.full or self.lfb.outstanding(request.line) is not None:
                if pooled:
                    request.release()
                return  # hardware drops prefetches under pressure
            self.lfb.allocate(request)
            self._oro_all_rd.inc(self.engine.now)

            def l1pf_done(req: MemRequest) -> None:
                self._fill_l1(req.address, state=MESIF.SHARED)
                self._oro_all_rd.dec(self.engine.now)
                self.lfb.fill(req.line)
                if self.recorder is None:
                    req.release()

            self._access_l2(request, l1pf_done)
        else:
            if self.l2.probe(address) is not None or request.line in self._l2_pf_pending:
                if pooled:
                    request.release()
                return  # already present or in flight; hardware drops the dup
            self._l2_pf_pending.add(request.line)

            def l2pf_done(req: MemRequest) -> None:
                self._l2_pf_pending.discard(req.line)
                if self.recorder is None:
                    req.release()

            self._access_l2(request, l2pf_done)

    def _issue_swpf(self, address: int) -> None:
        self.pmu.add(self.scope, "sw_prefetch_access.any")
        if self.l1d.probe(address) is not None:
            return
        pooled = self.recorder is None
        if pooled:
            request = MemRequest.acquire(
                address, Path.SWPF, self.core_id, self.engine.now
            )
            request.missed_l1 = True
        else:
            request = MemRequest(
                address=address,
                path=Path.SWPF,
                core_id=self.core_id,
                issue_time=self.engine.now,
            )
            request.missed_l1 = True
            self.recorder.maybe_trace(request)
        if self.lfb.full or self.lfb.outstanding(request.line) is not None:
            if pooled:
                request.release()
            return

        self.lfb.allocate(request)

        def swpf_done(req: MemRequest) -> None:
            self._fill_l1(req.address, state=MESIF.SHARED)
            self.lfb.fill(req.line)
            if self.recorder is None:
                req.release()

        self._access_l2(request, swpf_done)

    # -- PMU sync -----------------------------------------------------------

    def _sync(self, now: float) -> None:
        self.sb.sync(now)
        self.lfb.sync(now)
        for integ in (
            self._oro_demand_rd,
            self._oro_all_rd,
            self._l1_miss_out,
            self._l2_miss_out,
            self._l3_miss_out,
        ):
            integ.sync(now)
        s = self.scope
        self.pmu.set(s, "sb.occupancy", self.sb.stats.occupancy_integral)
        self.pmu.set(s, "sb.inserts", float(self.sb.allocations))
        self.pmu.set(s, "lfb.occupancy", self.lfb.stats.occupancy_integral)
        self.pmu.set(s, "lfb.inserts", float(self.lfb.allocations))
        self.pmu.set(s, "ORO.demand_data_rd", self._oro_demand_rd.integral)
        self.pmu.set(
            s, "ORO.cycles_with_demand_data_rd", self._oro_demand_rd.active_cycles
        )
        self.pmu.set(s, "ORO.data_rd", self._oro_all_rd.integral)
        self.pmu.set(s, "ORO.cycles_with_data_rd", self._oro_all_rd.active_cycles)
        self.pmu.set(s, "cycle_activity.cycles_l1d_miss", self._l1_miss_out.active_cycles)
        self.pmu.set(s, "cycle_activity.cycles_l2_miss", self._l2_miss_out.active_cycles)
        self.pmu.set(s, "cycle_activity.cycles_l3_miss_out", self._l3_miss_out.active_cycles)
        self.pmu.set(s, "ORO.l3_miss_demand_data_rd", self._l3_miss_out.integral)
        self.pmu.set(s, "cpu_clk_unhalted", now)
        self.pmu.set(s, "app.ops_completed", float(self.ops_completed))
