"""Caching and Home Agent (CHA): LLC slices, snoop filter, TOR.

Each CHA couples one LLC slice with a snoop-filter directory partition and
a Table of Requests (TOR) - the hardware queue whose insert/occupancy
counters are PFBuilder's main uncore signal (Table 5).  Requests arriving
from cores are TOR-tracked from insertion until their data returns, and
classified by outcome exactly the way ``unc_cha_tor_inserts.ia_*`` does:
hit, miss, miss targeting local DDR, SNC-distant DDR, remote socket, or
CXL.  The same resolution also feeds the per-core ``ocr.*`` offcore
response counters (Table 2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..pmu.registry import CounterRegistry
from .address import AddressSpace, NodeKind
from .cache import Cache, MESIF
from .coherence import Directory
from .engine import Engine
from .flexbus import M2PCIe
from .imc import IMC
from .mesh import Mesh
from .request import MemRequest, Path, ServeLocation

# TOR insert event per architectural path (Table 5's PFBuilder mapping).
TOR_EVENT_BY_PATH: Dict[Path, str] = {
    Path.DRD: "unc_cha_tor_inserts.ia_drd",
    Path.RFO: "unc_cha_tor_inserts.ia_rfo",
    Path.L1_HWPF: "unc_cha_tor_inserts.ia_drd_pref",
    Path.L2_HWPF_DRD: "unc_cha_tor_inserts.ia_drd_pref",
    Path.SWPF: "unc_cha_tor_inserts.ia_drd_pref",
    Path.L2_HWPF_RFO: "unc_cha_tor_inserts.ia_rfo_pref",
    Path.DWR: "unc_cha_tor_inserts.ia_wb",
}

OCR_EVENT_BY_PATH: Dict[Path, str] = {
    Path.DRD: "ocr.demand_data_rd",
    Path.RFO: "ocr.rfo",
    Path.L1_HWPF: "ocr.l1d_hw_pf",
    Path.L2_HWPF_DRD: "ocr.l2_hw_pf_drd",
    Path.SWPF: "ocr.demand_data_rd",  # SW PF merges into DRd (section 3.2)
    Path.L2_HWPF_RFO: "ocr.l2_hw_pf_rfo",
    Path.DWR: "ocr.modified_write",
}

# Serve-location -> ocr scenario suffix (Table 2's 9 scenarios).
OCR_SUFFIX: Dict[ServeLocation, str] = {
    ServeLocation.LOCAL_LLC: "l3_hit",
    ServeLocation.SNC_LLC: "snc_cache",
    ServeLocation.REMOTE_LLC: "remote_cache",
    ServeLocation.LOCAL_DRAM: "local_dram",
    ServeLocation.REMOTE_DRAM: "remote_dram",
    ServeLocation.CXL_DRAM: "cxl_dram",
}


def _build_tor_tables():
    """Precompute every TOR-insert / TOR-occupancy key tuple.

    A TOR insert's scenario expansion depends only on (path, outcome):
    ``None`` target means LLC hit, a :class:`NodeKind` names the miss
    target.  Expanding the cross-product once at import turns the per
    request key-building loops of ``_at_slice`` into two dict lookups.
    Key order matches the original per-request construction.
    """
    insert_keys: Dict[tuple, tuple] = {}
    occ_keys: Dict[tuple, tuple] = {}
    for path, event in TOR_EVENT_BY_PATH.items():
        sub_event = event.rsplit(".", 1)[1]  # e.g. "ia_drd"
        insert_keys[(path, None)] = (
            f"{event}.total", "unc_cha_tor_inserts.ia.total",
            f"{event}.hit", "unc_cha_tor_inserts.ia.hit",
        )
        occ_keys[(path, None)] = (
            f"{sub_event}.total", "ia.total", f"{sub_event}.hit",
        )
        for kind in NodeKind:
            keys = [
                f"{event}.total", "unc_cha_tor_inserts.ia.total",
                f"{event}.miss", "unc_cha_tor_inserts.ia.miss",
            ]
            if kind is NodeKind.LOCAL_DDR:
                keys += [f"{event}.miss_local", f"{event}.miss_local_ddr",
                         f"{event}.miss_ddr"]
            elif kind is NodeKind.REMOTE_DDR:
                keys += [f"{event}.miss_remote", f"{event}.miss_remote_ddr",
                         f"{event}.miss_ddr"]
            elif kind is NodeKind.CXL:
                keys += [f"{event}.miss_cxl",
                         "unc_cha_tor_inserts.ia.miss_cxl"]
            insert_keys[(path, kind)] = tuple(keys)
            occ = [f"{sub_event}.total", "ia.total", f"{sub_event}.miss"]
            if kind is NodeKind.CXL:
                occ += [f"{sub_event}.miss_cxl", "ia.miss_cxl"]
            occ_keys[(path, kind)] = tuple(occ)
    return insert_keys, occ_keys


def _build_ocr_table():
    """Precompute OCR scenario key tuples per (path, serve location)."""
    table: Dict[tuple, tuple] = {}
    for path, event in OCR_EVENT_BY_PATH.items():
        for location in ServeLocation:
            keys = [f"{event}.any_response"]
            suffix = OCR_SUFFIX.get(location)
            if suffix:
                keys.append(f"{event}.{suffix}")
            if location.is_memory or location is ServeLocation.REMOTE_LLC:
                keys.append(f"{event}.non_local_cache")
            table[(path, location)] = tuple(keys)
    return table


_TOR_INSERT_KEYS, _TOR_OCC_KEYS = _build_tor_tables()
_OCR_KEYS = _build_ocr_table()

# Memoized "core{N}" scope strings (f-string formatting is measurable on
# the per-request OCR emission path).
_CORE_SCOPES: Dict[int, str] = {}


def _core_scope(core_id: int) -> str:
    scope = _CORE_SCOPES.get(core_id)
    if scope is None:
        scope = _CORE_SCOPES[core_id] = f"core{core_id}"
    return scope


class _CategoryOccupancy:
    """Time-integrated in-flight count per (event, scenario) category.

    Implements the ``unc_cha_tor_occupancy.*`` family: for each cycle,
    accumulate the number of valid TOR entries of that category.  State is
    flat: category keys are interned to slots in parallel ``array``s so
    the per-request enter/exit loops touch no per-key dict entries.
    """

    __slots__ = ("_index", "_keys", "_depth", "_integral", "_last")

    def __init__(self) -> None:
        from array import array

        self._index: Dict[str, int] = {}
        self._keys: List[str] = []
        self._depth = array("q")
        self._integral = array("d")
        self._last = array("d")

    def _slot(self, key: str, now: float) -> int:
        idx = len(self._keys)
        self._index[key] = idx
        self._keys.append(key)
        self._depth.append(0)
        self._integral.append(0.0)
        self._last.append(now)
        return idx

    def enter_many(self, keys, now: float) -> None:
        index = self._index
        depth, integral, last = self._depth, self._integral, self._last
        for key in keys:
            idx = index.get(key)
            if idx is None:
                idx = self._slot(key, now)
            d = depth[idx]
            dt = now - last[idx]
            if dt:
                integral[idx] += d * dt
                last[idx] = now
            depth[idx] = d + 1

    def exit_many(self, keys, now: float) -> None:
        index = self._index
        depth, integral, last = self._depth, self._integral, self._last
        for key in keys:
            idx = index[key]
            d = depth[idx]
            dt = now - last[idx]
            if dt:
                integral[idx] += d * dt
                last[idx] = now
            depth[idx] = d - 1

    def enter(self, key: str, now: float) -> None:
        self.enter_many((key,), now)

    def exit(self, key: str, now: float) -> None:
        self.exit_many((key,), now)

    def sync(self, now: float) -> Dict[str, float]:
        depth, integral, last = self._depth, self._integral, self._last
        for idx in range(len(self._keys)):
            dt = now - last[idx]
            if dt:
                integral[idx] += depth[idx] * dt
                last[idx] = now
        return dict(zip(self._keys, integral))


class CHASlice:
    """One LLC slice + its TOR."""

    def __init__(
        self,
        slice_id: int,
        cluster: int,
        llc: Cache,
        engine: Engine,
        tor_depth: int = 88,
    ) -> None:
        self.slice_id = slice_id
        self.cluster = cluster
        self.llc = llc
        self.tor_inflight = 0
        self.tor_depth = tor_depth
        self.engine = engine
        self.stamp_name = f"cha{slice_id}"


class CHA:
    """Socket-level CHA complex: slice array, directory, routing."""

    def __init__(
        self,
        engine: Engine,
        pmu: CounterRegistry,
        address_space: AddressSpace,
        mesh: Mesh,
        imc: IMC,
        m2pcie_by_node: Dict[int, M2PCIe],
        num_slices: int = 8,
        num_clusters: int = 2,
        llc_size_bytes: int = 60 * (1 << 20),
        llc_ways: int = 12,
        llc_policy: str = "lru",
        llc_hit_latency: float = 46.0,
        snoop_latency: float = 70.0,
        socket: int = 0,
        cores_per_cluster: int = 16,
    ) -> None:
        self.engine = engine
        self.pmu = pmu
        self.address_space = address_space
        self.mesh = mesh
        self.imc = imc
        self.m2pcie_by_node = m2pcie_by_node
        self.socket = socket
        self.num_clusters = max(1, num_clusters)
        self.cores_per_cluster = cores_per_cluster
        self.llc_hit_latency = llc_hit_latency
        self.snoop_latency = snoop_latency
        self.directory = Directory(socket)
        slice_size = llc_size_bytes // num_slices
        self.slices: List[CHASlice] = [
            CHASlice(
                s,
                cluster=s % self.num_clusters,
                llc=Cache(slice_size, llc_ways, name=f"llc{s}", policy=llc_policy),
                engine=engine,
            )
            for s in range(num_slices)
        ]
        self._occupancy = _CategoryOccupancy()
        # Flight recorder; None unless the profiling spec asked for tracing.
        self.recorder = None
        self.scope = f"cha{socket}"
        pmu.on_sync(self._sync)
        # Dirty LLC evictions become memory write-backs; the machine wires
        # this to the core-independent write-back issuer.
        self.writeback_sink: Optional[Callable[[int], None]] = None

    # -- helpers ----------------------------------------------------------

    def slice_for(self, address: int) -> CHASlice:
        return self.slices[(address // 64) % len(self.slices)]

    def cluster_of_core(self, core_id: int) -> int:
        return core_id // self.cores_per_cluster % self.num_clusters

    def _classify_hit(self, core_id: int, cha_slice: CHASlice) -> ServeLocation:
        if cha_slice.cluster == self.cluster_of_core(core_id):
            return ServeLocation.LOCAL_LLC
        return ServeLocation.SNC_LLC

    def _memory_location(self, kind: NodeKind) -> ServeLocation:
        if kind is NodeKind.LOCAL_DDR:
            return ServeLocation.LOCAL_DRAM
        if kind is NodeKind.REMOTE_DDR:
            return ServeLocation.REMOTE_DRAM
        return ServeLocation.CXL_DRAM

    # -- counter emission ------------------------------------------------

    def _tor_insert_counters(
        self, request: MemRequest, outcome: str, target: Optional[NodeKind]
    ) -> List[str]:
        """Expand one TOR insert into its scenario counter keys."""
        key = (request.path, None if outcome == "hit" else target)
        return list(_TOR_INSERT_KEYS[key])

    def _emit_ocr(self, request: MemRequest, location: ServeLocation) -> None:
        self.pmu.add_many(
            _core_scope(request.core_id), _OCR_KEYS[(request.path, location)]
        )

    # -- main entry ---------------------------------------------------------

    def submit(
        self, request: MemRequest, on_response: Callable[[MemRequest], None]
    ) -> None:
        """An L2 miss arrives from a core (after the core->CHA mesh hop)."""
        cha_slice = self.slice_for(request.address)
        same_cluster = cha_slice.cluster == self.cluster_of_core(request.core_id)
        hop = self.mesh.core_to_cha_latency(same_cluster)
        self.mesh.send(hop, lambda: self._at_slice(request, cha_slice, on_response))

    def _at_slice(
        self,
        request: MemRequest,
        cha_slice: CHASlice,
        on_response: Callable[[MemRequest], None],
    ) -> None:
        now = self.engine.now
        request.stamp(cha_slice.stamp_name, now)
        if self.recorder is not None:
            self.recorder.hop(request, "LLC", "enq")
        node = self.address_space.node_of(request.address)
        request.dest_node = node.node_id
        line = cha_slice.llc.lookup(request.address)
        # TOR bookkeeping: insert counters + occupancy from now to response.
        # (path, None) keys the hit expansion, (path, kind) the miss one.
        table_key = (request.path, None if line is not None else node.kind)
        self.pmu.add_many(self.scope, _TOR_INSERT_KEYS[table_key])
        occ_keys = _TOR_OCC_KEYS[table_key]
        self._occupancy.enter_many(occ_keys, now)
        cha_slice.tor_inflight += 1

        def respond(req: MemRequest, location: ServeLocation) -> None:
            end = self.engine.now
            self._occupancy.exit_many(occ_keys, end)
            cha_slice.tor_inflight -= 1
            req.complete(location, end)
            if self.recorder is not None:
                self.recorder.hop(req, "LLC", "deq")
                self.recorder.complete(req)
            self._emit_ocr(req, location)
            on_response(req)

        if line is not None:
            location = self._classify_hit(request.core_id, cha_slice)
            if request.path is Path.RFO or (
                request.path is Path.DWR and request.is_store
            ):
                # Ownership transfer: invalidate other sharers.
                self.directory.read_for_ownership(request.line, request.core_id)
                line.state = MESIF.EXCLUSIVE
            self.engine.after(
                self.llc_hit_latency, lambda: respond(request, location)
            )
            return
        request.missed_llc = True
        if request.on_llc_miss is not None:
            request.on_llc_miss()
        self._resolve_miss(request, cha_slice, respond)

    def llc_lookup(self, address: int, cha_slice: Optional[CHASlice] = None):
        if cha_slice is None:
            cha_slice = self.slice_for(address)
        return cha_slice.llc.lookup(address)

    # -- miss resolution ------------------------------------------------------

    def _resolve_miss(
        self,
        request: MemRequest,
        cha_slice: CHASlice,
        respond: Callable[[MemRequest, ServeLocation], None],
    ) -> None:
        # 1. Snoop filter: can another core's private cache forward the line?
        if request.path in (Path.RFO, Path.L2_HWPF_RFO):
            snoop = self.directory.read_for_ownership(request.line, request.core_id)
        else:
            snoop = self.directory.read(request.line, request.core_id)
        if snoop.hit and not request.is_store:
            # Table 2's serve classes: a same-cluster core forward counts
            # under the l3_hit scenario ("snooped from another core's
            # caches on the same socket"), a cross-cluster forward under
            # snc_cache; cross-socket forwards would be remote_cache.
            forwarder_cluster = self.cluster_of_core(snoop.served_by_core)
            requester_cluster = self.cluster_of_core(request.core_id)
            if forwarder_cluster == requester_cluster:
                location = ServeLocation.LOCAL_LLC
                delay = self.snoop_latency
            else:
                location = ServeLocation.SNC_LLC
                delay = self.snoop_latency + self.mesh.snc_penalty
            if snoop.had_modified:
                self.pmu.add(self.scope, "unc_cha_snoop.hitm")
            else:
                self.pmu.add(self.scope, "unc_cha_snoop.hit")
            self.engine.after(
                delay,
                lambda: self._fill_and_respond(request, cha_slice, location, respond),
            )
            return
        # 2. Route to the owning memory.
        node = self.address_space.node_of(request.address)
        location = self._memory_location(node.kind)
        if node.kind is NodeKind.CXL:
            m2pcie = self.m2pcie_by_node[node.node_id]
            hop = self.mesh.cha_to_flexbus_latency()

            def to_flexbus() -> None:
                accepted = m2pcie.submit(
                    request,
                    lambda req: self._fill_and_respond(
                        req, cha_slice, location, respond
                    ),
                )
                if not accepted:
                    m2pcie.wait_for_slot(to_flexbus)

            self.mesh.send(hop, to_flexbus)
        else:
            cross = node.kind is NodeKind.REMOTE_DDR
            hop = self.mesh.cha_to_memory_latency(cross_socket=cross)

            def to_imc() -> None:
                accepted = self.imc.submit(
                    request,
                    lambda req: self._fill_and_respond(
                        req, cha_slice, location, respond
                    ),
                )
                if not accepted:
                    self.imc.wait_for_slot(request, to_imc)

            self.mesh.send(hop, to_imc)

    def _fill_and_respond(
        self,
        request: MemRequest,
        cha_slice: CHASlice,
        location: ServeLocation,
        respond: Callable[[MemRequest, ServeLocation], None],
    ) -> None:
        """Data (or completion) arrived: install in LLC, return to core."""
        if request.path is not Path.DWR:
            state = MESIF.EXCLUSIVE if request.path in (
                Path.RFO, Path.L2_HWPF_RFO
            ) else MESIF.FORWARD
            evicted = cha_slice.llc.fill(request.address, state=state)
            if evicted is not None and evicted.dirty and self.writeback_sink:
                self.writeback_sink(evicted.address)
        respond(request, location)

    # -- write-back path (DWr) -------------------------------------------------

    def writeback(self, address: int, core_id: int, on_done=None) -> None:
        """A dirty line leaves a core's private caches (DWr path).

        Dirty data is absorbed by the LLC slice; if the line's home is CXL
        or the LLC copy gets evicted later, the data moves to memory as an
        RwD/WPQ store.  Write-backs to CXL-homed lines stream through to
        the device (host LLC is not a persistence point for device memory
        in this model), producing the CXL.mem store transactions of path #2.
        """
        request = MemRequest(
            address=address,
            path=Path.DWR,
            core_id=core_id,
            issue_time=self.engine.now,
            is_store=True,
        )
        cha_slice = self.slice_for(address)
        node = self.address_space.node_of(address)
        event = TOR_EVENT_BY_PATH[Path.DWR]
        self.pmu.add(self.scope, f"{event}.total")
        self.directory.drop(request.line, core_id)
        if self.recorder is not None:
            self.recorder.maybe_trace(request)

        def done(req: MemRequest) -> None:
            req.complete(self._memory_location(node.kind), self.engine.now)
            if self.recorder is not None:
                self.recorder.complete(req)
            self._emit_ocr(req, req.serve_location)
            if on_done is not None:
                on_done(req)

        if node.kind is NodeKind.CXL:
            self.pmu.add(self.scope, f"{event}.m_to_i")
            m2pcie = self.m2pcie_by_node[node.node_id]
            hop = self.mesh.cha_to_flexbus_latency()

            def to_flexbus() -> None:
                if not m2pcie.submit(request, done):
                    m2pcie.wait_for_slot(to_flexbus)

            self.mesh.send(hop, to_flexbus)
        else:
            self.pmu.add(self.scope, f"{event}.m_to_e")
            cha_slice.llc.fill(address, state=MESIF.MODIFIED, dirty=True)
            hop = self.mesh.cha_to_memory_latency(
                cross_socket=node.kind is NodeKind.REMOTE_DDR
            )

            def to_imc() -> None:
                if not self.imc.submit(request, done):
                    self.imc.wait_for_slot(request, to_imc)

            self.mesh.send(hop, to_imc)

    # -- PMU sync ---------------------------------------------------------

    def _sync(self, now: float) -> None:
        for key, integral in self._occupancy.sync(now).items():
            self.pmu.set(self.scope, f"unc_cha_tor_occupancy.{key}", integral)
        for transition, count in self.directory.transitions.items():
            self.pmu.set(self.scope, f"unc_cha_state.{transition}", float(count))
        hits = sum(s.llc.hits for s in self.slices)
        misses = sum(s.llc.misses for s in self.slices)
        self.pmu.set(self.scope, "llc_lookup.hits", float(hits))
        self.pmu.set(self.scope, "llc_lookup.misses", float(misses))
