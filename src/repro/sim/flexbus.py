"""M2PCIe block and FlexBus link.

CXL.mem rides the Flex Bus I/O architecture: requests leaving the mesh for
a CXL DIMM funnel through the per-root-port M2PCIe block (ingress queue),
cross the FlexBus link as flits, and responses return through the M2PCIe
egress queue (Table 3's ``unc_m2p_*`` counters).  The link is the shared
bandwidth pipe where the paper finds concurrent CXL mFlows first contend
(case 4, Figure 9-h), so it is modelled as a real credit-limited server.
"""

from __future__ import annotations

from typing import Callable

from ..pmu.registry import CounterRegistry
from .engine import Engine
from .queues import MonitoredQueue, Server
from .request import CXLOpcode, MemRequest

# Flit sizing (section 2.1): 68B flits carry a 64B payload for data
# messages; request/response-only flits are header-sized.
DATA_FLIT_BYTES = 68.0
HEADER_FLIT_BYTES = 16.0


class FlexBusLink:
    """One direction of the FlexBus: latency + serialisation bandwidth."""

    def __init__(
        self,
        engine: Engine,
        bytes_per_cycle: float,
        propagation: float,
        name: str,
        queue_depth: int = 256,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(f"{name}: non-positive link bandwidth")
        self.engine = engine
        self.bytes_per_cycle = bytes_per_cycle
        self.propagation = propagation
        self.queue = MonitoredQueue(engine, queue_depth, name=name)
        self._server = Server(
            engine,
            self.queue,
            service_time=self._serialize,
            on_done=self._launch,
            name=name,
        )

    def _serialize(self, item) -> float:
        flit_bytes, _ = item
        return flit_bytes / self.bytes_per_cycle

    def _launch(self, item) -> None:
        _, callback = item
        self.engine.after(self.propagation, callback)

    def transmit(self, flit_bytes: float, on_arrival: Callable[[], None]) -> bool:
        return self._server.submit((flit_bytes, on_arrival))

    def utilization(self, elapsed: float) -> float:
        return self._server.utilization(elapsed)


class M2PCIe:
    """Host-side root port block for one CXL endpoint.

    ``submit`` carries M2S traffic device-ward; the attached CXL device
    calls :meth:`deliver_response` for S2M traffic, which lands in the
    egress queue and is handed back to the CHA after a mesh hop.
    """

    def __init__(
        self,
        engine: Engine,
        pmu: CounterRegistry,
        scope: str = "m2pcie0",
        link_bytes_per_cycle: float = 9.0,
        link_propagation: float = 90.0,
        ingress_depth: int = 64,
        egress_depth: int = 64,
        data_flit_bytes: float = DATA_FLIT_BYTES,
        header_flit_bytes: float = HEADER_FLIT_BYTES,
    ) -> None:
        self.engine = engine
        self.pmu = pmu
        self.scope = scope
        self.data_flit_bytes = data_flit_bytes
        self.header_flit_bytes = header_flit_bytes
        self.ingress = MonitoredQueue(engine, ingress_depth, name=f"{scope}.rxc")
        self.egress = MonitoredQueue(engine, egress_depth, name=f"{scope}.txc")
        self.down_link = FlexBusLink(
            engine, link_bytes_per_cycle, link_propagation, f"{scope}.down"
        )
        self.up_link = FlexBusLink(
            engine, link_bytes_per_cycle, link_propagation, f"{scope}.up"
        )
        self.device = None  # wired by Machine
        # Flight recorder; None unless the profiling spec asked for tracing.
        self.recorder = None
        # Port arbitration cost per request; QoS throttling (CXL 3.x
        # DevLoad feedback) raises this to pace injection.
        self.arbitration_cycles = 4.0
        self._ingress_server = Server(
            engine,
            self.ingress,
            service_time=lambda _: self.arbitration_cycles,
            on_done=self._to_link,
            name=f"{scope}.ingress",
        )
        pmu.on_sync(self._sync)

    # -- M2S (host -> device) ----------------------------------------------

    def submit(
        self, request: MemRequest, on_response: Callable[[MemRequest], None]
    ) -> bool:
        """Accept one request from the mesh into the ingress queue."""
        request.cxl_opcode = (
            CXLOpcode.M2S_RWD if request.is_store else CXLOpcode.M2S_REQ
        )
        ok = self._ingress_server.submit((request, on_response))
        if ok:
            self.pmu.add(self.scope, "unc_m2p_rxc_inserts.all")
            if self.recorder is not None:
                self.recorder.hop(request, "FlexBus+MC", "enq")
        return ok

    def wait_for_slot(self, retry: Callable[[], None]) -> None:
        self.ingress.space_waiter.wait(retry)

    def _to_link(self, item) -> None:
        request, on_response = item
        flit = self.data_flit_bytes if request.is_store else self.header_flit_bytes
        self.down_link.transmit(
            flit, lambda: self._arrive_at_device(request, on_response)
        )

    def _arrive_at_device(self, request, on_response) -> None:
        if self.device is None:
            raise RuntimeError(f"{self.scope}: no CXL device attached")
        self.device.receive(request, lambda req: self._respond(req, on_response))

    # -- S2M (device -> host) -------------------------------------------------

    def _respond(
        self, request: MemRequest, on_response: Callable[[MemRequest], None]
    ) -> None:
        flit = self.header_flit_bytes if request.is_store else self.data_flit_bytes
        self.up_link.transmit(flit, lambda: self._egress(request, on_response))

    def _egress(self, request, on_response) -> None:
        if request.is_store:
            self.pmu.add(self.scope, "unc_m2p_txc_inserts.ak")
            request.cxl_opcode = CXLOpcode.S2M_NDR
        else:
            self.pmu.add(self.scope, "unc_m2p_txc_inserts.bl")
            request.cxl_opcode = CXLOpcode.S2M_DRS
        self.egress.try_push(request)  # metering only; drained immediately
        if not self.egress.empty:
            self.egress.pop()
        if self.recorder is not None:
            self.recorder.hop(request, "FlexBus+MC", "deq")
        on_response(request)

    def _sync(self, now: float) -> None:
        self.ingress.stats.sync(now)
        self.down_link.queue.stats.sync(now)
        self.up_link.queue.stats.sync(now)
        self.pmu.set(
            self.scope, "unc_m2p_rxc_cycles_ne.all", self.ingress.stats.cycles_not_empty
        )
        self.pmu.set(
            self.scope,
            "unc_m2p_rxc_occupancy.all",
            self.ingress.stats.occupancy_integral,
        )
        # Link serialisation queues: credit-starvation cycles on the FlexBus.
        self.pmu.set(
            self.scope,
            "unc_m2p_link_occupancy",
            self.down_link.queue.stats.occupancy_integral
            + self.up_link.queue.stats.occupancy_integral,
        )
        self.pmu.set(
            self.scope,
            "unc_m2p_link_cycles_ne",
            self.down_link.queue.stats.cycles_not_empty
            + self.up_link.queue.stats.cycles_not_empty,
        )
