"""Cache-coherence directory (snoop filter).

Intel's CHA pairs each LLC slice with a Snoop Filter that tracks which
cores may hold a line and in what aggregate state (section 2.2).  The
MESIF-like protocol means an LLC miss can still be served on-socket by a
core-to-core snoop (HitM / forward), which the CHA PMU classifies by
source.  We keep a directory per socket: line -> (owners, state).

The directory is deliberately precise (no false sharing of SF entries, no
capacity evictions) - the paper's counters do not expose SF conflict
behaviour, so modelling it would add noise without a comparable signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .cache import MESIF


@dataclass(slots=True)
class DirectoryEntry:
    owners: Set[int] = field(default_factory=set)  # core ids with a copy
    state: MESIF = MESIF.INVALID
    dirty_owner: Optional[int] = None              # core holding M


class SnoopResult:
    """Outcome of a directory consult for one request."""

    __slots__ = ("served_by_core", "had_modified", "invalidated", "was_shared")

    def __init__(
        self,
        served_by_core: Optional[int] = None,
        had_modified: bool = False,
        invalidated: int = 0,
        was_shared: bool = False,
    ) -> None:
        self.served_by_core = served_by_core
        self.had_modified = had_modified
        self.invalidated = invalidated
        self.was_shared = was_shared

    @property
    def hit(self) -> bool:
        return self.served_by_core is not None


class Directory:
    """Per-socket coherence directory consulted by the CHA."""

    __slots__ = ("socket", "_entries", "transitions")

    def __init__(self, socket: int = 0) -> None:
        self.socket = socket
        self._entries: Dict[int, DirectoryEntry] = {}
        # Coherence event meters (feed the CHA PMU's state-machine counters).
        self.transitions: Dict[str, int] = {}

    def _note(self, transition: str) -> None:
        self.transitions[transition] = self.transitions.get(transition, 0) + 1

    def entry(self, line: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line)

    # -- request handling ---------------------------------------------------

    def read(self, line: int, requester: int) -> SnoopResult:
        """A DRd/prefetch consults the directory after missing the LLC.

        If some other core holds the line, it is snooped and the data is
        forwarded (F/M state per MESIF); the requester is added as a sharer.
        """
        entry = self._entries.get(line)
        if entry is None or not entry.owners:
            if entry is None:
                entry = DirectoryEntry()
                self._entries[line] = entry
            entry.owners = {requester}
            entry.state = MESIF.EXCLUSIVE
            self._note("I->E")
            return SnoopResult()
        owners = entry.owners
        if requester in owners and len(owners) == 1:
            # Sole-owner re-read: no snoop, no state change (hot path).
            return SnoopResult()
        result = SnoopResult()
        others = owners - {requester}
        if others:
            forwarder = min(others)
            result.served_by_core = forwarder
            result.had_modified = entry.dirty_owner is not None
            result.was_shared = len(owners) > 1
            if entry.state is MESIF.MODIFIED:
                self._note("M->S")
            elif entry.state is MESIF.EXCLUSIVE:
                self._note("E->F")
            entry.state = MESIF.SHARED
            entry.dirty_owner = None
        owners.add(requester)
        return result

    def read_for_ownership(self, line: int, requester: int) -> SnoopResult:
        """An RFO invalidates all other copies and grants E to requester."""
        entry = self._entries.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line] = entry
        elif requester in entry.owners and len(entry.owners) == 1:
            # Sole owner upgrading: no snoop; state resets to E as below.
            entry.state = MESIF.EXCLUSIVE
            entry.dirty_owner = None
            self._note("I->E")
            return SnoopResult()
        result = SnoopResult()
        others = entry.owners - {requester}
        if others:
            result.served_by_core = min(others)
            result.had_modified = entry.dirty_owner is not None
            result.invalidated = len(others)
            result.was_shared = True
            if entry.state is MESIF.SHARED:
                self._note("S->I")
            elif entry.state is MESIF.MODIFIED:
                self._note("M->I")
            else:
                self._note("E->I")
        entry.owners = {requester}
        entry.state = MESIF.EXCLUSIVE
        entry.dirty_owner = None
        self._note("I->E" if not others else "E->E")
        return result

    def mark_modified(self, line: int, owner: int) -> None:
        """The owning core's store retired: line is now M."""
        entry = self._entries.setdefault(line, DirectoryEntry())
        entry.owners = {owner}
        if entry.state is not MESIF.MODIFIED:
            self._note(f"{entry.state.value}->M")
        entry.state = MESIF.MODIFIED
        entry.dirty_owner = owner

    def drop(self, line: int, owner: int) -> bool:
        """A private-cache eviction removed ``owner``'s copy.

        Returns True when the dropped copy was dirty (needs write-back).
        """
        entry = self._entries.get(line)
        if entry is None or owner not in entry.owners:
            return False
        entry.owners.discard(owner)
        was_dirty = entry.dirty_owner == owner
        if was_dirty:
            entry.dirty_owner = None
            self._note("M->I")
        if not entry.owners:
            entry.state = MESIF.INVALID
        return was_dirty

    def sharers(self, line: int) -> Set[int]:
        entry = self._entries.get(line)
        return set(entry.owners) if entry else set()

    def __len__(self) -> int:
        return sum(1 for e in self._entries.values() if e.owners)
