"""Simulated server memory system: the substrate PathFinder profiles.

The paper measures real Intel SPR/EMR servers with CXL Type-3 DIMMs; this
package replaces that hardware with a discrete-event, request-level model
of the same multi-stage Clos network (cores -> SB/LFB/L1D/L2 -> CHA/LLC ->
mesh -> IMC or FlexBus/M2PCIe -> CXL device), each stage instrumented with
the PMU counters of the paper's Tables 1-4.
"""

from .address import AddressSpace, NodeKind, NumaNode, PAGE_SIZE, build_address_space
from .cache import Cache, MESIF
from .engine import Engine, SimulationBudgetExceeded, Waiter
from .cxl_switch import CXLSwitch, attach_switch
from .fabric import (
    FABRIC_PRESETS,
    Fabric,
    FabricSpec,
    HostSpec,
    SwitchSpec,
    apply_fabric,
    attach_fabric,
    preset_fabric,
)
from .hooks import EngineHooks, StagePort
from .machine import Machine
from .qos import DevLoadThrottler, QoSConfig
from .request import (
    CACHELINE,
    CXLOpcode,
    MemOp,
    MemRequest,
    PATH_FAMILIES,
    Path,
    ServeLocation,
)
from .topology import FLIT_MODES, FlitMode, MachineConfig, emr_config, spr_config

__all__ = [
    "AddressSpace",
    "CACHELINE",
    "CXLOpcode",
    "CXLSwitch",
    "Cache",
    "DevLoadThrottler",
    "Engine",
    "EngineHooks",
    "FABRIC_PRESETS",
    "FLIT_MODES",
    "Fabric",
    "FabricSpec",
    "FlitMode",
    "HostSpec",
    "MESIF",
    "Machine",
    "MachineConfig",
    "MemOp",
    "MemRequest",
    "NodeKind",
    "NumaNode",
    "PAGE_SIZE",
    "PATH_FAMILIES",
    "QoSConfig",
    "Path",
    "ServeLocation",
    "SimulationBudgetExceeded",
    "StagePort",
    "SwitchSpec",
    "Waiter",
    "apply_fabric",
    "attach_fabric",
    "attach_switch",
    "build_address_space",
    "emr_config",
    "preset_fabric",
    "spr_config",
]
