"""Graph-described multi-host switched CXL fabrics.

The paper's evaluation stops at directly-attached Type-3 devices, but its
introduction motivates multi-tier switched pools ("a disaggregated memory
pool can provide tens to hundreds of terabytes").  This module generalises
the one-tier :class:`~repro.sim.cxl_switch.CXLSwitch` into an arbitrary
fabric graph: hosts x switches x pooled Type-3 devices, described
declaratively by a :class:`FabricSpec` and compiled into a routed mesh of
output-serialised :class:`~repro.sim.cxl_switch.SwitchPort` stages.

Model
-----

* **Topology** is an undirected graph.  Every link must touch at least one
  switch (hosts and devices never connect directly); routes are shortest
  paths with a deterministic tie-break, computed once at compile time.
* **Forwarding** is store-and-forward per hop: a flit arriving at a switch
  is serialised onto the output port toward the next hop (bandwidth
  ``bytes_per_cycle``), then pays ``forward_latency`` to traverse.  With
  ``flit_mode="PBR"`` every hop adds the port-based-routing header bytes
  (section 2.1's PBR flits for switched fabrics).
* **Credit backpressure**: when an output port's input queue is full the
  flit parks in the switch's per-port pending list (upstream credits
  withheld) and a ``unc_cxlsw_retry.*`` counter ticks.  Pending flits
  drain strictly head-of-line, so delivery per (source, destination) pair
  is FIFO - the ordering the CXL.mem protocol guarantees per link.
* **Pooling**: several hosts share the downstream devices.  The *primary*
  host is the simulated :class:`~repro.sim.machine.Machine` (all of its
  CXL traffic transits the fabric); every other host is a background
  traffic injector whose flits contend on the shared switch ports and
  device-side queues - the cross-host interference no single-host profile
  can show.

Each switch publishes per-port ``unc_cxlsw_*`` occupancy / not-empty /
forward / retry counters under the scope ``cxlsw.<switch>``, so
PathFinder's Clos-stage model absorbs switches as middle stages and
:class:`~repro.core.analyzer.PFAnalyzer` can attribute stalls to
fabric-port contention vs device-side queues.

Use :func:`attach_fabric` to retrofit a built machine, or set
``MachineConfig(fabric=...)`` and let :class:`~repro.sim.machine.Machine`
wire it during assembly (the declarative spelling campaigns serialise).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..pmu.registry import CounterRegistry
from .cxl_device import CXLDevice
from .cxl_switch import SwitchPort
from .engine import Engine
from .request import MemRequest, Path

#: Extra bytes a PBR (port-based routing) flit carries per switch hop: the
#: 256B-mode header grows a destination-port id for multi-tier routing.
PBR_HOP_OVERHEAD_BYTES = 4.0

#: Mirrors :data:`repro.sim.topology.FLIT_MODES` (kept literal to avoid an
#: import cycle; the two are cross-checked by the fabric tests).
_FLIT_MODE_NAMES = ("68B", "256B", "PBR")


# -- declarative spec --------------------------------------------------------


@dataclass(frozen=True)
class SwitchSpec:
    """One fabric switch: per-output-port bandwidth, latency and depth."""

    name: str
    bytes_per_cycle: float = 32.0
    forward_latency: float = 60.0
    queue_depth: int = 128

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("switch needs a name")
        if self.bytes_per_cycle <= 0:
            raise ValueError(f"{self.name}: non-positive port bandwidth")
        if self.forward_latency < 0:
            raise ValueError(f"{self.name}: negative forward latency")
        if self.queue_depth <= 0:
            raise ValueError(f"{self.name}: non-positive queue depth")


@dataclass(frozen=True)
class HostSpec:
    """One fabric host.

    The primary host is the simulated machine; any other host with
    ``inject_ops > 0`` becomes a background injector that issues one read
    flit every ``inject_gap`` cycles round-robin over ``targets`` (default:
    every pooled device), modelling a neighbour server hammering the pool.
    """

    name: str
    inject_ops: int = 0
    inject_gap: float = 4.0
    inject_bytes: float = 68.0
    targets: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host needs a name")
        if self.inject_ops < 0:
            raise ValueError(f"{self.name}: negative inject_ops")
        if self.inject_gap <= 0:
            raise ValueError(f"{self.name}: non-positive inject_gap")
        if self.inject_bytes <= 0:
            raise ValueError(f"{self.name}: non-positive inject_bytes")
        object.__setattr__(self, "targets", tuple(self.targets))


@dataclass(frozen=True)
class FabricSpec:
    """Declarative fabric graph; compiles to a routed :class:`Fabric`.

    ``devices`` map positionally onto the machine's CXL endpoints (first
    name = first CXL NUMA node).  Plain strings are accepted for ``hosts``
    and ``switches`` and normalised to default specs.
    """

    hosts: Tuple[HostSpec, ...]
    switches: Tuple[SwitchSpec, ...]
    devices: Tuple[str, ...]
    links: Tuple[Tuple[str, str], ...]
    flit_mode: str = "68B"
    primary_host: str = ""

    def __post_init__(self) -> None:
        hosts = tuple(
            h if isinstance(h, HostSpec) else HostSpec(str(h))
            for h in self.hosts
        )
        switches = tuple(
            s if isinstance(s, SwitchSpec) else SwitchSpec(str(s))
            for s in self.switches
        )
        devices = tuple(str(d) for d in self.devices)
        links = tuple(tuple(str(end) for end in link) for link in self.links)
        object.__setattr__(self, "hosts", hosts)
        object.__setattr__(self, "switches", switches)
        object.__setattr__(self, "devices", devices)
        object.__setattr__(self, "links", links)
        if not hosts:
            raise ValueError("fabric needs at least one host")
        if not switches:
            raise ValueError("fabric needs at least one switch")
        if not devices:
            raise ValueError("fabric needs at least one device")
        if self.flit_mode not in _FLIT_MODE_NAMES:
            raise ValueError(
                f"unknown flit mode {self.flit_mode!r};"
                f" choose from {sorted(_FLIT_MODE_NAMES)}"
            )
        names: List[str] = (
            [h.name for h in hosts] + [s.name for s in switches] + list(devices)
        )
        if len(set(names)) != len(names):
            raise ValueError(f"fabric node names must be unique: {sorted(names)}")
        switch_names = {s.name for s in switches}
        known = set(names)
        for link in links:
            if len(link) != 2 or link[0] == link[1]:
                raise ValueError(f"malformed link {link!r}")
            unknown = set(link) - known
            if unknown:
                raise ValueError(f"link {link!r} references unknown node(s) "
                                 f"{sorted(unknown)}")
            if not switch_names & set(link):
                raise ValueError(
                    f"link {link!r} bypasses the fabric: every link must "
                    "touch a switch"
                )
        if self.primary_host and self.primary_host not in {
            h.name for h in hosts
        }:
            raise ValueError(
                f"primary host {self.primary_host!r} is not a fabric host"
            )
        for host in hosts:
            for target in host.targets:
                if target not in devices:
                    raise ValueError(
                        f"host {host.name}: inject target {target!r} is not "
                        "a fabric device"
                    )
        # Every (host, device) pair must be routable: pooling means every
        # host can reach every device through switches.
        adjacency = self._adjacency()
        for host in hosts:
            reachable = _bfs_reachable(adjacency, host.name, switch_names)
            missing = set(devices) - reachable
            if missing:
                raise ValueError(
                    f"host {host.name} cannot reach device(s) "
                    f"{sorted(missing)}; add links"
                )

    # -- graph helpers ----------------------------------------------------

    def _adjacency(self) -> Dict[str, List[str]]:
        adjacency: Dict[str, List[str]] = {}
        for a, b in self.links:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        for nbrs in adjacency.values():
            nbrs.sort()
        return adjacency

    @property
    def host_names(self) -> Tuple[str, ...]:
        return tuple(h.name for h in self.hosts)

    @property
    def switch_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.switches)

    def primary(self, machine_host_id: Optional[str] = None) -> str:
        """The host the simulated machine plays in this fabric."""
        if self.primary_host:
            return self.primary_host
        if machine_host_id and machine_host_id in self.host_names:
            return machine_host_id
        return self.hosts[0].name

    def hops(self, src: str, dst: str) -> int:
        """Number of switch traversals between two endpoints."""
        return len(_shortest_path(self._adjacency(), src, dst,
                                  set(self.switch_names))) - 2

    # -- serde ------------------------------------------------------------

    def to_document(self) -> Dict:
        return {
            "hosts": [dataclasses.asdict(h) for h in self.hosts],
            "switches": [dataclasses.asdict(s) for s in self.switches],
            "devices": list(self.devices),
            "links": [list(link) for link in self.links],
            "flit_mode": self.flit_mode,
            "primary_host": self.primary_host,
        }

    @classmethod
    def from_document(cls, document: Dict) -> "FabricSpec":
        hosts = tuple(
            HostSpec(**{**h, "targets": tuple(h.get("targets", ()))})
            if isinstance(h, dict) else HostSpec(str(h))
            for h in document["hosts"]
        )
        switches = tuple(
            SwitchSpec(**s) if isinstance(s, dict) else SwitchSpec(str(s))
            for s in document["switches"]
        )
        return cls(
            hosts=hosts,
            switches=switches,
            devices=tuple(document["devices"]),
            links=tuple(tuple(link) for link in document["links"]),
            flit_mode=document.get("flit_mode", "68B"),
            primary_host=document.get("primary_host", ""),
        )

    def compile(self, engine: Engine, pmu: CounterRegistry) -> "Fabric":
        return Fabric(engine, pmu, self)


def _bfs_reachable(adjacency: Dict[str, List[str]], start: str,
                   via: set) -> set:
    """Nodes reachable from ``start`` where interior hops are in ``via``."""
    seen = {start}
    frontier: Deque[str] = deque([start])
    while frontier:
        node = frontier.popleft()
        if node != start and node not in via:
            continue  # endpoints terminate a path; only switches forward
        for nbr in adjacency.get(node, ()):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return seen


def _shortest_path(adjacency: Dict[str, List[str]], src: str, dst: str,
                   via: set) -> Tuple[str, ...]:
    """Deterministic shortest ``src -> dst`` path through ``via`` nodes."""
    parent: Dict[str, str] = {src: src}
    frontier: Deque[str] = deque([src])
    while frontier:
        node = frontier.popleft()
        if node == dst:
            break
        if node != src and node not in via:
            continue
        for nbr in adjacency.get(node, ()):
            if nbr not in parent:
                parent[nbr] = node
                frontier.append(nbr)
    if dst not in parent:
        raise ValueError(f"no fabric route {src} -> {dst}")
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


# -- compiled fabric ---------------------------------------------------------


class FabricSwitch:
    """One compiled switch: output-serialised ports plus credit pending
    lists, publishing per-port PMU meters under ``cxlsw.<name>``."""

    def __init__(
        self,
        engine: Engine,
        pmu: CounterRegistry,
        spec: SwitchSpec,
        neighbors: List[str],
    ) -> None:
        self.engine = engine
        self.pmu = pmu
        self.spec = spec
        self.scope = f"cxlsw.{spec.name}"
        self.ports: Dict[str, SwitchPort] = {}
        self._pending: Dict[str, Deque] = {}
        self._parked: Dict[str, bool] = {}
        self.forwarded: Dict[str, int] = {}
        self.retries: Dict[str, int] = {}
        for nbr in neighbors:
            self.ports[nbr] = SwitchPort(
                engine,
                f"{self.scope}.{nbr}",
                spec.bytes_per_cycle,
                spec.forward_latency,
                spec.queue_depth,
            )
            self._pending[nbr] = deque()
            self._parked[nbr] = False
            self.forwarded[nbr] = 0
            self.retries[nbr] = 0
        pmu.on_sync(self._sync)

    def forward(
        self, nbr: str, flit_bytes: float, deliver: Callable[[], None]
    ) -> None:
        """Queue one flit onto the output port toward ``nbr``.

        Head-of-line pending order is preserved across credit stalls, so
        per-(src, dst) delivery stays FIFO.
        """
        self._pending[nbr].append((flit_bytes, deliver))
        self._drain(nbr)

    def _drain(self, nbr: str) -> None:
        pending = self._pending[nbr]
        port = self.ports[nbr]
        while pending:
            flit_bytes, deliver = pending[0]
            if port.send(flit_bytes, deliver):
                pending.popleft()
                self.forwarded[nbr] += 1  # exactly once per flit
            else:
                # Output queue full: credits withheld.  Count the throttled
                # submission and park until the port frees a slot.
                self.retries[nbr] += 1
                if not self._parked[nbr]:
                    self._parked[nbr] = True
                    port.queue.space_waiter.wait(lambda n=nbr: self._rearm(n))
                return

    def _rearm(self, nbr: str) -> None:
        self._parked[nbr] = False
        self._drain(nbr)

    @property
    def total_forwarded(self) -> int:
        return sum(self.forwarded.values())

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def _sync(self, now: float) -> None:
        for nbr, port in self.ports.items():
            port.queue.stats.sync(now)
            self.pmu.set(
                self.scope,
                f"unc_cxlsw_occupancy.{nbr}",
                port.queue.stats.occupancy_integral,
            )
            self.pmu.set(
                self.scope,
                f"unc_cxlsw_cycles_ne.{nbr}",
                port.queue.stats.cycles_not_empty,
            )
            self.pmu.set(
                self.scope, f"unc_cxlsw_fwd.{nbr}", float(self.forwarded[nbr])
            )
            self.pmu.set(
                self.scope, f"unc_cxlsw_retry.{nbr}", float(self.retries[nbr])
            )


class Fabric:
    """A compiled, routed fabric: switches + routes + background hosts."""

    def __init__(self, engine: Engine, pmu: CounterRegistry,
                 spec: FabricSpec) -> None:
        self.engine = engine
        self.pmu = pmu
        self.spec = spec
        adjacency = spec._adjacency()
        switch_names = set(spec.switch_names)
        self.switches: Dict[str, FabricSwitch] = {
            s.name: FabricSwitch(engine, pmu, s,
                                 adjacency.get(s.name, []))
            for s in spec.switches
        }
        self._routes: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for host in spec.host_names:
            for device in spec.devices:
                path = _shortest_path(adjacency, host, device, switch_names)
                self._routes[(host, device)] = path
                self._routes[(device, host)] = tuple(reversed(path))
        self._hop_overhead = (
            PBR_HOP_OVERHEAD_BYTES if spec.flit_mode == "PBR" else 0.0
        )
        self.delivered: Dict[Tuple[str, str], int] = {}
        self.injectors: List[_HostInjector] = []
        pmu.on_sync(self._sync)

    def route(self, src: str, dst: str) -> Tuple[str, ...]:
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ValueError(f"no fabric route {src} -> {dst}") from None

    def send(
        self, src: str, dst: str, flit_bytes: float,
        deliver: Callable[[], None],
    ) -> None:
        """Forward one flit ``src -> dst`` across every switch on the route;
        ``deliver`` fires when it exits the last switch port."""
        path = self.route(src, dst)
        self._arrive(path, 1, flit_bytes, deliver)

    def _arrive(
        self, path: Tuple[str, ...], index: int, flit_bytes: float,
        deliver: Callable[[], None],
    ) -> None:
        if index == len(path) - 1:
            key = (path[0], path[-1])
            self.delivered[key] = self.delivered.get(key, 0) + 1
            deliver()
            return
        self.switches[path[index]].forward(
            path[index + 1],
            flit_bytes + self._hop_overhead,
            lambda: self._arrive(path, index + 1, flit_bytes, deliver),
        )

    @property
    def total_forwarded(self) -> int:
        return sum(s.total_forwarded for s in self.switches.values())

    @property
    def total_retries(self) -> int:
        return sum(s.total_retries for s in self.switches.values())

    def _sync(self, now: float) -> None:
        for injector in self.injectors:
            self.pmu.set(
                "fabric", f"host_injected.{injector.host.name}",
                float(injector.sent),
            )
            self.pmu.set(
                "fabric", f"host_completed.{injector.host.name}",
                float(injector.completed),
            )


class _FabricEndpoint:
    """Device-side shim routing one root port's traffic across the fabric."""

    def __init__(
        self,
        fabric: Fabric,
        device: CXLDevice,
        host_key: str,
        device_key: str,
        port,
    ) -> None:
        self.fabric = fabric
        self.device = device
        self.host_key = host_key
        self.device_key = device_key
        self.port = port

    def receive(
        self, request: MemRequest, respond: Callable[[MemRequest], None]
    ) -> None:
        flit_down = (
            self.port.data_flit_bytes if request.is_store
            else self.port.header_flit_bytes
        )

        def back_through_fabric(req: MemRequest) -> None:
            flit_up = (
                self.port.header_flit_bytes if req.is_store
                else self.port.data_flit_bytes
            )
            self.fabric.send(
                self.device_key, self.host_key, flit_up,
                lambda: respond(req),
            )

        self.fabric.send(
            self.host_key,
            self.device_key,
            flit_down,
            lambda: self.device.receive(request, back_through_fabric),
        )


class _HostInjector:
    """Open-loop background traffic from a non-primary fabric host.

    Issues one read flit every ``inject_gap`` cycles, round-robin over the
    host's target devices; responses travel back up the fabric.  The
    injected requests land in the *shared* device queues, so pooling
    contention is visible in ``unc_cxlcm_*`` as well as ``unc_cxlsw_*``.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        host: HostSpec,
        devices: Dict[str, CXLDevice],
        bases: Dict[str, int],
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.host = host
        self.targets = tuple(host.targets) or tuple(sorted(devices))
        self.devices = devices
        self.bases = bases
        self.sent = 0
        self.completed = 0
        # Offset the first injection so it never races the profiled
        # workload's warm-up event at cycle zero.
        engine.after(1.0, self._tick)

    def _tick(self) -> None:
        if self.sent >= self.host.inject_ops:
            return
        name = self.targets[self.sent % len(self.targets)]
        device = self.devices[name]
        request = MemRequest(
            self.bases[name] + (self.sent * 64) % (1 << 22),
            Path.DRD,
            core_id=-1,
            issue_time=self.engine.now,
        )
        self.sent += 1
        self.fabric.send(
            self.host.name,
            name,
            self.host.inject_bytes,
            lambda d=device, r=request, n=name: d.receive(
                r, lambda req: self._respond(n, req)
            ),
        )
        self.engine.after(self.host.inject_gap, self._tick)

    def _respond(self, device_name: str, request: MemRequest) -> None:
        self.fabric.send(
            device_name, self.host.name, self.host.inject_bytes,
            self._complete,
        )

    def _complete(self) -> None:
        self.completed += 1


# -- machine integration -----------------------------------------------------


def attach_fabric(machine, spec: FabricSpec) -> Fabric:
    """Interpose a compiled fabric between a machine's root ports and its
    CXL devices, and boot the background injector hosts.

    Raises if a fabric or a one-tier switch is already attached (the shims
    must wrap the raw device exactly once).
    """
    if getattr(machine, "fabric", None) is not None:
        raise RuntimeError("machine already has a fabric attached")
    if getattr(machine, "cxl_switch", None) is not None:
        raise RuntimeError(
            "machine already routes CXL traffic through attach_switch(); "
            "a fabric cannot be layered on top"
        )
    node_ids = sorted(machine.m2pcie)
    if len(spec.devices) != len(node_ids):
        raise ValueError(
            f"fabric names {len(spec.devices)} device(s) but the machine "
            f"has {len(node_ids)} CXL endpoint(s)"
        )
    fabric = Fabric(machine.engine, machine.pmu, spec)
    primary = spec.primary(getattr(machine, "host_id", None))
    devices_by_name: Dict[str, CXLDevice] = {}
    bases: Dict[str, int] = {}
    cxl_nodes = {n.node_id: n for n in machine.address_space.cxl_nodes}
    for node_id, device_name in zip(node_ids, spec.devices):
        port = machine.m2pcie[node_id]
        port.device = _FabricEndpoint(
            fabric,
            machine.cxl_devices[node_id],
            host_key=primary,
            device_key=device_name,
            port=port,
        )
        devices_by_name[device_name] = machine.cxl_devices[node_id]
        bases[device_name] = cxl_nodes[node_id].base
    for host in spec.hosts:
        if host.name != primary and host.inject_ops > 0:
            fabric.injectors.append(
                _HostInjector(machine.engine, fabric, host,
                              devices_by_name, bases)
            )
    machine.fabric = fabric
    return fabric


def apply_fabric(config, fabric):
    """Fold a fabric request (preset name or :class:`FabricSpec`) into a
    :class:`~repro.sim.topology.MachineConfig`, growing the device count to
    match the fabric's pool.  ``None`` passes the config through."""
    if fabric is None:
        return config
    if isinstance(fabric, str):
        spec = preset_fabric(fabric, num_devices=config.num_cxl_devices)
    elif isinstance(fabric, FabricSpec):
        spec = fabric
    else:
        raise ValueError(
            f"fabric must be None, a preset name from {FABRIC_PRESETS} or a "
            f"FabricSpec, got {fabric!r}"
        )
    return dataclasses.replace(
        config, fabric=spec, num_cxl_devices=len(spec.devices)
    )


# -- presets -----------------------------------------------------------------

FABRIC_PRESETS: Tuple[str, ...] = ("pooled", "undersized", "two-tier")


def preset_fabric(
    name: str, num_devices: int = 1, inject_ops: int = 60_000
) -> FabricSpec:
    """Named 2-host topologies for CLI flags and campaign grids.

    * ``pooled`` - 2 hosts, 1 switch, pooled devices; the neighbour host
      injects moderate background load.  Healthy fabric: stalls stay on
      the device side.
    * ``undersized`` - same graph, but the switch ports are narrow and
      shallow and the neighbour hammers the pool: congestion builds at
      the switch ports (the fabric-congested diagnosis class).
    * ``two-tier`` - 2 hosts behind a leaf switch, devices behind a spine,
      PBR flits: exercises multi-hop forwarding and routing overhead.
    """
    devices = tuple(f"dev{i}" for i in range(num_devices))
    if name == "pooled":
        hosts = (
            HostSpec("host0"),
            HostSpec("host1", inject_ops=inject_ops, inject_gap=12.0),
        )
        switches = (SwitchSpec("sw0"),)
        links = tuple(
            [("host0", "sw0"), ("host1", "sw0")]
            + [("sw0", d) for d in devices]
        )
    elif name == "undersized":
        hosts = (
            HostSpec("host0"),
            HostSpec("host1", inject_ops=inject_ops, inject_gap=3.0),
        )
        switches = (
            SwitchSpec("sw0", bytes_per_cycle=2.0, queue_depth=16),
        )
        links = tuple(
            [("host0", "sw0"), ("host1", "sw0")]
            + [("sw0", d) for d in devices]
        )
    elif name == "two-tier":
        hosts = (
            HostSpec("host0"),
            HostSpec("host1", inject_ops=inject_ops, inject_gap=12.0),
        )
        switches = (SwitchSpec("sw0"), SwitchSpec("sw1"))
        links = tuple(
            [("host0", "sw0"), ("host1", "sw0"), ("sw0", "sw1")]
            + [("sw1", d) for d in devices]
        )
        return FabricSpec(hosts=hosts, switches=switches, devices=devices,
                          links=links, flit_mode="PBR")
    else:
        raise KeyError(
            f"unknown fabric preset {name!r}; choose from {FABRIC_PRESETS}"
        )
    return FabricSpec(hosts=hosts, switches=switches, devices=devices,
                      links=links)
