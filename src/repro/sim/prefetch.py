"""Hardware prefetchers.

Intel SPR/EMR cores carry L1D and L2 stride/stream prefetchers (and SPR
adds an LLC prefetcher, section 2.2 path #4).  We implement a classic
per-page stride detector: it watches demand accesses, learns a stride once
it repeats with enough confidence, then issues ``degree`` prefetch
requests ahead of the stream.  Prefetches are asynchronous - they do not
stall the core - but consume the same downstream resources as demand
requests, which is how the paper's HWPF-path congestion effects appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .request import CACHELINE, Path

_PAGE_SHIFT = 12  # stride tracking region (4 KiB, like Intel's DCU IP)


@dataclass(slots=True)
class StrideEntry:
    last_line: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-page stride detector emitting lookahead prefetch addresses."""

    def __init__(
        self,
        path: Path,
        degree: int = 2,
        distance: int = 4,
        table_entries: int = 64,
        min_confidence: int = 2,
    ) -> None:
        if degree < 0 or distance < 1:
            raise ValueError("degree must be >= 0 and distance >= 1")
        self.path = path
        self.degree = degree
        self.distance = distance
        self.table_entries = table_entries
        self.min_confidence = min_confidence
        # Insertion-ordered dict doubles as the LRU list: a touch re-inserts
        # the key at the back, the victim is the front (first key).
        self._table: Dict[int, StrideEntry] = {}
        self.issued = 0
        self.trained = 0

    def observe(self, address: int) -> List[int]:
        """Feed one demand access; returns prefetch addresses to issue."""
        line = address // CACHELINE
        page = address >> _PAGE_SHIFT
        table = self._table
        entry = table.get(page)
        if entry is None:
            self._insert(page, StrideEntry(last_line=line))
            return []
        del table[page]  # re-insert at the LRU back
        table[page] = entry
        stride = line - entry.last_line
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_line = line
        if entry.confidence < self.min_confidence or entry.stride == 0:
            return []
        self.trained += 1
        prefetches = []
        for k in range(1, self.degree + 1):
            target = line + entry.stride * (self.distance + k - 1)
            if target < 0:
                continue
            prefetches.append(target * CACHELINE)
        self.issued += len(prefetches)
        return prefetches

    def _insert(self, page: int, entry: StrideEntry) -> None:
        table = self._table
        if len(table) >= self.table_entries:
            del table[next(iter(table))]
        table[page] = entry


class CorePrefetchers:
    """The L1D and L2 prefetch engines attached to one core.

    The L2 prefetcher is trained by L2 accesses (i.e. L1 misses) and runs
    deeper/stronger; the L1D (DCU) prefetcher is shallow.  ``l2_rfo_ratio``
    makes a fraction of L2 prefetches RFO-flavoured, matching the
    ``ocr.l2_hw_pf_rfo`` path in Table 5.
    """

    def __init__(
        self,
        l1_degree: int = 1,
        l2_degree: int = 3,
        l2_rfo_ratio: float = 0.0,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.l1 = StridePrefetcher(Path.L1_HWPF, degree=l1_degree, distance=4)
        self.l2 = StridePrefetcher(Path.L2_HWPF_DRD, degree=l2_degree, distance=16)
        self.l2_rfo_ratio = l2_rfo_ratio
        self._l2_counter = 0

    def on_l1_access(self, address: int) -> List[Tuple[int, Path]]:
        if not self.enabled:
            return []
        return [(a, Path.L1_HWPF) for a in self.l1.observe(address)]

    def on_l2_access(self, address: int, was_store: bool) -> List[Tuple[int, Path]]:
        if not self.enabled:
            return []
        out: List[Tuple[int, Path]] = []
        for a in self.l2.observe(address):
            self._l2_counter += 1
            rfo_every = (
                int(1.0 / self.l2_rfo_ratio) if self.l2_rfo_ratio > 0 else 0
            )
            if was_store and rfo_every and self._l2_counter % rfo_every == 0:
                out.append((a, Path.L2_HWPF_RFO))
            else:
                out.append((a, Path.L2_HWPF_DRD))
        return out
