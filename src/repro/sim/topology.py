"""Machine configurations.

Section 5.1's two testbeds:

* **SPR** - dual-socket Sapphire Rapids, Xeon Gold 6438Y+ (32 cores @
  2.0 GHz, 48 KiB L1D, 2 MiB L2, 60 MiB LLC), SNC enabled, 256 GiB DDR5,
  one Agilex-based CXL Type-3 device with 16 GiB DDR4.
* **EMR** - dual-socket Emerald Rapids, Xeon Gold 6530 (32 cores,
  48 KiB L1D, 2 MiB L2, **160 MiB** LLC), 1536 GiB DDR5, Micron CZ120
  256 GiB CXL DIMMs.

The simulator defaults below keep those proportions (the larger EMR LLC is
what shrinks the stall deltas in Figures 14-16) while scaling core count
and capacities down so a simulation finishes in seconds.  All latencies
are CPU cycles at the configured frequency and are calibrated against the
paper's section 2.3 MLC measurements (local 103.2 ns / 131.1 GB/s, CXL
355.3 ns / 17.6 GB/s) by the ``benchmarks/test_bench_mlc.py`` harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from .dram import DRAMTiming
from .fabric import FabricSpec


@dataclass(frozen=True)
class FlitMode:
    """Wire format of one CXL.mem message class (section 2.1).

    ``data_flit``: bytes on the wire for a message carrying one 64-byte
    cacheline; ``header_flit``: bytes for a request/completion with no
    data.  The 256B mode amortises headers across slots; PBR adds routing
    overhead for switched fabrics.
    """

    name: str
    data_flit: float
    header_flit: float


FLIT_MODES: Dict[str, FlitMode] = {
    "68B": FlitMode("68B", data_flit=68.0, header_flit=16.0),
    "256B": FlitMode("256B", data_flit=66.0, header_flit=8.0),
    "PBR": FlitMode("PBR", data_flit=72.0, header_flit=20.0),
}


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to assemble a :class:`~repro.sim.machine.Machine`."""

    name: str = "spr"
    # This machine's identity on a multi-host fabric (numactl -H hostname
    # analogue); attach_switch/attach_fabric key upstream traffic by it.
    host_id: str = "host0"
    frequency_ghz: float = 2.0
    num_cores: int = 4
    # Private caches (per core).
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l2_size: int = 2 * (1 << 20)
    l2_ways: int = 16
    # SB/LFB sizes are scaled down with the working sets (see
    # repro.workloads.suites.SCALE); the full-size SPR SB has 56 entries.
    sb_entries: int = 14
    lfb_entries: int = 16
    max_outstanding_loads: int = 48
    l1_latency: float = 5.0
    l2_latency: float = 15.0
    # LLC / CHA.
    llc_size: int = 8 * (1 << 20)
    llc_ways: int = 12
    llc_slices: int = 8
    snc_clusters: int = 2
    llc_policy: str = "lru"
    llc_hit_latency: float = 46.0
    snoop_latency: float = 70.0
    tor_depth: int = 88
    # Prefetchers.
    l1_pf_degree: int = 1
    l2_pf_degree: int = 3
    prefetch_enabled: bool = True
    # Memory map (bytes).  Small capacities keep page maps light; the
    # *ratio* of local to CXL capacity is what tiering cases care about.
    local_mem_bytes: int = 4 * (1 << 30)
    cxl_mem_bytes: int = 4 * (1 << 30)
    remote_mem_bytes: int = 0
    # Memory pooling: number of CXL Type-3 endpoints, each with its own
    # FlexBus root port, device and NUMA node (cxl_mem_bytes each).
    num_cxl_devices: int = 1
    # CXL.mem flit mode (section 2.1): "68B" (64B payload + header),
    # "256B" (packs multiple slots, lower header overhead), or "PBR"
    # (port-based routing flits for switched fabrics, more header).
    flit_mode: str = "68B"
    # DRAM + CXL timings.
    local_dram: DRAMTiming = field(
        default_factory=lambda: DRAMTiming(
            access_latency=155.0, bytes_per_cycle=8.2, channels=8
        )
    )
    cxl_dram: DRAMTiming = field(
        default_factory=lambda: DRAMTiming(
            access_latency=240.0, bytes_per_cycle=10.0, channels=1
        )
    )
    imc_queue_depth: int = 64
    # FlexBus / CXL device.
    flexbus_bytes_per_cycle: float = 9.0
    flexbus_propagation: float = 140.0
    m2pcie_ingress_depth: int = 192
    cxl_pack_buf_depth: int = 32
    cxl_mc_queue_depth: int = 48
    cxl_controller_latency: float = 110.0
    # Mesh.
    mesh_hop_latency: float = 4.0
    # Optional switched multi-host fabric between the root ports and the
    # device pool (see repro.sim.fabric); None = direct attach.
    fabric: Optional[FabricSpec] = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.llc_slices % self.snc_clusters:
            raise ValueError("LLC slices must divide evenly into SNC clusters")
        if self.num_cxl_devices < 1:
            raise ValueError("need at least one CXL device")
        if self.flit_mode not in FLIT_MODES:
            raise ValueError(
                f"unknown flit mode {self.flit_mode!r};"
                f" choose from {sorted(FLIT_MODES)}"
            )
        if self.fabric is not None and len(self.fabric.devices) != self.num_cxl_devices:
            raise ValueError(
                f"fabric names {len(self.fabric.devices)} device(s) but "
                f"num_cxl_devices={self.num_cxl_devices}; use "
                "repro.sim.fabric.apply_fabric to keep them in sync"
            )

    @property
    def flit_bytes(self) -> "FlitMode":
        return FLIT_MODES[self.flit_mode]

    @property
    def cycles_per_ns(self) -> float:
        return self.frequency_ghz

    def ns(self, cycles: float) -> float:
        """Convert cycles to nanoseconds at this machine's frequency."""
        return cycles / self.frequency_ghz

    @property
    def cores_per_cluster(self) -> int:
        return max(1, self.num_cores // self.snc_clusters)


def spr_config(**overrides) -> MachineConfig:
    """Sapphire Rapids testbed (default machine for all benches)."""
    return replace(MachineConfig(), **overrides) if overrides else MachineConfig()


def emr_config(**overrides) -> MachineConfig:
    """Emerald Rapids testbed: 2.7x larger LLC, faster CXL DIMM (CZ120).

    The larger LLC absorbs more of the CXL latency (section 3.6: smaller
    stall increases, less hit/miss variation) and the ASIC-based CZ120 has
    lower device latency than the FPGA Agilex card.
    """
    base = MachineConfig(
        name="emr",
        llc_size=21 * (1 << 20),   # 160/60 ratio of the SPR default
        llc_slices=8,
        cxl_dram=DRAMTiming(access_latency=150.0, bytes_per_cycle=14.0, channels=1),
        cxl_controller_latency=40.0,
        flexbus_bytes_per_cycle=12.0,
    )
    return replace(base, **overrides) if overrides else base
