"""Discrete-event simulation engine.

The whole server is simulated as a network of queueing stages (the paper's
"multi-stage Clos network" view, section 4.1).  Time is measured in CPU
*cycles* as a float; the machine configuration maps cycles to wall-clock
time via its core frequency.

Components never busy-wait: they schedule callbacks at absolute times, and
anything that needs to block (a core stalled on a full buffer, a request
waiting for a queue slot) parks itself on a :class:`Waiter` that the
resource owner wakes.

Two schedulers are provided behind the same API:

* The default *batched* scheduler groups events into per-timestamp buckets
  and orders the distinct timestamps with a calendar queue (timing wheel):
  each distinct time lands in ``slots[int(time / width) & mask]``, the
  drain walks a cursor around the wheel, and times beyond the wheel's
  horizon overflow into a small ``heapq``.  Because ~75% of distinct
  timestamps carry exactly one event, a bucket starts life as the bare
  callback and is promoted to a list only when a second event lands on the
  same timestamp - the common case pays one dict probe and one slot append
  per event, with no list allocation and no heap traffic.  The wheel's
  slot width and span are sized from the inter-event deltas observed early
  in the run.  Execution order is exactly the (time, insertion-seq) order
  of the classic heap.
* The *legacy* heap scheduler (``Engine(batched=False)``) is the original
  one-entry-per-event ``heapq`` implementation, kept as the reference for
  ordering-equivalence tests and benchmark parity checks.

A default-constructed engine *auto-selects*: it starts batched, measures
the events-per-distinct-timestamp density over the first few thousand
events, and migrates the pending queue onto the legacy heap when the
density is too low for bucketing to pay for itself (the C-level heap wins
below ~3 events per timestamp).  ``set_batched`` pins either scheduler
and disables the auto-selection, which benchmarks use to A/B the two
implementations deterministically.

:meth:`Engine.fast_forward` supports the adaptive-fidelity warp
(``repro.sim.warp``): it advances the clock by a delta while shifting every
pending event with it, so in-flight work keeps its relative timing across
a skipped steady-state span.

See ``docs/ENGINE.md`` for the hot-path architecture notes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

#: Relative tolerance for scheduling "in the past": drift within this
#: fraction of ``now`` (floored at the same absolute amount near zero) is
#: treated as float round-off, not a logic error.
_PAST_TOLERANCE = 1e-9


class SimulationBudgetExceeded(RuntimeError):
    """An event budget ran out with events still pending.

    Raised by ``Engine.run(max_events=...)`` and by runs bounded by a
    persistent :meth:`Engine.set_event_budget`.  Carries the number of
    events executed within the bounded run and the simulated clock at the
    point the budget ran out, so callers (the campaign runner treats this
    as a retryable job failure) can report or re-dispatch with a larger
    budget.
    """

    def __init__(self, events_executed: int, now: float) -> None:
        super().__init__(
            f"simulation budget exceeded after {events_executed} events "
            f"at cycle {now:.0f}"
        )
        self.events_executed = events_executed
        self.now = now


class Engine:
    """Discrete-event scheduler keyed on CPU cycles.

    ``batched=True`` (the default) selects the calendar-queue bucket
    scheduler; ``batched=False`` selects the legacy event heap.  Both obey
    identical (time, insertion-order) execution semantics.
    """

    #: Default calendar-queue geometry: 512 slots of 4 cycles each gives a
    #: 2048-cycle horizon, which covers the fixed stage-hop delays of every
    #: built-in workload; :meth:`_size_wheel` re-fits both from observed
    #: inter-event deltas once enough samples accumulate.
    _DEFAULT_WIDTH = 4.0
    _DEFAULT_SLOTS = 512
    _SIZE_SAMPLES = 128
    #: Auto-selection: once this many events have executed, keep the
    #: batched scheduler only if the observed events-per-distinct-timestamp
    #: density clears _AUTO_DENSITY (below it, the C-level event heap wins;
    #: the crossover sits near 3 on this interpreter).
    _AUTO_WINDOW = 4096
    _AUTO_DENSITY = 3.0

    __slots__ = (
        "now",
        "_batched",
        "_buckets",
        "_heap",
        "_seq",
        "_events_executed",
        "_stopped",
        "_budget",
        # Calendar queue over distinct timestamps.
        "_slots",
        "_slot_mask",
        "_inv_width",
        "_cursor",
        "_overflow",
        "_wheel_times",
        "_delay_samples",
        "_auto",
        "_times_drained",
        "_warp_marks",
    )

    def __init__(self, batched: bool = True) -> None:
        self.now: float = 0.0
        self._batched = bool(batched)
        # Auto-selection is armed only for the default batched mode; an
        # explicit Engine(batched=False) or set_batched() call pins the
        # caller's choice.
        self._auto = self._batched
        self._times_drained = 0
        # Batched mode: bucket per distinct timestamp (a bare callback
        # until a second event shares the time, then a list); the calendar
        # wheel plus overflow heap orders the distinct timestamps.
        self._buckets: Dict[float, object] = {}
        self._init_wheel(self._DEFAULT_WIDTH, self._DEFAULT_SLOTS)
        self._delay_samples: Optional[List[float]] = []
        # Legacy mode: one heap entry per event.
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stopped = False
        # Absolute events_executed ceiling set by set_event_budget(); lets
        # budgets compose across resumed run() calls.
        self._budget: Optional[int] = None
        # (post-jump time, cumulative fast-forwarded cycles) per warp, so
        # elapsed() can exclude warped spans from wall-derived durations.
        self._warp_marks: List[Tuple[float, float]] = []

    # -- configuration ------------------------------------------------

    @property
    def batched(self) -> bool:
        return self._batched

    def set_batched(self, flag: bool) -> None:
        """Pin a scheduler implementation (only while no events pend).

        Pinning disables density-based auto-selection, so benchmarks can
        A/B the two schedulers deterministically.
        """
        if self.pending_events:
            raise RuntimeError("cannot switch scheduler with events pending")
        self._batched = bool(flag)
        self._auto = False

    # -- calendar queue (distinct timestamps) --------------------------

    def _init_wheel(self, width: float, slot_count: int) -> None:
        self._slots: List[List[float]] = [[] for _ in range(slot_count)]
        self._slot_mask = slot_count - 1
        # width is always a power of two, so multiplying by the inverse is
        # exact and int(t * inv) is a pure float multiply + truncate.
        self._inv_width = 1.0 / width
        self._cursor = int(self.now * self._inv_width)
        self._overflow: List[float] = []
        self._wheel_times = 0

    def _wheel_insert(self, time: float) -> None:
        """File a *distinct* timestamp into the wheel (or overflow)."""
        asn = int(time * self._inv_width)
        if asn - self._cursor > self._slot_mask:
            self._overflow_insert(time)
        else:
            self._slots[asn & self._slot_mask].append(time)
            self._wheel_times += 1

    def _overflow_insert(self, time: float) -> None:
        """File a beyond-horizon timestamp into the overflow heap."""
        heapq.heappush(self._overflow, time)
        if len(self._overflow) > (self._slot_mask + 1) * 4:
            # The wheel is far too fine for this workload; double the
            # slot width until the horizon covers the overflow bulk.
            self._rebuild_wheel(2.0 / self._inv_width,
                                self._slot_mask + 1)

    def _rebuild_wheel(self, width: float, slot_count: int) -> None:
        """Re-slot every pending distinct time under a new geometry.

        Rebuilds from the bucket dict (the source of truth), which drops
        any stale wheel entries but may re-file a timestamp currently
        being drained; the drain loops treat a popped time with no bucket
        as stale and skip it.
        """
        times = list(self._buckets.keys())
        self._init_wheel(width, slot_count)
        cursor = self._cursor
        mask = self._slot_mask
        inv = self._inv_width
        for time in times:
            asn = int(time * inv)
            if asn - cursor > mask:
                heapq.heappush(self._overflow, time)
            else:
                self._slots[asn & mask].append(time)
                self._wheel_times += 1

    def _size_wheel(self) -> None:
        """Fit slot width/count to the observed scheduling deltas."""
        samples = self._delay_samples or []
        self._delay_samples = None
        if not samples:
            return
        samples.sort()
        median = samples[len(samples) // 2]
        spread = samples[-1]
        width = 1.0
        while width > median and width > 0.125:
            width /= 2.0
        while width * 2.0 <= median and width < 64.0:
            width *= 2.0
        slot_count = self._DEFAULT_SLOTS
        # Aim the horizon at twice the largest common delta so steady
        # traffic never detours through the overflow heap.
        while slot_count * width < 2.0 * spread and slot_count < 4096:
            slot_count *= 2
        if (width != 1.0 / self._inv_width
                or slot_count != self._slot_mask + 1):
            self._rebuild_wheel(width, slot_count)

    def _pop_next_time(self, until: Optional[float]) -> Optional[float]:
        """Remove and return the earliest pending distinct timestamp.

        The cold-path twin of the inline walk in :meth:`_run_batched`,
        used by :meth:`step`: a direct scan over the wheel and overflow
        heap.  Returns ``None`` when nothing is pending or the earliest
        time lies beyond ``until`` (the entry is left queued).
        """
        best: Optional[float] = None
        for slot in self._slots:
            for time in slot:
                if best is None or time < best:
                    best = time
        overflow = self._overflow
        if overflow and (best is None or overflow[0] < best):
            if until is not None and overflow[0] > until:
                return None
            return heapq.heappop(overflow)
        if best is None:
            return None
        if until is not None and best > until:
            return None
        self._slots[int(best * self._inv_width) & self._slot_mask].remove(best)
        self._wheel_times -= 1
        self._cursor = int(best * self._inv_width)
        return best

    # -- scheduling ---------------------------------------------------

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``.

        Long chains of fractional :meth:`after` delays accumulate float
        error, so ``time`` can legitimately land a few ULPs below
        ``self.now``; such sub-epsilon drift is clamped to ``now`` rather
        than aborting the run.  A genuinely past time still raises.
        """
        now = self.now
        if time < now:
            drift = now - time
            if drift <= _PAST_TOLERANCE * max(1.0, abs(now)):
                time = now
            else:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
        if self._batched:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = callback
                asn = int(time * self._inv_width)
                if asn - self._cursor > self._slot_mask:
                    self._overflow_insert(time)
                else:
                    self._slots[asn & self._slot_mask].append(time)
                    self._wheel_times += 1
            elif type(bucket) is list:
                bucket.append(callback)
            else:
                buckets[time] = [bucket, callback]
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        This is the fixed-delay stage-hop fast path: the common case is
        one dict probe plus either a bare-callback store (first event at
        the timestamp, filed into the wheel slot) or a list append
        (subsequent events), with no heap traffic at all.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + delay
        if self._batched:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = callback
                asn = int(time * self._inv_width)
                if asn - self._cursor > self._slot_mask:
                    self._overflow_insert(time)
                else:
                    self._slots[asn & self._slot_mask].append(time)
                    self._wheel_times += 1
                samples = self._delay_samples
                if samples is not None and delay > 0.0:
                    samples.append(delay)
            elif type(bucket) is list:
                bucket.append(callback)
            else:
                buckets[time] = [bucket, callback]
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def post(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at the current cycle (``after(0.0, ...)``).

        This is the zero-delay fast path used by wake-ups and completion
        fan-out: in batched mode it is a dict probe plus an append, and
        the timestamp (the running clock) is by construction at the wheel
        cursor, never in overflow.
        """
        time = self.now
        if self._batched:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = callback
                asn = int(time * self._inv_width)
                if asn - self._cursor > self._slot_mask:
                    self._overflow_insert(time)
                else:
                    self._slots[asn & self._slot_mask].append(time)
                    self._wheel_times += 1
            elif type(bucket) is list:
                bucket.append(callback)
            else:
                buckets[time] = [bucket, callback]
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def schedule_batch(
        self, time: float, callbacks: Iterable[Callable[[], None]]
    ) -> None:
        """Schedule many callbacks at one absolute time in one operation.

        The bulk analogue of :meth:`at`: the past-check runs once and the
        callbacks land in the timestamp's bucket in iteration order.
        """
        now = self.now
        if time < now:
            drift = now - time
            if drift <= _PAST_TOLERANCE * max(1.0, abs(now)):
                time = now
            else:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
        if self._batched:
            buckets = self._buckets
            bucket = buckets.get(time)
            if bucket is None:
                bucket = []
                buckets[time] = bucket
                self._wheel_insert(time)
            elif type(bucket) is not list:
                bucket = [bucket]
                buckets[time] = bucket
            bucket.extend(callbacks)
        else:
            heap, seq = self._heap, self._seq
            for callback in callbacks:
                heapq.heappush(heap, (time, next(seq), callback))

    # -- budgets ------------------------------------------------------

    def set_event_budget(self, max_events: Optional[int]) -> None:
        """Cap total future event execution across :meth:`run` calls.

        Unlike ``run(max_events=N)`` (a per-call bound), the budget set
        here persists: ``set_event_budget(N)`` allows N more events in
        total no matter how many times ``run()`` is resumed.  ``None``
        clears the budget.
        """
        if max_events is None:
            self._budget = None
            return
        if max_events < 0:
            raise ValueError(f"negative event budget: {max_events}")
        self._budget = self._events_executed + max_events

    @property
    def event_budget_remaining(self) -> Optional[int]:
        if self._budget is None:
            return None
        return max(0, self._budget - self._events_executed)

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False when idle."""
        if self._batched:
            bucket = None
            while bucket is None:
                time = self._pop_next_time(None)
                if time is None:
                    return False
                # Skip wheel entries gone stale after a mid-run rebuild.
                bucket = self._buckets.get(time)
            if type(bucket) is list:
                callback = bucket.pop(0)
                if bucket:
                    # More events remain at this timestamp; re-file it.
                    self._wheel_insert(time)
                else:
                    del self._buckets[time]
            else:
                callback = bucket
                del self._buckets[time]
            self.now = time
            self._events_executed += 1
            callback()
            return True
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self._events_executed += 1
        callback()
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Drain pending events.

        ``until`` bounds simulated time (events past it stay queued and the
        clock is advanced exactly to ``until``); ``max_events`` bounds the
        number of events executed *by this call* and composes with any
        persistent :meth:`set_event_budget` ceiling.  Hitting either bound
        with events still pending raises :class:`SimulationBudgetExceeded`
        (a silent return here used to hide runaway simulations).  Returns
        the final clock value.
        """
        self._stopped = False
        start = self._events_executed
        ceiling = self._budget
        if max_events is not None:
            call_ceiling = start + max_events
            if ceiling is None or call_ceiling < ceiling:
                ceiling = call_ceiling
        if self._batched:
            if self._auto and start >= self._AUTO_WINDOW:
                self._auto = False
                if start < self._AUTO_DENSITY * max(1, self._times_drained):
                    # Too few events share a timestamp for bucketing to
                    # pay off; hand the pending queue to the event heap.
                    self._migrate_to_heap()
                    return self._run_heap(until, ceiling, start)
            samples = self._delay_samples
            if samples is not None and len(samples) >= self._SIZE_SAMPLES:
                # Sized here, between drains, so the hot loop below never
                # sees its cached wheel references invalidated mid-bucket.
                self._size_wheel()
            return self._run_batched(until, ceiling, start)
        return self._run_heap(until, ceiling, start)

    def _migrate_to_heap(self) -> None:
        """Move pending batched events onto the legacy heap, in order.

        Walking the bucketed timestamps in sorted order and handing out
        fresh sequence numbers reproduces the exact (time, insertion-seq)
        execution order the batched scheduler would have produced.
        """
        heap = self._heap
        seq = self._seq
        for time in sorted(self._buckets):
            bucket = self._buckets[time]
            if type(bucket) is list:
                for callback in bucket:
                    heap.append((time, next(seq), callback))
            else:
                heap.append((time, next(seq), bucket))
        heapq.heapify(heap)
        self._buckets = {}
        self._init_wheel(1.0 / self._inv_width, self._slot_mask + 1)
        self._delay_samples = None
        self._batched = False

    def _run_batched(
        self, until: Optional[float], ceiling: Optional[int], start: int
    ) -> float:
        buckets = self._buckets
        # Wheel state cached in locals for the drain; refreshed whenever a
        # mid-run rebuild (overflow growth during a callback) swaps the
        # underlying structures.
        slots = self._slots
        mask = self._slot_mask
        inv = self._inv_width
        overflow = self._overflow
        cursor = int(self.now * inv)
        heappop = heapq.heappop
        # The event counter lives in a local inside the drain (hot) loop;
        # the finally block keeps the engine-visible count exact even when
        # a callback raises.  drained counts distinct timestamps consumed,
        # feeding the density-based scheduler auto-selection.
        executed = self._events_executed
        drained = 0
        try:
            while buckets:
                if slots is not self._slots or inv != self._inv_width:
                    slots = self._slots
                    mask = self._slot_mask
                    inv = self._inv_width
                    overflow = self._overflow
                    cursor = int(self.now * inv)
                # -- find the earliest distinct timestamp ---------------
                # Migrate overflow entries inside the horizon: afterwards
                # every overflow time sorts after every wheel time.
                while overflow and int(overflow[0] * inv) - cursor <= mask:
                    time = heappop(overflow)
                    slots[int(time * inv) & mask].append(time)
                    self._wheel_times += 1
                if not self._wheel_times:
                    if not overflow:
                        break
                    cursor = int(overflow[0] * inv)
                    continue
                time = None
                scan = cursor
                end = cursor + mask + 1
                while scan < end:
                    slot = slots[scan & mask]
                    if slot:
                        candidate = slot[0] if len(slot) == 1 else min(slot)
                        if int(candidate * inv) <= scan:
                            time = candidate
                            break
                        # The slot's earliest entry belongs to a later
                        # revolution; keep walking.
                    scan += 1
                if time is None:
                    # A full revolution matched nothing (entries beyond
                    # one revolution after a stale-horizon insert): fall
                    # back to a direct scan for the global minimum.
                    for slot_ in slots:
                        for candidate in slot_:
                            if time is None or candidate < time:
                                time = candidate
                    if time is None or (overflow and overflow[0] < time):
                        if not overflow:
                            break
                        cursor = int(overflow[0] * inv)
                        continue
                    scan = int(time * inv)
                    slot = slots[scan & mask]
                if until is not None and time > until:
                    cursor = scan
                    self.now = until
                    return until
                if len(slot) == 1:
                    del slot[0]
                else:
                    slot.remove(time)
                self._wheel_times -= 1
                # Publish the cursor before running callbacks: their
                # inserts measure the wheel horizon against it, and a
                # stale cursor would spill every future time to overflow.
                self._cursor = cursor = scan
                # -- drain the timestamp's bucket -----------------------
                # The bucket is removed up front, so callbacks scheduling
                # at this same timestamp start a fresh bucket that the
                # wheel walk picks up next - preserving the legacy heap's
                # (time, insertion-seq) order exactly.
                bucket = buckets.pop(time, None)
                if bucket is None:
                    # Stale wheel entry left behind by a mid-run rebuild.
                    continue
                drained += 1
                if ceiling is not None and executed >= ceiling:
                    buckets[time] = bucket
                    self._wheel_insert(time)
                    raise SimulationBudgetExceeded(executed - start, self.now)
                self.now = time
                if type(bucket) is not list:
                    # Singleton fast path: ~75% of distinct timestamps
                    # carry exactly one event - no list, no index loop.
                    executed += 1
                    bucket()
                    if self._stopped:
                        return self.now
                    continue
                i = 0
                n = len(bucket)
                if ceiling is None:
                    while i < n:
                        callback = bucket[i]
                        i += 1
                        executed += 1
                        callback()
                        if self._stopped:
                            break
                else:
                    while i < n:
                        if executed >= ceiling:
                            rest = bucket[i:]
                            self._refile(time, rest)
                            raise SimulationBudgetExceeded(
                                executed - start, time
                            )
                        callback = bucket[i]
                        i += 1
                        executed += 1
                        callback()
                        if self._stopped:
                            break
                if self._stopped:
                    if i < n:
                        self._refile(time, bucket[i:])
                    return self.now
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self._events_executed = executed
            self._times_drained += drained
            self._cursor = cursor

    def _refile(self, time: float, rest: List[Callable[[], None]]) -> None:
        """Put un-run callbacks back at ``time``, ahead of later arrivals."""
        extra = self._buckets.get(time)
        if extra is None:
            self._wheel_insert(time)
        elif type(extra) is list:
            rest.extend(extra)
        else:
            rest.append(extra)
        self._buckets[time] = rest

    def _run_heap(
        self, until: Optional[float], ceiling: Optional[int], start: int
    ) -> float:
        heap = self._heap
        heappop = heapq.heappop
        while heap and not self._stopped:
            if until is not None and heap[0][0] > until:
                self.now = until
                return until
            if ceiling is not None and self._events_executed >= ceiling:
                raise SimulationBudgetExceeded(
                    self._events_executed - start, self.now
                )
            time, _, callback = heappop(heap)
            self.now = time
            self._events_executed += 1
            callback()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort :meth:`run` after the current event completes."""
        self._stopped = True

    def fast_forward(self, delta: float) -> None:
        """Advance the clock by ``delta`` cycles, carrying pending events.

        Every queued event is shifted by the same delta, so in-flight work
        keeps its relative timing across the jump; only the absolute clock
        moves.  This is the engine half of the adaptive-fidelity warp
        (``repro.sim.warp``): the warp controller extrapolates counters for
        the skipped span while this method teleports the event queue.
        Must not be called from inside a running event.
        """
        if delta < 0:
            raise ValueError(f"negative fast-forward delta: {delta}")
        if delta == 0.0:
            return
        self.now += delta
        previous = self._warp_marks[-1][1] if self._warp_marks else 0.0
        self._warp_marks.append((self.now, previous + delta))
        if self._batched:
            if self._buckets:
                self._buckets = {
                    time + delta: bucket
                    for time, bucket in self._buckets.items()
                }
                self._rebuild_wheel(1.0 / self._inv_width,
                                    self._slot_mask + 1)
            else:
                self._cursor = int(self.now * self._inv_width)
        elif self._heap:
            # A uniform shift preserves (time, seq) order; re-heapify only
            # to restore the invariant against float rounding edge cases.
            self._heap = [(time + delta, seq, callback)
                          for time, seq, callback in self._heap]
            heapq.heapify(self._heap)

    def elapsed(self, start: float, end: Optional[float] = None) -> float:
        """Simulated cycles in ``[start, end]`` excluding warped spans.

        Durations booked against PMU counters from a remembered start
        timestamp (stall intervals, request latencies) must not include
        fast-forwarded cycles - the warp's extrapolated epoch already
        accounts for them.  Without any warp this is exactly
        ``end - start``, and the hot path pays a single truthiness check.
        """
        if end is None:
            end = self.now
        raw = end - start
        marks = self._warp_marks
        if not marks or raw <= 0:
            return raw
        total = marks[-1][1]
        if end < marks[0][0]:
            return raw
        # Cumulative warped cycles at or before each endpoint; warps are
        # rare (a handful per run), so a linear scan from the tail wins
        # over bisect for typical intervals.
        before_start = before_end = 0.0
        for at, cumulative in reversed(marks):
            if at <= end and not before_end:
                before_end = cumulative
            if at <= start:
                before_start = cumulative
                break
        return raw - (before_end - before_start)

    @property
    def pending_events(self) -> int:
        if self._batched:
            return sum(
                len(bucket) if type(bucket) is list else 1
                for bucket in self._buckets.values()
            )
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        return self._events_executed


class Waiter:
    """A FIFO parking lot for blocked actors.

    Resources with finite capacity (store buffer, LFB, TOR, pending queues,
    packing buffers) keep one of these; a blocked producer enqueues a
    wake-up callback and the resource calls :meth:`wake_one` whenever a slot
    frees.  Wake-ups run as fresh events so a waker never re-enters the
    caller's stack.
    """

    __slots__ = ("_engine", "_waiting")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._waiting: Deque[Callable[[], None]] = deque()

    def __len__(self) -> int:
        return len(self._waiting)

    def wait(self, callback: Callable[[], None]) -> None:
        self._waiting.append(callback)

    def wake_one(self) -> None:
        if self._waiting:
            self._engine.post(self._waiting.popleft())

    def wake_all(self) -> None:
        waiting = self._waiting
        if not waiting:
            return
        engine = self._engine
        while waiting:
            engine.post(waiting.popleft())
