"""Discrete-event simulation engine.

The whole server is simulated as a network of queueing stages (the paper's
"multi-stage Clos network" view, section 4.1).  Time is measured in CPU
*cycles* as a float; the machine configuration maps cycles to wall-clock
time via its core frequency.

Components never busy-wait: they schedule callbacks at absolute times, and
anything that needs to block (a core stalled on a full buffer, a request
waiting for a queue slot) parks itself on a :class:`Waiter` that the
resource owner wakes.

Two schedulers are provided behind the same API:

* The default *batched* scheduler groups events into per-timestamp buckets
  (a degenerate timing wheel keyed on exact cycle values).  Because almost
  every event in the simulator is a fixed-delay stage hop, huge numbers of
  events share a handful of distinct timestamps per cycle window; batching
  turns most scheduling operations into one dict lookup plus a list append
  and defers ``heapq`` to the (rare) first event at a new timestamp.
  Draining a bucket appends late arrivals at the *same* timestamp to the
  live batch, so execution order is exactly the (time, insertion-seq)
  order of the classic heap.
* The *legacy* heap scheduler (``Engine(batched=False)``) is the original
  one-entry-per-event ``heapq`` implementation, kept as the reference for
  ordering-equivalence tests and benchmark parity checks.

See ``docs/ENGINE.md`` for the hot-path architecture notes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

#: Relative tolerance for scheduling "in the past": drift within this
#: fraction of ``now`` (floored at the same absolute amount near zero) is
#: treated as float round-off, not a logic error.
_PAST_TOLERANCE = 1e-9


class SimulationBudgetExceeded(RuntimeError):
    """An event budget ran out with events still pending.

    Raised by ``Engine.run(max_events=...)`` and by runs bounded by a
    persistent :meth:`Engine.set_event_budget`.  Carries the number of
    events executed within the bounded run and the simulated clock at the
    point the budget ran out, so callers (the campaign runner treats this
    as a retryable job failure) can report or re-dispatch with a larger
    budget.
    """

    def __init__(self, events_executed: int, now: float) -> None:
        super().__init__(
            f"simulation budget exceeded after {events_executed} events "
            f"at cycle {now:.0f}"
        )
        self.events_executed = events_executed
        self.now = now


class Engine:
    """Discrete-event scheduler keyed on CPU cycles.

    ``batched=True`` (the default) selects the per-timestamp bucket
    scheduler; ``batched=False`` selects the legacy event heap.  Both obey
    identical (time, insertion-order) execution semantics.
    """

    __slots__ = (
        "now",
        "_batched",
        "_buckets",
        "_times",
        "_heap",
        "_seq",
        "_events_executed",
        "_stopped",
        "_budget",
    )

    def __init__(self, batched: bool = True) -> None:
        self.now: float = 0.0
        self._batched = bool(batched)
        # Batched mode: bucket per distinct timestamp + heap of timestamps.
        self._buckets: Dict[float, List[Callable[[], None]]] = {}
        self._times: List[float] = []
        # Legacy mode: one heap entry per event.
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stopped = False
        # Absolute events_executed ceiling set by set_event_budget(); lets
        # budgets compose across resumed run() calls.
        self._budget: Optional[int] = None

    # -- configuration ------------------------------------------------

    @property
    def batched(self) -> bool:
        return self._batched

    def set_batched(self, flag: bool) -> None:
        """Switch scheduler implementation (only while no events pend)."""
        if self.pending_events:
            raise RuntimeError("cannot switch scheduler with events pending")
        self._batched = bool(flag)

    # -- scheduling ---------------------------------------------------

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``.

        Long chains of fractional :meth:`after` delays accumulate float
        error, so ``time`` can legitimately land a few ULPs below
        ``self.now``; such sub-epsilon drift is clamped to ``now`` rather
        than aborting the run.  A genuinely past time still raises.
        """
        now = self.now
        if time < now:
            drift = now - time
            if drift <= _PAST_TOLERANCE * max(1.0, abs(now)):
                time = now
            else:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
        if self._batched:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [callback]
                heapq.heappush(self._times, time)
            else:
                bucket.append(callback)
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + delay
        if self._batched:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [callback]
                heapq.heappush(self._times, time)
            else:
                bucket.append(callback)
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def post(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at the current cycle (``after(0.0, ...)``).

        This is the zero-delay fast path used by wake-ups and completion
        fan-out: in batched mode it is a single append to the live bucket.
        """
        time = self.now
        if self._batched:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [callback]
                heapq.heappush(self._times, time)
            else:
                bucket.append(callback)
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def schedule_batch(
        self, time: float, callbacks: Iterable[Callable[[], None]]
    ) -> None:
        """Schedule many callbacks at one absolute time in one operation.

        The bulk analogue of :meth:`at`: the past-check runs once and the
        callbacks land in the timestamp's bucket in iteration order.
        """
        now = self.now
        if time < now:
            drift = now - time
            if drift <= _PAST_TOLERANCE * max(1.0, abs(now)):
                time = now
            else:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {now}"
                )
        if self._batched:
            bucket = self._buckets.get(time)
            if bucket is None:
                bucket = []
                self._buckets[time] = bucket
                heapq.heappush(self._times, time)
            bucket.extend(callbacks)
        else:
            heap, seq = self._heap, self._seq
            for callback in callbacks:
                heapq.heappush(heap, (time, next(seq), callback))

    # -- budgets ------------------------------------------------------

    def set_event_budget(self, max_events: Optional[int]) -> None:
        """Cap total future event execution across :meth:`run` calls.

        Unlike ``run(max_events=N)`` (a per-call bound), the budget set
        here persists: ``set_event_budget(N)`` allows N more events in
        total no matter how many times ``run()`` is resumed.  ``None``
        clears the budget.
        """
        if max_events is None:
            self._budget = None
            return
        if max_events < 0:
            raise ValueError(f"negative event budget: {max_events}")
        self._budget = self._events_executed + max_events

    @property
    def event_budget_remaining(self) -> Optional[int]:
        if self._budget is None:
            return None
        return max(0, self._budget - self._events_executed)

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False when idle."""
        if self._batched:
            times = self._times
            if not times:
                return False
            time = times[0]
            bucket = self._buckets[time]
            callback = bucket.pop(0)
            if not bucket:
                heapq.heappop(times)
                del self._buckets[time]
            self.now = time
            self._events_executed += 1
            callback()
            return True
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self._events_executed += 1
        callback()
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Drain pending events.

        ``until`` bounds simulated time (events past it stay queued and the
        clock is advanced exactly to ``until``); ``max_events`` bounds the
        number of events executed *by this call* and composes with any
        persistent :meth:`set_event_budget` ceiling.  Hitting either bound
        with events still pending raises :class:`SimulationBudgetExceeded`
        (a silent return here used to hide runaway simulations).  Returns
        the final clock value.
        """
        self._stopped = False
        start = self._events_executed
        ceiling = self._budget
        if max_events is not None:
            call_ceiling = start + max_events
            if ceiling is None or call_ceiling < ceiling:
                ceiling = call_ceiling
        if self._batched:
            return self._run_batched(until, ceiling, start)
        return self._run_heap(until, ceiling, start)

    def _run_batched(
        self, until: Optional[float], ceiling: Optional[int], start: int
    ) -> float:
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        # The event counter lives in a local inside the drain (hot) loop;
        # the finally block keeps the engine-visible count exact even when
        # a callback raises.
        executed = self._events_executed
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self.now = until
                    return until
                if ceiling is not None and executed >= ceiling:
                    raise SimulationBudgetExceeded(executed - start, self.now)
                heappop(times)
                bucket = buckets[time]
                self.now = time
                # Drain by index: callbacks that schedule at this same
                # timestamp append to the live bucket and are picked up in
                # insertion order, matching the legacy heap's (time, seq)
                # key.  The IndexError probe is cheaper than a len() call
                # per event (the try costs nothing until the batch ends).
                i = 0
                if ceiling is None:
                    while True:
                        try:
                            callback = bucket[i]
                        except IndexError:
                            break
                        i += 1
                        executed += 1
                        callback()
                        if self._stopped:
                            break
                else:
                    while True:
                        if executed >= ceiling:
                            del bucket[:i]
                            heapq.heappush(times, time)
                            raise SimulationBudgetExceeded(
                                executed - start, time
                            )
                        try:
                            callback = bucket[i]
                        except IndexError:
                            break
                        i += 1
                        executed += 1
                        callback()
                        if self._stopped:
                            break
                if self._stopped:
                    if i < len(bucket):
                        del bucket[:i]
                        heapq.heappush(times, time)
                    else:
                        del buckets[time]
                    return self.now
                del buckets[time]
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self._events_executed = executed

    def _run_heap(
        self, until: Optional[float], ceiling: Optional[int], start: int
    ) -> float:
        heap = self._heap
        heappop = heapq.heappop
        while heap and not self._stopped:
            if until is not None and heap[0][0] > until:
                self.now = until
                return until
            if ceiling is not None and self._events_executed >= ceiling:
                raise SimulationBudgetExceeded(
                    self._events_executed - start, self.now
                )
            time, _, callback = heappop(heap)
            self.now = time
            self._events_executed += 1
            callback()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        if self._batched:
            return sum(len(bucket) for bucket in self._buckets.values())
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        return self._events_executed


class Waiter:
    """A FIFO parking lot for blocked actors.

    Resources with finite capacity (store buffer, LFB, TOR, pending queues,
    packing buffers) keep one of these; a blocked producer enqueues a
    wake-up callback and the resource calls :meth:`wake_one` whenever a slot
    frees.  Wake-ups run as fresh events so a waker never re-enters the
    caller's stack.
    """

    __slots__ = ("_engine", "_waiting")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._waiting: Deque[Callable[[], None]] = deque()

    def __len__(self) -> int:
        return len(self._waiting)

    def wait(self, callback: Callable[[], None]) -> None:
        self._waiting.append(callback)

    def wake_one(self) -> None:
        if self._waiting:
            self._engine.post(self._waiting.popleft())

    def wake_all(self) -> None:
        waiting = self._waiting
        if not waiting:
            return
        engine = self._engine
        while waiting:
            engine.post(waiting.popleft())
