"""Discrete-event simulation engine.

The whole server is simulated as a network of queueing stages (the paper's
"multi-stage Clos network" view, section 4.1).  Time is measured in CPU
*cycles* as a float; the machine configuration maps cycles to wall-clock
time via its core frequency.

The engine is a classic event-heap scheduler.  Components never busy-wait:
they schedule callbacks at absolute times, and anything that needs to block
(a core stalled on a full buffer, a request waiting for a queue slot) parks
itself on a :class:`Waiter` list that the resource owner wakes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


#: Relative tolerance for scheduling "in the past": drift within this
#: fraction of ``now`` (floored at the same absolute amount near zero) is
#: treated as float round-off, not a logic error.
_PAST_TOLERANCE = 1e-9


class SimulationBudgetExceeded(RuntimeError):
    """``Engine.run(max_events=...)`` hit its budget with events pending.

    Carries the number of events executed within the bounded run and the
    simulated clock at the point the budget ran out, so callers (the
    campaign runner treats this as a retryable job failure) can report or
    re-dispatch with a larger budget.
    """

    def __init__(self, events_executed: int, now: float) -> None:
        super().__init__(
            f"simulation budget exceeded after {events_executed} events "
            f"at cycle {now:.0f}"
        )
        self.events_executed = events_executed
        self.now = now


class Engine:
    """Event-heap discrete-event scheduler keyed on CPU cycles."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._stopped = False

    # -- scheduling ---------------------------------------------------

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``.

        Long chains of fractional :meth:`after` delays accumulate float
        error, so ``time`` can legitimately land a few ULPs below
        ``self.now``; such sub-epsilon drift is clamped to ``now`` rather
        than aborting the run.  A genuinely past time still raises.
        """
        if time < self.now:
            drift = self.now - time
            if drift <= _PAST_TOLERANCE * max(1.0, abs(self.now)):
                time = self.now
            else:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < {self.now}"
                )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.at(self.now + delay, callback)

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False when idle."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self._events_executed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        ``until`` bounds simulated time (events past it stay queued and the
        clock is advanced exactly to ``until``); ``max_events`` bounds the
        number of executed events and raises
        :class:`SimulationBudgetExceeded` when the bound is hit with events
        still pending (a silent return here used to hide runaway
        simulations).  Returns the final clock value.
        """
        executed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            if max_events is not None and executed >= max_events:
                raise SimulationBudgetExceeded(executed, self.now)
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        return self._events_executed


class Waiter:
    """A FIFO parking lot for blocked actors.

    Resources with finite capacity (store buffer, LFB, TOR, pending queues,
    packing buffers) keep one of these; a blocked producer enqueues a
    wake-up callback and the resource calls :meth:`wake_one` whenever a slot
    frees.  Wake-ups run as fresh events so a waker never re-enters the
    caller's stack.
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._waiting: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self._waiting)

    def wait(self, callback: Callable[[], None]) -> None:
        self._waiting.append(callback)

    def wake_one(self) -> None:
        if self._waiting:
            callback = self._waiting.pop(0)
            self._engine.after(0.0, callback)

    def wake_all(self) -> None:
        waiting, self._waiting = self._waiting, []
        for callback in waiting:
            self._engine.after(0.0, callback)
