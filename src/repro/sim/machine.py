"""Machine assembly: wires every architectural module into one server.

A :class:`Machine` is the complete simulated host - the graph ``G=(V,E)``
of section 4.2 - plus its PMU registry.  Workloads are pinned to cores
(the paper's "running environment" input, Figure 5-a); `run` drives the
event engine until all pinned workloads finish or a deadline passes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..pmu.registry import CounterRegistry
from .address import AddressSpace, NodeKind, NumaNode
from .cha import CHA
from .core import Core
from .cxl_device import CXLDevice
from .engine import Engine
from .flexbus import M2PCIe
from .hooks import EngineHooks, StagePort, iter_ports
from .imc import IMC
from .mesh import Mesh
from .prefetch import CorePrefetchers
from .request import MemOp
from .topology import MachineConfig, spr_config


def _build_nodes(config: MachineConfig) -> List[NumaNode]:
    nodes = [NumaNode(0, NodeKind.LOCAL_DDR, 0, config.local_mem_bytes, socket=0)]
    base = nodes[-1].end
    if config.remote_mem_bytes:
        nodes.append(
            NumaNode(1, NodeKind.REMOTE_DDR, base, config.remote_mem_bytes, socket=1)
        )
        base = nodes[-1].end
    # One CPU-less NUMA node per CXL Type-3 endpoint (memory pooling).
    for _device in range(config.num_cxl_devices):
        nodes.append(
            NumaNode(len(nodes), NodeKind.CXL, base, config.cxl_mem_bytes, socket=0)
        )
        base = nodes[-1].end
    return nodes


class Machine:
    """One simulated server: cores, uncore, memory, CXL endpoint, PMUs."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or spr_config()
        self.host_id = self.config.host_id
        self.engine = Engine()
        self.pmu = CounterRegistry()
        self.address_space = AddressSpace(_build_nodes(self.config))
        self.mesh = Mesh(self.engine, hop_latency=self.config.mesh_hop_latency)
        self.imc = IMC(
            self.engine,
            self.config.local_dram,
            self.pmu,
            queue_depth=self.config.imc_queue_depth,
        )
        self.cxl_devices: Dict[int, CXLDevice] = {}
        self.m2pcie: Dict[int, M2PCIe] = {}
        flit = self.config.flit_bytes
        for node in self.address_space.cxl_nodes:
            port = M2PCIe(
                self.engine,
                self.pmu,
                scope=f"m2pcie{node.node_id}",
                link_bytes_per_cycle=self.config.flexbus_bytes_per_cycle,
                link_propagation=self.config.flexbus_propagation,
                ingress_depth=self.config.m2pcie_ingress_depth,
                data_flit_bytes=flit.data_flit,
                header_flit_bytes=flit.header_flit,
            )
            device = CXLDevice(
                self.engine,
                self.pmu,
                self.config.cxl_dram,
                scope=f"cxl{node.node_id}",
                pack_buf_depth=self.config.cxl_pack_buf_depth,
                mc_queue_depth=self.config.cxl_mc_queue_depth,
                controller_latency=self.config.cxl_controller_latency,
            )
            port.device = device
            self.m2pcie[node.node_id] = port
            self.cxl_devices[node.node_id] = device
        self.cha = CHA(
            self.engine,
            self.pmu,
            self.address_space,
            self.mesh,
            self.imc,
            self.m2pcie,
            num_slices=self.config.llc_slices,
            num_clusters=self.config.snc_clusters,
            llc_size_bytes=self.config.llc_size,
            llc_ways=self.config.llc_ways,
            llc_policy=self.config.llc_policy,
            llc_hit_latency=self.config.llc_hit_latency,
            snoop_latency=self.config.snoop_latency,
            cores_per_cluster=self.config.cores_per_cluster,
        )
        self.cha.writeback_sink = self._llc_writeback
        self.cores: List[Core] = [
            Core(
                core_id,
                self.engine,
                self.pmu,
                self.cha,
                self.address_space,
                l1d_size=self.config.l1d_size,
                l1d_ways=self.config.l1d_ways,
                l2_size=self.config.l2_size,
                l2_ways=self.config.l2_ways,
                sb_entries=self.config.sb_entries,
                lfb_entries=self.config.lfb_entries,
                max_outstanding_loads=self.config.max_outstanding_loads,
                l1_latency=self.config.l1_latency,
                l2_latency=self.config.l2_latency,
                prefetchers=CorePrefetchers(
                    l1_degree=self.config.l1_pf_degree,
                    l2_degree=self.config.l2_pf_degree,
                    enabled=self.config.prefetch_enabled,
                ),
            )
            for core_id in range(self.config.num_cores)
        ]
        self._active = 0
        # CXL interconnect attachments (at most one of the two).
        self.cxl_switch = None
        self.fabric = None
        if self.config.fabric is not None:
            from .fabric import attach_fabric

            attach_fabric(self, self.config.fabric)

    # -- observability -------------------------------------------------------

    def hook_ports(self) -> Iterator["StagePort"]:
        """The machine's named recorder binding points (see sim.hooks)."""
        return iter_ports(self)

    def attach_recorder(self, recorder: "EngineHooks") -> None:
        """Wire an :class:`~repro.sim.hooks.EngineHooks` implementation
        (e.g. :class:`repro.obs.FlightRecorder`) into every stage.

        Components get their ``recorder`` attribute (hop/sampling sites),
        hardware FIFOs get the recorder as queue observer (fine-grained
        queue events) and register their ``QueueStats`` for the
        occupancy time series.  With no recorder attached (the default)
        all of these stay ``None`` and the hot path is untouched.
        """
        for port in self.hook_ports():
            port.bind(recorder)

    def detach_recorder(self) -> None:
        """Unhook whatever recorder is attached; hot path goes bare again."""
        for port in self.hook_ports():
            port.unbind()

    # -- memory management helpers -------------------------------------------

    def _llc_writeback(self, address: int) -> None:
        """Dirty LLC eviction: stream the line to its home memory."""
        self.cha.writeback(address, core_id=0)

    def alloc(self, node_id: int, num_bytes: int, vpn_base: int) -> None:
        """Back a virtual region on one NUMA node (numactl --membind)."""
        pages = max(1, (num_bytes + 4095) // 4096)
        self.address_space.alloc_pages(node_id, pages, vpn_base)

    @property
    def local_node(self) -> NumaNode:
        return self.address_space.local_nodes[0]

    @property
    def cxl_node(self) -> NumaNode:
        return self.address_space.cxl_nodes[0]

    # -- execution -----------------------------------------------------------

    def pin(
        self,
        core_id: int,
        workload: Iterator[MemOp],
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Pin a workload's op stream to a core (taskset -c)."""
        self._active += 1

        def finished() -> None:
            self._active -= 1
            if on_done is not None:
                on_done()

        self.cores[core_id].run(workload, on_done=finished)

    def migrate(
        self,
        old_core_id: int,
        new_core_id: int,
        on_migrated: Optional[Callable[[], None]] = None,
    ) -> None:
        """Move the running workload from one core to another.

        Preemption happens at the next op boundary; in-flight requests
        drain on the old core.  The completion callback (and therefore
        the machine's active count) travels with the workload.
        """
        if old_core_id == new_core_id:
            raise ValueError("migration target equals source")
        if self.cores[new_core_id].running:
            raise RuntimeError(f"core {new_core_id} is busy")

        def handover(remaining, on_done) -> None:
            self.cores[new_core_id].run(remaining, on_done=on_done)
            if on_migrated is not None:
                on_migrated()

        self.cores[old_core_id].request_preempt(handover)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drive the event engine; returns the final cycle count."""
        return self.engine.run(until=until, max_events=max_events)

    @property
    def all_idle(self) -> bool:
        return self._active == 0

    def snapshot_counters(self) -> Dict:
        return self.pmu.snapshot(self.engine.now)

    @property
    def now(self) -> float:
        return self.engine.now
