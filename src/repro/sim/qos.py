"""CXL 3.x QoS telemetry feedback loop (section 3.5's future work).

The CXL 3.0/3.1 specification defines QoS telemetry for memory: the
device classifies its own load (light / optimal / moderate overload /
severe overload, derived here from the ``unc_cxlcm`` packing-buffer and
MC occupancy counters) and reports a *DevLoad* indication in S2M
responses; the host throttles its injection rate in response.  The paper
notes that no shipping DIMM implements this yet and leaves it as future
work - this module builds it: a per-root-port controller that samples the
device's load class every window and adjusts the M2PCIe port arbitration
delay with the spec's multiplicative backoff / additive recovery shape.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .cxl_device import CXLDevice, QoSLoadClass
from .engine import Engine
from .flexbus import M2PCIe

logger = logging.getLogger(__name__)


@dataclass
class QoSConfig:
    window_cycles: float = 5_000.0
    base_arbitration: float = 4.0
    max_arbitration: float = 64.0
    backoff_moderate: float = 1.5   # multiplicative, per window
    backoff_severe: float = 2.5
    recovery_step: float = 2.0      # additive decrease toward base


class DevLoadThrottler:
    """Host-side injection throttle driven by device QoS telemetry.

    Attach to one endpoint of a machine::

        DevLoadThrottler.attach(machine, node_id)

    The controller runs one window per ``window_cycles`` while the machine
    has active workloads, then stops (so the event heap drains).
    """

    def __init__(
        self,
        engine: Engine,
        port: M2PCIe,
        device: CXLDevice,
        config: Optional[QoSConfig] = None,
        enabled: bool = True,
        keep_running=None,
    ) -> None:
        self.engine = engine
        self.port = port
        self.device = device
        self.config = config or QoSConfig()
        self.enabled = enabled
        self.history: List[Tuple[float, QoSLoadClass, float]] = []
        self._last_occupancy_integral = 0.0
        self._last_time = engine.now
        # Predicate deciding whether another control window should run;
        # without one the controller runs exactly one window per request.
        self._keep_running = keep_running
        if enabled:
            self.port.arbitration_cycles = self.config.base_arbitration
            self._schedule()

    @classmethod
    def attach(cls, machine, node_id: Optional[int] = None,
               config: Optional[QoSConfig] = None,
               enabled: bool = True) -> "DevLoadThrottler":
        """Wire a throttler onto one of a machine's CXL endpoints."""
        node = node_id if node_id is not None else machine.cxl_node.node_id
        return cls(
            machine.engine,
            machine.m2pcie[node],
            machine.cxl_devices[node],
            config=config,
            enabled=enabled,
            keep_running=lambda: not machine.all_idle,
        )

    def _schedule(self) -> None:
        self.engine.after(self.config.window_cycles, self._window)

    def _window(self) -> None:
        self.control()
        if self._keep_running is None or self._keep_running():
            self._schedule()

    # -- control law -------------------------------------------------------

    def window_load_class(self) -> QoSLoadClass:
        """Device load class over the *last window* (not cumulative)."""
        queue = self.device.mc_queue
        queue.stats.sync(self.engine.now)
        integral = queue.stats.occupancy_integral
        elapsed = self.engine.now - self._last_time
        window_occ = (
            (integral - self._last_occupancy_integral) / elapsed
            if elapsed > 0
            else 0.0
        )
        self._last_occupancy_integral = integral
        self._last_time = self.engine.now
        capacity = queue.capacity or 1
        ratio = window_occ / capacity
        if ratio < 0.25:
            return QoSLoadClass.LIGHT
        if ratio < 0.5:
            return QoSLoadClass.OPTIMAL
        if ratio < 0.8:
            return QoSLoadClass.MODERATE_OVERLOAD
        return QoSLoadClass.SEVERE_OVERLOAD

    def control(self) -> QoSLoadClass:
        load = self.window_load_class()
        if not self.enabled:
            return load
        arb = self.port.arbitration_cycles
        cfg = self.config
        if load is QoSLoadClass.SEVERE_OVERLOAD:
            arb = min(cfg.max_arbitration, arb * cfg.backoff_severe)
        elif load is QoSLoadClass.MODERATE_OVERLOAD:
            arb = min(cfg.max_arbitration, arb * cfg.backoff_moderate)
        else:
            arb = max(cfg.base_arbitration, arb - cfg.recovery_step)
        self.port.arbitration_cycles = arb
        self.history.append((self.engine.now, load, arb))
        logger.debug(
            "devload window at %0.0f: %s, arbitration=%0.1f",
            self.engine.now, load.value, arb,
        )
        return load

    @property
    def current_arbitration(self) -> float:
        return self.port.arbitration_cycles

    def throttled_windows(self) -> int:
        return sum(
            1
            for _t, load, _arb in self.history
            if load in (QoSLoadClass.MODERATE_OVERLOAD,
                        QoSLoadClass.SEVERE_OVERLOAD)
        )
