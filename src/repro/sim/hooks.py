"""Stable observability contract between the simulator and recorders.

The hot path never calls a recorder through an abstraction layer - every
stage keeps a ``recorder`` attribute (and every cache/FIFO an
``observer``) that is ``None`` by default, so untraced runs pay a single
``is not None`` test per site.  What *is* stable is the shape of the
object a traced run plugs in: :class:`EngineHooks` names every callback
a stage may invoke, and :class:`StagePort` names every binding point one
machine exposes, so ``Machine.attach_recorder`` is a data-driven walk
over ports instead of hand-wired assignments.

Anything implementing :class:`EngineHooks` (the reference implementation
is :class:`repro.obs.FlightRecorder`) can be attached; the batched
engine drains same-timestamp events in exactly the insertion order the
legacy heap used, so a recorder sees the identical hop/queue event
stream under either scheduler (see ``tests/test_engine_fastpath.py``).
"""

from __future__ import annotations

from typing import (
    Any,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

__all__ = ["EngineHooks", "StagePort"]


@runtime_checkable
class EngineHooks(Protocol):
    """Everything a stage may call on an attached recorder.

    Stages call these only when a recorder is attached; implementations
    must tolerate any request/item shape the stages use (pooled
    ``MemRequest`` objects are never handed to hooks - pooling is
    disabled while a recorder is attached precisely so traced requests
    stay alive for the recorder).
    """

    # -- request lifecycle ------------------------------------------------

    def maybe_trace(self, request: Any) -> Optional[Any]:
        """One request was created; 1-in-N get a trace attached."""

    def hop(self, request: Any, component: str, kind: str) -> None:
        """A traced request entered (``enq``) or left (``deq``) a stage."""

    def complete(self, request: Any) -> None:
        """A traced request finished its round trip."""

    # -- FIFO events ------------------------------------------------------

    def on_queue_push(self, queue: Any, item: Any) -> None:
        """An item entered a monitored hardware FIFO."""

    def on_queue_pop(self, queue: Any, item: Any) -> None:
        """An item left a monitored hardware FIFO."""

    def watch_queue(self, name: str, stats: Any) -> None:
        """Register a FIFO's ``QueueStats`` for the occupancy series."""

    # -- cache + epoch events ---------------------------------------------

    def on_cache_lookup(self, name: str, hit: bool) -> None:
        """A tag-array probe resolved (per cache, hit or miss)."""

    def epoch_mark(self, now: float) -> None:
        """The profiler closed one epoch at ``now``."""


class StagePort:
    """One named binding point between a machine stage and a recorder.

    A port bundles the stage's recorder hosts (objects with a
    ``recorder`` attribute), its caches (objects with an ``observer``
    attribute), its monitored FIFOs (observer + occupancy watch) and any
    stats-only watches.  ``bind``/``unbind`` apply the hooks in one
    deterministic order, so the recorder's watched-queue series is
    stable across attach paths.
    """

    __slots__ = ("name", "hosts", "caches", "queues", "watched")

    def __init__(
        self,
        name: str,
        hosts: Sequence[Any] = (),
        caches: Sequence[Any] = (),
        queues: Sequence[Any] = (),
        watched: Sequence[Tuple[str, Any]] = (),
    ) -> None:
        self.name = name
        self.hosts = tuple(hosts)
        self.caches = tuple(caches)
        self.queues = tuple(queues)
        self.watched = tuple(watched)

    def bind(self, hooks: EngineHooks) -> None:
        for host in self.hosts:
            host.recorder = hooks
        for cache in self.caches:
            cache.observer = hooks
        for queue in self.queues:
            queue.observer = hooks
            hooks.watch_queue(queue.name, queue.stats)
        for name, stats in self.watched:
            hooks.watch_queue(name, stats)

    def unbind(self) -> None:
        for host in self.hosts:
            host.recorder = None
        for cache in self.caches:
            cache.observer = None
        for queue in self.queues:
            queue.observer = None

    def __repr__(self) -> str:
        return f"StagePort({self.name!r})"


def iter_ports(machine: Any) -> Iterator[StagePort]:
    """The named binding points of one :class:`~repro.sim.Machine`.

    Port order is part of the contract: it fixes the order of
    ``watch_queue`` registrations (and therefore the occupancy series in
    trace reports).
    """
    for core in machine.cores:
        cid = core.core_id
        yield StagePort(
            f"core{cid}",
            hosts=(core,),
            caches=(core.l1d, core.l2),
            watched=(
                (f"core{cid}.lfb", core.lfb.stats),
                (f"core{cid}.sb", core.sb.stats),
            ),
        )
    yield StagePort(
        "cha",
        hosts=(machine.cha,),
        caches=tuple(s.llc for s in machine.cha.slices),
        watched=(("mesh", machine.mesh._queue.stats),),
    )
    for channel in machine.imc.channels:
        yield StagePort(
            channel.scope, hosts=(channel,), queues=(channel.rpq, channel.wpq)
        )
    for port in machine.m2pcie.values():
        yield StagePort(
            port.scope,
            hosts=(port,),
            queues=(port.ingress, port.down_link.queue, port.up_link.queue),
        )
    for device in machine.cxl_devices.values():
        yield StagePort(
            device.scope,
            hosts=(device,),
            queues=(device.rx_req, device.rx_data, device.mc_queue),
        )
