"""Integrated Memory Controller (IMC).

The IMC fronts the socket-local DDR DIMMs.  Each channel exposes a Read
Pending Queue (RPQ) and Write Pending Queue (WPQ) plus CAS command
counters - exactly the meters of the uncore PMU's IMC box (Table 3).  The
paper's key observation (Figure 4-a) is that CXL traffic *bypasses* the
IMC queues because the CXL DIMM encloses its own device-side queues; in
this simulator that falls out naturally because only LOCAL_DDR-routed
requests are ever submitted here.
"""

from __future__ import annotations

from typing import Callable, List

from ..pmu.registry import CounterRegistry
from .dram import DRAMTiming
from .engine import Engine
from .queues import MonitoredQueue, Server
from .request import MemRequest


_CAS_RD_KEYS = ("unc_m_cas_count.rd", "unc_m_cas_count.all")
_CAS_WR_KEYS = ("unc_m_cas_count.wr", "unc_m_cas_count.all")


class _Channel:
    """One pseudo-channel: RPQ + WPQ in front of the DRAM media."""

    __slots__ = (
        "engine",
        "timing",
        "scope",
        "pmu",
        "rpq",
        "wpq",
        "recorder",
        "_trailing",
        "_rd_server",
        "_wr_server",
    )

    def __init__(
        self,
        engine: Engine,
        timing: DRAMTiming,
        scope: str,
        pmu: CounterRegistry,
        queue_depth: int = 64,
    ) -> None:
        self.engine = engine
        self.timing = timing
        self.scope = scope
        self.pmu = pmu
        self.rpq = MonitoredQueue(engine, queue_depth, name=f"{scope}.rpq")
        self.wpq = MonitoredQueue(engine, queue_depth, name=f"{scope}.wpq")
        # Flight recorder; None unless the profiling spec asked for tracing.
        self.recorder = None
        self._trailing = timing.trailing_latency
        service_cycles = timing.service_cycles
        self._rd_server = Server(
            engine,
            self.rpq,
            service_time=lambda _: service_cycles,
            on_done=self._read_done,
            name=f"{scope}.rd",
        )
        self._wr_server = Server(
            engine,
            self.wpq,
            service_time=lambda _: service_cycles,
            on_done=self._write_done,
            name=f"{scope}.wr",
        )
        pmu.on_sync(self._sync)

    def submit_read(
        self, request: MemRequest, on_done: Callable[[MemRequest], None]
    ) -> bool:
        ok = self._rd_server.submit((request, on_done))
        if ok:
            self.pmu.add(self.scope, "unc_m_rpq_inserts")
            if self.recorder is not None:
                self.recorder.hop(request, "IMC", "enq")
        return ok

    def submit_write(
        self, request: MemRequest, on_done: Callable[[MemRequest], None]
    ) -> bool:
        ok = self._wr_server.submit((request, on_done))
        if ok:
            self.pmu.add(self.scope, "unc_m_wpq_inserts")
            if self.recorder is not None:
                self.recorder.hop(request, "IMC", "enq")
        return ok

    def _read_done(self, item) -> None:
        request, on_done = item
        self.pmu.add_many(self.scope, _CAS_RD_KEYS)
        if self.recorder is not None:
            self.recorder.hop(request, "IMC", "deq")
        # Media latency beyond the bandwidth-limited channel occupancy.
        self.engine.after(self._trailing, lambda: on_done(request))

    def _write_done(self, item) -> None:
        request, on_done = item
        self.pmu.add_many(self.scope, _CAS_WR_KEYS)
        if self.recorder is not None:
            self.recorder.hop(request, "IMC", "deq")
        self.engine.after(self._trailing, lambda: on_done(request))

    def _sync(self, now: float) -> None:
        self.rpq.stats.sync(now)
        self.wpq.stats.sync(now)
        self.pmu.set(self.scope, "unc_m_rpq_cycles_ne", self.rpq.stats.cycles_not_empty)
        self.pmu.set(self.scope, "unc_m_rpq_occupancy", self.rpq.stats.occupancy_integral)
        self.pmu.set(self.scope, "unc_m_wpq_cycles_ne", self.wpq.stats.cycles_not_empty)
        self.pmu.set(self.scope, "unc_m_wpq_occupancy", self.wpq.stats.occupancy_integral)

    @property
    def pending(self) -> int:
        return len(self.rpq) + len(self.wpq)


class IMC:
    """Socket-local memory controller with channel interleaving."""

    __slots__ = ("engine", "imc_id", "timing", "channels")

    def __init__(
        self,
        engine: Engine,
        timing: DRAMTiming,
        pmu: CounterRegistry,
        imc_id: int = 0,
        queue_depth: int = 64,
    ) -> None:
        self.engine = engine
        self.imc_id = imc_id
        self.timing = timing
        self.channels: List[_Channel] = [
            _Channel(engine, timing, f"imc{imc_id}.ch{c}", pmu, queue_depth)
            for c in range(timing.channels)
        ]

    def _route(self, request: MemRequest) -> _Channel:
        """Cacheline interleaving across channels (standard XOR-free map)."""
        return self.channels[request.line % len(self.channels)]

    def submit(
        self, request: MemRequest, on_done: Callable[[MemRequest], None]
    ) -> bool:
        """Queue one request; False when the target channel queue is full."""
        channel = self._route(request)
        if request.is_store:
            return channel.submit_write(request, on_done)
        return channel.submit_read(request, on_done)

    def wait_for_slot(self, request: MemRequest, retry: Callable[[], None]) -> None:
        """Park a retry callback on the full channel queue."""
        channel = self._route(request)
        queue = channel.wpq if request.is_store else channel.rpq
        queue.space_waiter.wait(retry)

    @property
    def pending(self) -> int:
        return sum(c.pending for c in self.channels)
