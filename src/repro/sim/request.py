"""Memory request model.

Section 2.2 of the paper identifies four architectural request classes that
yield CXL.mem transactions: demand data read (DRd), demand write (DWr),
read-for-ownership (RFO) and hardware/software prefetch.  Section 2.1 maps
them onto the four CXL.mem flit transactions (M2S Req/RwD, S2M DRS/NDR).

A :class:`MemRequest` is created by a core (or prefetcher) and threaded
through every architectural module; each module stamps the request with the
outcome it observed so PathFinder-side code never needs simulator internals
beyond PMU counters, while tests can assert against the ground-truth trace.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, List, Optional, Tuple

CACHELINE = 64  # bytes


class Path(enum.Enum):
    """Architectural data paths (paper Figure 1 and Table 5)."""

    DRD = "DRd"            # demand data read
    RFO = "RFO"            # read for ownership (demand store miss)
    DWR = "DWr"            # demand write / writeback stream
    L1_HWPF = "L1_HWPF"    # L1D hardware prefetch
    L2_HWPF_DRD = "L2_HWPF_DRd"
    L2_HWPF_RFO = "L2_HWPF_RFO"
    SWPF = "SWPF"          # software prefetch (merges into DRd after L1D)

    @property
    def is_prefetch(self) -> bool:
        return self in _PREFETCH_PATHS

    @property
    def is_demand(self) -> bool:
        return self in (Path.DRD, Path.RFO, Path.DWR)

    @property
    def family(self) -> str:
        """Coarse grouping used in the paper's figures: DRd/RFO/HWPF/DWr."""
        if self in (Path.L1_HWPF, Path.L2_HWPF_DRD, Path.L2_HWPF_RFO, Path.SWPF):
            return "HWPF"
        return self.value


_PREFETCH_PATHS = frozenset(
    {Path.L1_HWPF, Path.L2_HWPF_DRD, Path.L2_HWPF_RFO, Path.SWPF}
)

PATH_FAMILIES = ("DRd", "RFO", "HWPF", "DWr")


class CXLOpcode(enum.Enum):
    """CXL.mem transaction opcodes (section 2.1)."""

    M2S_REQ = "Req"    # master-to-subordinate read request, no data
    M2S_RWD = "RwD"    # master-to-subordinate write request with data
    S2M_DRS = "DRS"    # data response (read return)
    S2M_NDR = "NDR"    # no-data response (write completion)


class ServeLocation(enum.Enum):
    """Where a request was ultimately served (CHA Table 2 scenarios)."""

    L1D = "L1D"
    LFB = "LFB"
    L2 = "L2"
    LOCAL_LLC = "local_LLC"       # the core's own SNC cluster LLC slice
    SNC_LLC = "snc_LLC"           # distant cluster slice on same socket
    REMOTE_LLC = "remote_LLC"     # another socket's cache (snoop hit)
    LOCAL_DRAM = "local_DRAM"
    REMOTE_DRAM = "remote_DRAM"   # cross-socket DDR
    CXL_DRAM = "CXL_DRAM"

    @property
    def is_memory(self) -> bool:
        return self in (
            ServeLocation.LOCAL_DRAM,
            ServeLocation.REMOTE_DRAM,
            ServeLocation.CXL_DRAM,
        )


_req_ids = itertools.count()

#: Recycled MemRequest instances (bounded so pathological bursts don't pin
#: memory).  Pooling is hot-path-only: request classes with post-completion
#: observers (demand loads) are never released, and traced sessions bypass
#: the pool entirely.
_request_pool: List["MemRequest"] = []
_REQUEST_POOL_LIMIT = 4096


class MemRequest:
    """One cacheline-granular memory request walking the Clos network.

    Flat ``__slots__`` layout: requests are the simulator's most-allocated
    objects, so they carry no dict and can be recycled through
    :meth:`acquire`/:meth:`release` by call sites that can prove the
    request's lifetime ended (prefetches, RFOs, write-backs).
    """

    __slots__ = (
        "address",
        "path",
        "core_id",
        "issue_time",
        "is_store",
        "mflow_id",
        "req_id",
        "serve_location",
        "completion_time",
        "missed_l1",
        "missed_l2",
        "missed_llc",
        "dest_node",
        "cxl_opcode",
        "hops",
        "on_llc_miss",
        "trace",
        "_completion_waiters",
    )

    def __init__(
        self,
        address: int,
        path: Path,
        core_id: int,
        issue_time: float,
        is_store: bool = False,
        mflow_id: Optional[int] = None,
        req_id: Optional[int] = None,
    ) -> None:
        self.address = line_address(address)
        self.path = path
        self.core_id = core_id
        self.issue_time = issue_time
        self.is_store = is_store
        self.mflow_id = mflow_id
        self.req_id = next(_req_ids) if req_id is None else req_id
        # Outcome stamps, filled in as the request traverses the hierarchy.
        self.serve_location: Optional[ServeLocation] = None
        self.completion_time: Optional[float] = None
        self.missed_l1 = False
        self.missed_l2 = False
        self.missed_llc = False
        self.dest_node: Optional[int] = None  # NUMA node owning the address
        self.cxl_opcode: Optional[CXLOpcode] = None
        self.hops: List[Tuple[str, float]] = []
        # Optional hook the issuing core installs; the CHA fires it the
        # moment the LLC lookup resolves as a miss (feeds the
        # L3-miss-outstanding meter).
        self.on_llc_miss: Optional[Callable[[], None]] = None
        # Flight-recorder slot: the FlightRecorder attaches a RequestTrace
        # to sampled requests; every hop site checks it via the recorder.
        self.trace: Optional[object] = None
        # Completion watchers (dependent loads, window stalls) park here.
        self._completion_waiters: Optional[List[Callable[[], None]]] = None

    def __repr__(self) -> str:
        return (
            f"MemRequest(req_id={self.req_id}, address={self.address:#x}, "
            f"path={self.path!r}, core_id={self.core_id}, "
            f"serve_location={self.serve_location!r})"
        )

    # -- pooling --------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        address: int,
        path: Path,
        core_id: int,
        issue_time: float,
        is_store: bool = False,
    ) -> "MemRequest":
        """Pooled constructor: reuse a released request when available."""
        pool = _request_pool
        if not pool:
            return cls(address, path, core_id, issue_time, is_store=is_store)
        self = pool.pop()
        self.address = line_address(address)
        self.path = path
        self.core_id = core_id
        self.issue_time = issue_time
        self.is_store = is_store
        self.mflow_id = None
        self.req_id = next(_req_ids)
        self.serve_location = None
        self.completion_time = None
        self.missed_l1 = False
        self.missed_l2 = False
        self.missed_llc = False
        self.dest_node = None
        self.cxl_opcode = None
        self.hops.clear()
        self.on_llc_miss = None
        self.trace = None
        self._completion_waiters = None
        return self

    def release(self) -> None:
        """Return this request to the pool.

        Only call when no component can still observe the request: its
        response callback ran, it is in no queue, and no trace references
        it.  The issuing sites for prefetches, RFOs and write-backs
        satisfy this; demand loads do not (dependent-load watchers read
        them after completion) and are left to the garbage collector.
        """
        if len(_request_pool) < _REQUEST_POOL_LIMIT:
            _request_pool.append(self)

    # -- trace helpers --------------------------------------------------

    def stamp(self, component: str, time: float) -> None:
        self.hops.append((component, time))

    def complete(self, location: ServeLocation, time: float) -> None:
        self.serve_location = location
        self.completion_time = time

    @property
    def latency(self) -> float:
        if self.completion_time is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completion_time - self.issue_time

    @property
    def line(self) -> int:
        return self.address // CACHELINE

    @property
    def is_cxl(self) -> bool:
        return self.serve_location is ServeLocation.CXL_DRAM or (
            self.cxl_opcode is not None
        )


class MemOp:
    """One workload-level memory operation fed to a core.

    ``gap`` is the number of compute cycles preceding the access (the
    non-memory instruction stream); ``dependent`` marks a load that needs
    the previous load's data before it can issue (pointer chasing);
    ``software_prefetch`` turns the access into a non-blocking SW PF.
    """

    __slots__ = ("address", "is_store", "gap", "dependent", "software_prefetch")

    def __init__(
        self,
        address: int,
        is_store: bool = False,
        gap: float = 0.0,
        dependent: bool = False,
        software_prefetch: bool = False,
    ) -> None:
        if gap < 0:
            raise ValueError("negative compute gap")
        if software_prefetch and is_store:
            raise ValueError("software prefetch cannot be a store")
        self.address = address
        self.is_store = is_store
        self.gap = gap
        self.dependent = dependent
        self.software_prefetch = software_prefetch

    def __repr__(self) -> str:
        return (
            f"MemOp(address={self.address:#x}, is_store={self.is_store}, "
            f"gap={self.gap}, dependent={self.dependent}, "
            f"software_prefetch={self.software_prefetch})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemOp):
            return NotImplemented
        return (
            self.address == other.address
            and self.is_store == other.is_store
            and self.gap == other.gap
            and self.dependent == other.dependent
            and self.software_prefetch == other.software_prefetch
        )


def line_address(address: int) -> int:
    """Align ``address`` down to its cacheline base."""
    if address < 0:
        raise ValueError(f"negative address: {address:#x}")
    return address & ~(CACHELINE - 1)
