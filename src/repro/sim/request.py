"""Memory request model.

Section 2.2 of the paper identifies four architectural request classes that
yield CXL.mem transactions: demand data read (DRd), demand write (DWr),
read-for-ownership (RFO) and hardware/software prefetch.  Section 2.1 maps
them onto the four CXL.mem flit transactions (M2S Req/RwD, S2M DRS/NDR).

A :class:`MemRequest` is created by a core (or prefetcher) and threaded
through every architectural module; each module stamps the request with the
outcome it observed so PathFinder-side code never needs simulator internals
beyond PMU counters, while tests can assert against the ground-truth trace.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

CACHELINE = 64  # bytes


class Path(enum.Enum):
    """Architectural data paths (paper Figure 1 and Table 5)."""

    DRD = "DRd"            # demand data read
    RFO = "RFO"            # read for ownership (demand store miss)
    DWR = "DWr"            # demand write / writeback stream
    L1_HWPF = "L1_HWPF"    # L1D hardware prefetch
    L2_HWPF_DRD = "L2_HWPF_DRd"
    L2_HWPF_RFO = "L2_HWPF_RFO"
    SWPF = "SWPF"          # software prefetch (merges into DRd after L1D)

    @property
    def is_prefetch(self) -> bool:
        return self in _PREFETCH_PATHS

    @property
    def is_demand(self) -> bool:
        return self in (Path.DRD, Path.RFO, Path.DWR)

    @property
    def family(self) -> str:
        """Coarse grouping used in the paper's figures: DRd/RFO/HWPF/DWr."""
        if self in (Path.L1_HWPF, Path.L2_HWPF_DRD, Path.L2_HWPF_RFO, Path.SWPF):
            return "HWPF"
        return self.value


_PREFETCH_PATHS = frozenset(
    {Path.L1_HWPF, Path.L2_HWPF_DRD, Path.L2_HWPF_RFO, Path.SWPF}
)

PATH_FAMILIES = ("DRd", "RFO", "HWPF", "DWr")


class CXLOpcode(enum.Enum):
    """CXL.mem transaction opcodes (section 2.1)."""

    M2S_REQ = "Req"    # master-to-subordinate read request, no data
    M2S_RWD = "RwD"    # master-to-subordinate write request with data
    S2M_DRS = "DRS"    # data response (read return)
    S2M_NDR = "NDR"    # no-data response (write completion)


class ServeLocation(enum.Enum):
    """Where a request was ultimately served (CHA Table 2 scenarios)."""

    L1D = "L1D"
    LFB = "LFB"
    L2 = "L2"
    LOCAL_LLC = "local_LLC"       # the core's own SNC cluster LLC slice
    SNC_LLC = "snc_LLC"           # distant cluster slice on same socket
    REMOTE_LLC = "remote_LLC"     # another socket's cache (snoop hit)
    LOCAL_DRAM = "local_DRAM"
    REMOTE_DRAM = "remote_DRAM"   # cross-socket DDR
    CXL_DRAM = "CXL_DRAM"

    @property
    def is_memory(self) -> bool:
        return self in (
            ServeLocation.LOCAL_DRAM,
            ServeLocation.REMOTE_DRAM,
            ServeLocation.CXL_DRAM,
        )


_req_ids = itertools.count()


@dataclass
class MemRequest:
    """One cacheline-granular memory request walking the Clos network."""

    address: int
    path: Path
    core_id: int
    issue_time: float
    is_store: bool = False
    mflow_id: Optional[int] = None
    req_id: int = field(default_factory=lambda: next(_req_ids))

    # Outcome stamps, filled in as the request traverses the hierarchy.
    serve_location: Optional[ServeLocation] = None
    completion_time: Optional[float] = None
    missed_l1: bool = False
    missed_l2: bool = False
    missed_llc: bool = False
    dest_node: Optional[int] = None       # NUMA node that owns the address
    cxl_opcode: Optional[CXLOpcode] = None
    hops: List[Tuple[str, float]] = field(default_factory=list)
    # Optional hook the issuing core installs; the CHA fires it the moment
    # the LLC lookup resolves as a miss (feeds the L3-miss-outstanding meter).
    on_llc_miss: Optional[Callable[[], None]] = None
    # Flight-recorder slot: the FlightRecorder attaches a RequestTrace to
    # sampled requests; every hop site checks it via the recorder.
    trace: Optional[object] = None

    def __post_init__(self) -> None:
        self.address = line_address(self.address)

    # -- trace helpers --------------------------------------------------

    def stamp(self, component: str, time: float) -> None:
        self.hops.append((component, time))

    def complete(self, location: ServeLocation, time: float) -> None:
        self.serve_location = location
        self.completion_time = time

    @property
    def latency(self) -> float:
        if self.completion_time is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completion_time - self.issue_time

    @property
    def line(self) -> int:
        return self.address // CACHELINE

    @property
    def is_cxl(self) -> bool:
        return self.serve_location is ServeLocation.CXL_DRAM or (
            self.cxl_opcode is not None
        )


@dataclass
class MemOp:
    """One workload-level memory operation fed to a core.

    ``gap`` is the number of compute cycles preceding the access (the
    non-memory instruction stream); ``dependent`` marks a load that needs
    the previous load's data before it can issue (pointer chasing);
    ``software_prefetch`` turns the access into a non-blocking SW PF.
    """

    address: int
    is_store: bool = False
    gap: float = 0.0
    dependent: bool = False
    software_prefetch: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("negative compute gap")
        if self.software_prefetch and self.is_store:
            raise ValueError("software prefetch cannot be a store")


def line_address(address: int) -> int:
    """Align ``address`` down to its cacheline base."""
    if address < 0:
        raise ValueError(f"negative address: {address:#x}")
    return address & ~(CACHELINE - 1)
