"""Central PMU counter registry.

A real PMU exposes per-unit MSRs that perf reads; here every simulated
architectural module increments named counters in one registry.  Counters
are keyed by ``(scope, event)`` where ``scope`` names the hardware instance
("core0", "cha3", "imc0.ch0", "cxl0", ...) and ``event`` is the perf-style
event name from the paper's Tables 1-4 (e.g. ``resource_stalls.sb``,
``unc_cha_tor_inserts.ia_drd.miss_cxl``).

Time-integrated counters (queue occupancy, not-empty cycles) cannot be
bumped eagerly - the integral depends on *when* it is read - so components
register :meth:`on_sync` hooks which the registry runs before any snapshot,
flushing integrals up to the current cycle.  This mirrors how perf stops
and reads MSRs at sample boundaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

CounterKey = Tuple[str, str]


class Sampler:
    """One armed sampling counter (section 3.1's second PMU mode).

    Real PMUs fire an overflow interrupt when a counter crosses a
    programmed threshold; here the callback fires synchronously at the
    crossing, receives the current counter value, and the window re-arms
    (periodic sampling) unless :meth:`disarm` is called.
    """

    def __init__(self, scope: str, event: str, threshold: float,
                 callback: Callable[[float], None]) -> None:
        if threshold <= 0:
            raise ValueError("sampling threshold must be positive")
        self.scope = scope
        self.event = event
        self.threshold = threshold
        self.callback = callback
        self.next_fire = threshold
        self.fired = 0
        self.active = True

    def disarm(self) -> None:
        self.active = False

    def observe(self, value: float) -> None:
        while self.active and value >= self.next_fire:
            self.fired += 1
            self.next_fire += self.threshold
            self.callback(value)


class CounterRegistry:
    """All PMU counters of one simulated machine."""

    def __init__(self) -> None:
        self._counters: Dict[CounterKey, float] = defaultdict(float)
        self._sync_hooks: List[Callable[[float], None]] = []
        self._samplers: Dict[CounterKey, List[Sampler]] = {}
        self._last_sync: Optional[Tuple[float, int]] = None
        self._in_sync = False
        self._version = 0

    # -- update ----------------------------------------------------------

    def add(self, scope: str, event: str, value: float = 1.0) -> None:
        key = (scope, event)
        self._counters[key] += value
        self._version += 1
        if self._samplers:
            for sampler in self._samplers.get(key, ()):
                sampler.observe(self._counters[key])

    def add_many(
        self, scope: str, events: Iterable[str], value: float = 1.0
    ) -> None:
        """Bump several events of one scope in a single call.

        The batch analogue of :meth:`add` for hot emission sites (TOR
        inserts, OCR scenario fan-out) that bump a precomputed tuple of
        counters per request; equivalent to calling ``add`` per event as
        long as the events are distinct.
        """
        counters = self._counters
        for event in events:
            counters[(scope, event)] += value
        self._version += 1
        if self._samplers:
            samplers = self._samplers
            for event in events:
                key = (scope, event)
                for sampler in samplers.get(key, ()):
                    sampler.observe(counters[key])

    def arm_sampler(
        self, scope: str, event: str, threshold: float,
        callback: Callable[[float], None],
    ) -> Sampler:
        """Arm an overflow-style sampler on one counter."""
        sampler = Sampler(scope, event, threshold, callback)
        self._samplers.setdefault((scope, event), []).append(sampler)
        return sampler

    def set(self, scope: str, event: str, value: float) -> None:
        key = (scope, event)
        self._counters[key] = value
        self._version += 1
        # Time-integrated counters are maintained via ``set`` from sync
        # hooks; samplers armed on them must see the flushed value, else
        # threshold crossings fire late (or never) on the next eager add.
        if self._samplers:
            for sampler in self._samplers.get(key, ()):
                sampler.observe(value)

    def on_sync(self, hook: Callable[[float], None]) -> None:
        """Register a flush hook run before every read/snapshot."""
        self._sync_hooks.append(hook)
        self._last_sync = None

    def sync(self, now: float) -> None:
        """Run every flush hook once per (timestamp, counter state).

        A mid-epoch reader (e.g. a tiering engine polling counters) and
        the epoch-boundary snapshot frequently sync at the *same* cycle;
        re-running the hooks would re-flush integrals and re-notify any
        armed sampler for the same window, double-counting observations.
        Hooks are skipped when nothing changed since the previous sync at
        this timestamp; together with the monotonic ``Sampler.next_fire``
        re-arm this makes a snapshot taken mid-epoch observation-exact.
        """
        if self._in_sync:
            return
        if self._last_sync == (now, self._version):
            return
        self._in_sync = True
        try:
            for hook in self._sync_hooks:
                hook(now)
        finally:
            self._in_sync = False
            self._last_sync = (now, self._version)

    # -- read --------------------------------------------------------------

    def get(self, scope: str, event: str, default: float = 0.0) -> float:
        return self._counters.get((scope, event), default)

    def scoped(self, scope: str) -> Dict[str, float]:
        """All events of one hardware instance."""
        return {
            event: value
            for (s, event), value in self._counters.items()
            if s == scope
        }

    def matching(self, event_prefix: str) -> Dict[CounterKey, float]:
        """All counters whose event name starts with ``event_prefix``."""
        return {
            key: value
            for key, value in self._counters.items()
            if key[1].startswith(event_prefix)
        }

    def sum(self, event: str, scopes: Optional[Iterable[str]] = None) -> float:
        """Sum one event across hardware instances (perf's uncore --per-socket)."""
        if scopes is None:
            return sum(
                value for (s, e), value in self._counters.items() if e == event
            )
        scope_set = set(scopes)
        return sum(
            value
            for (s, e), value in self._counters.items()
            if e == event and s in scope_set
        )

    def snapshot(self, now: float) -> Dict[CounterKey, float]:
        """Flush integrals and return a point-in-time copy of every counter."""
        self.sync(now)
        return dict(self._counters)

    def scopes(self) -> List[str]:
        return sorted({scope for scope, _ in self._counters})

    def events(self, scope: str) -> List[str]:
        return sorted({e for s, e in self._counters if s == scope})

    def __len__(self) -> int:
        return len(self._counters)


def delta(
    after: Dict[CounterKey, float], before: Dict[CounterKey, float]
) -> Dict[CounterKey, float]:
    """Per-counter difference between two snapshots (an epoch's activity)."""
    keys = set(after) | set(before)
    return {k: after.get(k, 0.0) - before.get(k, 0.0) for k in keys}
