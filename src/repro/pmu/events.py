"""PMU event catalog (paper Tables 1-4).

The paper identifies 232 usable counters across four PMU groups: core,
CHA/LLC, uncore (IMC + M2PCIe) and the CXL device.  This module is the
machine-readable version of those tables: every event the simulator emits,
tagged with its group, scope kind, and the CXL.mem data path(s) it
observes (Table 5's PFBuilder mapping).  PathFinder modules select events
from this catalog by name, exactly as the real tool selects perf events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class EventSpec:
    name: str
    group: str          # "core" | "cha" | "uncore" | "cxl"
    scope_kind: str     # "per-core" | "per-socket" | "per-channel" | "per-device"
    kind: str           # "event" | "cycles" | "occupancy" | "latency"
    paths: Tuple[str, ...] = ()
    description: str = ""


_E = EventSpec

CORE_EVENTS: List[EventSpec] = [
    _E("resource_stalls.sb", "core", "per-core", "cycles", ("DWr",),
       "Stall cycles with SB full while loads are still issued"),
    _E("exe_activity.bound_on_stores", "core", "per-core", "cycles", ("DWr",),
       "Stall cycles with SB full and no loads outstanding"),
    _E("cycle_activity.cycles_l1d_miss", "core", "per-core", "cycles", ("DRd",),
       "Cycles while an L1D-miss demand load is outstanding"),
    _E("memory_activity.stalls_l1d_miss", "core", "per-core", "cycles", ("DRd",),
       "Execution stall cycles while an L1D-miss demand load is outstanding"),
    _E("l1d.replacement", "core", "per-core", "event", ("DRd", "RFO"),
       "L1D line evictions"),
    _E("mem_load_retired.l1_hit", "core", "per-core", "event", ("DRd",),
       "Retired loads hitting L1D"),
    _E("mem_load_retired.l1_miss", "core", "per-core", "event", ("DRd",),
       "Retired loads missing L1D"),
    _E("mem_load_retired.fb_hit", "core", "per-core", "event", ("DRd",),
       "Retired loads missing L1D but hitting an in-flight LFB line"),
    _E("l1d_pend_miss.fb_full", "core", "per-core", "cycles", ("DRd", "RFO"),
       "Cycles a demand request waited because the LFB was full"),
    _E("mem_load_retired.l2_hit", "core", "per-core", "event", ("DRd",)),
    _E("mem_load_retired.l2_miss", "core", "per-core", "event", ("DRd",)),
    _E("mem_store_retired.l2_hit", "core", "per-core", "event", ("RFO",)),
    _E("l2_rqsts.references", "core", "per-core", "event", ("DRd", "RFO", "HWPF")),
    _E("l2_rqsts.miss", "core", "per-core", "event", ("DRd", "RFO", "HWPF")),
    _E("l2_rqsts.all_demand_references", "core", "per-core", "event", ("DRd",)),
    _E("l2_rqsts.all_demand_miss", "core", "per-core", "event", ("DRd",)),
    _E("l2_rqsts.all_demand_data_rd", "core", "per-core", "event", ("DRd",)),
    _E("l2_rqsts.demand_data_rd_hit", "core", "per-core", "event", ("DRd",)),
    _E("l2_rqsts.demand_data_rd_miss", "core", "per-core", "event", ("DRd",)),
    _E("offcore_requests.demand_data_rd", "core", "per-core", "event", ("DRd",)),
    _E("offcore_requests.data_rd", "core", "per-core", "event", ("DRd", "HWPF")),
    _E("offcore_requests.all.requests", "core", "per-core", "event",
       ("DRd", "RFO", "HWPF")),
    _E("l2_rqsts.all_rfo", "core", "per-core", "event", ("RFO",)),
    _E("l2_rqsts.rfo_hit", "core", "per-core", "event", ("RFO",)),
    _E("l2_rqsts.rfo_miss", "core", "per-core", "event", ("RFO",)),
    _E("l2_rqsts.swpf_hit", "core", "per-core", "event", ("HWPF",)),
    _E("l2_rqsts.swpf_miss", "core", "per-core", "event", ("HWPF",)),
    _E("l2_rqsts.pf_hit", "core", "per-core", "event", ("HWPF",)),
    _E("l2_rqsts.pf_miss", "core", "per-core", "event", ("HWPF",)),
    _E("memory_activity.stalls_l2_miss", "core", "per-core", "cycles", ("DRd",)),
    _E("cycle_activity.cycles_l2_miss", "core", "per-core", "cycles", ("DRd",)),
    _E("ORO.data_rd", "core", "per-core", "occupancy", ("DRd", "HWPF"),
       "Outstanding data reads, integrated per cycle"),
    _E("ORO.cycles_with_data_rd", "core", "per-core", "cycles", ("DRd", "HWPF")),
    _E("ORO.demand_data_rd", "core", "per-core", "occupancy", ("DRd",)),
    _E("ORO.cycles_with_demand_data_rd", "core", "per-core", "cycles", ("DRd",)),
    _E("inst_retired.any", "core", "per-core", "event", ()),
    _E("cpu_clk_unhalted", "core", "per-core", "cycles", ()),
    _E("mem_inst_retired.all_loads", "core", "per-core", "event", ("DRd",)),
    _E("mem_inst_retired.all_stores", "core", "per-core", "event", ("DWr",)),
    _E("sw_prefetch_access.any", "core", "per-core", "event", ("HWPF",)),
    _E("sb.occupancy", "core", "per-core", "occupancy", ("DWr",),
       "Store-buffer occupancy, integrated per cycle"),
    _E("sb.inserts", "core", "per-core", "event", ("DWr",)),
    _E("lfb.occupancy", "core", "per-core", "occupancy", ("DRd",),
       "Line-fill-buffer occupancy, integrated per cycle"),
    _E("lfb.inserts", "core", "per-core", "event", ("DRd",)),
    _E("app.ops_completed", "core", "per-core", "event", (),
       "Workload-level operations completed (application throughput)"),
]

# Load-latency sampling (mem_trans_retired.load_latency in Table 1): the
# simulator aggregates per-serve-location sums and counts.
_LATENCY_LOCATIONS = (
    "L2", "local_LLC", "snc_LLC", "remote_LLC",
    "local_DRAM", "remote_DRAM", "CXL_DRAM",
)
for _location in _LATENCY_LOCATIONS:
    for _suffix in ("sum", "count"):
        CORE_EVENTS.append(
            _E(
                f"lat_sample.{_location}.{_suffix}", "core", "per-core",
                "latency", ("DRd", "RFO"),
                f"Sampled load latency to {_location} ({_suffix})",
            )
        )

_OCR_SCENARIOS = (
    "any_response", "l3_hit", "snc_cache", "local_dram",
    "snc_dram", "remote_cache", "remote_dram", "cxl_dram", "non_local_cache",
)
_OCR_BASES = {
    "ocr.demand_data_rd": ("DRd",),
    "ocr.rfo": ("RFO",),
    "ocr.l1d_hw_pf": ("HWPF",),
    "ocr.l2_hw_pf_drd": ("HWPF",),
    "ocr.l2_hw_pf_rfo": ("HWPF",),
    "ocr.modified_write": ("DWr",),
}

CHA_EVENTS: List[EventSpec] = [
    _E("cycle_activity.stalls_l3_miss", "cha", "per-core", "cycles", ("DRd",)),
    _E("ORO.l3_miss_demand_data_rd", "cha", "per-core", "occupancy", ("DRd",)),
]
for _base, _paths in _OCR_BASES.items():
    for _scenario in _OCR_SCENARIOS:
        CHA_EVENTS.append(
            _E(f"{_base}.{_scenario}", "cha", "per-core", "event", _paths)
        )

_TOR_SCENARIOS = {
    "ia_drd": ("total", "hit", "miss", "miss_ddr", "miss_local",
               "miss_local_ddr", "miss_remote", "miss_remote_ddr", "miss_cxl"),
    "ia_drd_pref": ("total", "hit", "miss", "miss_ddr", "miss_local",
                    "miss_local_ddr", "miss_remote", "miss_remote_ddr",
                    "miss_cxl"),
    "ia_rfo": ("total", "hit", "miss", "miss_local", "miss_remote", "miss_cxl"),
    "ia_rfo_pref": ("total", "hit", "miss", "miss_local", "miss_remote",
                    "miss_cxl"),
    "ia_wb": ("total", "e_to_e", "e_to_i", "m_to_e", "m_to_i", "s_to_i"),
    "ia": ("total", "hit", "miss", "miss_cxl"),
}
_TOR_PATH = {
    "ia_drd": ("DRd",), "ia_drd_pref": ("HWPF",), "ia_rfo": ("RFO",),
    "ia_rfo_pref": ("HWPF",), "ia_wb": ("DWr",), "ia": (),
}
for _sub, _scenarios in _TOR_SCENARIOS.items():
    for _scenario in _scenarios:
        CHA_EVENTS.append(
            _E(
                f"unc_cha_tor_inserts.{_sub}.{_scenario}", "cha", "per-socket",
                "event", _TOR_PATH[_sub],
            )
        )
        CHA_EVENTS.append(
            _E(
                f"unc_cha_tor_occupancy.{_sub}.{_scenario}", "cha", "per-socket",
                "occupancy", _TOR_PATH[_sub],
            )
        )

UNCORE_EVENTS: List[EventSpec] = [
    _E("unc_m_rpq_cycles_ne", "uncore", "per-channel", "cycles", ("DRd", "HWPF")),
    _E("unc_m_rpq_inserts", "uncore", "per-channel", "event", ("DRd", "HWPF")),
    _E("unc_m_rpq_occupancy", "uncore", "per-channel", "occupancy", ("DRd", "HWPF")),
    _E("unc_m_wpq_cycles_ne", "uncore", "per-channel", "cycles", ("DWr",)),
    _E("unc_m_wpq_inserts", "uncore", "per-channel", "event", ("DWr",)),
    _E("unc_m_wpq_occupancy", "uncore", "per-channel", "occupancy", ("DWr",)),
    _E("unc_m_cas_count.all", "uncore", "per-channel", "event", ()),
    _E("unc_m_cas_count.rd", "uncore", "per-channel", "event", ("DRd", "HWPF")),
    _E("unc_m_cas_count.wr", "uncore", "per-channel", "event", ("DWr",)),
    _E("unc_m2p_rxc_cycles_ne.all", "uncore", "per-socket", "cycles",
       ("DRd", "RFO", "HWPF", "DWr")),
    _E("unc_m2p_rxc_inserts.all", "uncore", "per-socket", "event",
       ("DRd", "RFO", "HWPF", "DWr")),
    _E("unc_m2p_rxc_occupancy.all", "uncore", "per-socket", "occupancy",
       ("DRd", "RFO", "HWPF", "DWr")),
    _E("unc_m2p_txc_inserts.ak", "uncore", "per-socket", "event", ("DWr",),
       "Write acknowledgements returned to the mesh"),
    _E("unc_m2p_txc_inserts.bl", "uncore", "per-socket", "event", ("DRd", "HWPF"),
       "Block-data (cacheline) responses returned to the mesh"),
    _E("unc_m2p_link_occupancy", "uncore", "per-socket", "occupancy",
       ("DRd", "RFO", "HWPF", "DWr"),
       "FlexBus serialisation queue occupancy, both directions"),
    _E("unc_m2p_link_cycles_ne", "uncore", "per-socket", "cycles",
       ("DRd", "RFO", "HWPF", "DWr")),
    _E("unc_cxlsw_fwd_down", "uncore", "per-socket", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Fabric-switch flits forwarded toward devices (extension)"),
    _E("unc_cxlsw_fwd_up", "uncore", "per-socket", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Fabric-switch flits forwarded toward hosts (extension)"),
    _E("unc_cxlsw_retry_down", "uncore", "per-socket", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Device-direction submissions throttled by full port queues"
       " (extension)"),
    _E("unc_cxlsw_retry_up", "uncore", "per-socket", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Host-direction submissions throttled by full port queues"
       " (extension)"),
    _E("unc_cxlsw_occupancy", "uncore", "per-switch-port", "occupancy",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Fabric switch output-port queue occupancy, per port (extension)"),
    _E("unc_cxlsw_cycles_ne", "uncore", "per-switch-port", "cycles",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Cycles a fabric switch output-port queue was not empty"
       " (extension)"),
    _E("unc_cxlsw_fwd", "uncore", "per-switch-port", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Flits a fabric switch forwarded out of one port; equals delivered"
       " flits, never attempts (extension)"),
    _E("unc_cxlsw_retry", "uncore", "per-switch-port", "event",
       ("DRd", "RFO", "HWPF", "DWr"),
       "Credit-throttled submissions at one fabric switch port"
       " (extension)"),
]

CXL_EVENTS: List[EventSpec] = [
    _E("unc_cxlcm_rxc_pack_buf_inserts.mem_req", "cxl", "per-device", "event",
       ("DRd", "RFO", "HWPF")),
    _E("unc_cxlcm_rxc_pack_buf_inserts.mem_data", "cxl", "per-device", "event",
       ("DWr",)),
    _E("unc_cxlcm_rxc_pack_buf_ne.mem_req", "cxl", "per-device", "cycles",
       ("DRd", "RFO", "HWPF")),
    _E("unc_cxlcm_rxc_pack_buf_ne.mem_data", "cxl", "per-device", "cycles",
       ("DWr",)),
    _E("unc_cxlcm_rxc_pack_buf_full.mem_req", "cxl", "per-device", "cycles",
       ("DRd", "RFO", "HWPF")),
    _E("unc_cxlcm_rxc_pack_buf_full.mem_data", "cxl", "per-device", "cycles",
       ("DWr",)),
    _E("unc_cxlcm_rxc_pack_buf_occupancy.mem_req", "cxl", "per-device",
       "occupancy", ("DRd", "RFO", "HWPF")),
    _E("unc_cxlcm_rxc_pack_buf_occupancy.mem_data", "cxl", "per-device",
       "occupancy", ("DWr",)),
    _E("unc_cxlcm_txc_pack_buf_inserts.mem_req", "cxl", "per-device", "event",
       ("DWr",)),
    _E("unc_cxlcm_txc_pack_buf_inserts.mem_data", "cxl", "per-device", "event",
       ("DRd", "HWPF")),
    _E("unc_cxlcm_mc_occupancy", "cxl", "per-device", "occupancy",
       ("DRd", "RFO", "HWPF", "DWr")),
    _E("unc_cxlcm_mc_cycles_ne", "cxl", "per-device", "cycles",
       ("DRd", "RFO", "HWPF", "DWr")),
]

ALL_EVENTS: List[EventSpec] = CORE_EVENTS + CHA_EVENTS + UNCORE_EVENTS + CXL_EVENTS

EVENTS_BY_NAME: Dict[str, EventSpec] = {e.name: e for e in ALL_EVENTS}


def events_for_path(path_family: str) -> List[EventSpec]:
    """All events observing one data-path family (DRd/RFO/HWPF/DWr)."""
    return [e for e in ALL_EVENTS if path_family in e.paths]


def events_in_group(group: str) -> List[EventSpec]:
    return [e for e in ALL_EVENTS if e.group == group]


def catalog_size() -> int:
    """Total distinct counters in the catalog (paper: 232 selected)."""
    return len(EVENTS_BY_NAME)
