"""PMU emulation: counter registry, event catalog, and structured views.

This package is the boundary between substrate and profiler: the simulator
writes counters into :class:`CounterRegistry` under the perf event names of
the paper's Tables 1-4, and PathFinder reads them back through the view
classes - never through simulator internals.  Re-pointing the views at a
Linux-perf reader would turn this reproduction into the authors' tool.
"""

from .events import (
    ALL_EVENTS,
    CHA_EVENTS,
    CORE_EVENTS,
    CXL_EVENTS,
    EVENTS_BY_NAME,
    EventSpec,
    UNCORE_EVENTS,
    catalog_size,
    events_for_path,
    events_in_group,
)
from .registry import CounterRegistry, Sampler, delta
from .views import (
    CHAPMUView,
    CXLDeviceView,
    CorePMUView,
    IMCView,
    M2PCIeView,
    core_ids,
    cxl_node_ids,
)

__all__ = [
    "ALL_EVENTS",
    "CHA_EVENTS",
    "CHAPMUView",
    "CORE_EVENTS",
    "CXLDeviceView",
    "CXL_EVENTS",
    "CorePMUView",
    "CounterRegistry",
    "EVENTS_BY_NAME",
    "EventSpec",
    "IMCView",
    "M2PCIeView",
    "Sampler",
    "UNCORE_EVENTS",
    "catalog_size",
    "core_ids",
    "cxl_node_ids",
    "delta",
    "events_for_path",
    "events_in_group",
]
