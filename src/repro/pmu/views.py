"""Structured views over raw counter snapshots.

PathFinder's techniques consume counter *deltas* between two snapshots
(one profiling epoch).  These view classes organise a delta dict into the
quantities the paper's figures report - per-path hits and misses at each
level, stall cycles, queue occupancies, and latency estimates - without
ever touching simulator state.  They are the equivalent of the metric
expressions perf/VTune derive from raw events.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

CounterDelta = Mapping[Tuple[str, str], float]

# Table 5 / section 4.3: architectural path -> CHA TOR sub-event.
TOR_SUBEVENT = {
    "DRd": "ia_drd",
    "RFO": "ia_rfo",
    "HWPF": "ia_drd_pref",
    "HWPF_RFO": "ia_rfo_pref",
    "DWr": "ia_wb",
}

OCR_BASE = {
    "DRd": "ocr.demand_data_rd",
    "RFO": "ocr.rfo",
    "HWPF": "ocr.l2_hw_pf_drd",
    "HWPF_L1": "ocr.l1d_hw_pf",
    "HWPF_RFO": "ocr.l2_hw_pf_rfo",
    "DWr": "ocr.modified_write",
}

SERVE_SCENARIOS = (
    "l3_hit", "snc_cache", "remote_cache", "local_dram", "snc_dram",
    "remote_dram", "cxl_dram",
)


class _View:
    def __init__(self, delta: CounterDelta, scope: str) -> None:
        self._delta = delta
        self.scope = scope

    def get(self, event: str, scope: Optional[str] = None) -> float:
        return self._delta.get((scope or self.scope, event), 0.0)


class CorePMUView(_View):
    """Core PMU (Table 1) of one core over one epoch."""

    def __init__(self, delta: CounterDelta, core_id: int) -> None:
        super().__init__(delta, f"core{core_id}")
        self.core_id = core_id

    # -- store buffer ---------------------------------------------------

    @property
    def sb_stall_rd_wr(self) -> float:
        return self.get("resource_stalls.sb")

    @property
    def sb_stall_wr_only(self) -> float:
        return self.get("exe_activity.bound_on_stores")

    @property
    def sb_occupancy(self) -> float:
        return self.get("sb.occupancy")

    # -- L1D ---------------------------------------------------------------

    @property
    def l1_hits(self) -> float:
        return self.get("mem_load_retired.l1_hit")

    @property
    def l1_misses(self) -> float:
        return self.get("mem_load_retired.l1_miss")

    @property
    def l1_evictions(self) -> float:
        return self.get("l1d.replacement")

    @property
    def l1_stall_cycles(self) -> float:
        return self.get("memory_activity.stalls_l1d_miss")

    @property
    def l1_miss_outstanding_cycles(self) -> float:
        return self.get("cycle_activity.cycles_l1d_miss")

    # -- LFB ----------------------------------------------------------------

    @property
    def fb_hits(self) -> float:
        return self.get("mem_load_retired.fb_hit")

    @property
    def lfb_full_stall(self) -> float:
        return self.get("l1d_pend_miss.fb_full")

    @property
    def lfb_occupancy(self) -> float:
        return self.get("lfb.occupancy")

    @property
    def lfb_inserts(self) -> float:
        return self.get("lfb.inserts")

    # -- L2 per path -------------------------------------------------------

    def l2_hits(self, path: str) -> float:
        if path == "DRd":
            return self.get("l2_rqsts.demand_data_rd_hit")
        if path == "RFO":
            return self.get("l2_rqsts.rfo_hit")
        if path == "HWPF":
            return self.get("l2_rqsts.pf_hit") + self.get("l2_rqsts.swpf_hit")
        raise KeyError(f"no L2 hit counter for path {path}")

    def l2_misses(self, path: str) -> float:
        if path == "DRd":
            return self.get("l2_rqsts.demand_data_rd_miss")
        if path == "RFO":
            return self.get("l2_rqsts.rfo_miss")
        if path == "HWPF":
            return self.get("l2_rqsts.pf_miss") + self.get("l2_rqsts.swpf_miss")
        raise KeyError(f"no L2 miss counter for path {path}")

    @property
    def l2_stall_cycles(self) -> float:
        return self.get("memory_activity.stalls_l2_miss")

    @property
    def l3_stall_cycles(self) -> float:
        return self.get("cycle_activity.stalls_l3_miss")

    # -- latency -----------------------------------------------------------

    @property
    def avg_demand_read_latency(self) -> float:
        """Average demand-read data response time, perf's classic formula:
        outstanding-cycles integral / number of offcore demand reads."""
        requests = self.get("offcore_requests.demand_data_rd")
        if requests <= 0:
            return 0.0
        return self.get("ORO.demand_data_rd") / requests

    def latency_sample(self, location: str) -> Tuple[float, float]:
        """(mean latency, sample count) of loads served at ``location``."""
        count = self.get(f"lat_sample.{location}.count")
        if count <= 0:
            return 0.0, 0.0
        return self.get(f"lat_sample.{location}.sum") / count, count

    # -- serve-location classification (ocr.*) --------------------------------

    def ocr(self, path: str, scenario: str) -> float:
        return self.get(f"{OCR_BASE[path]}.{scenario}")

    def serve_histogram(self, path: str) -> Dict[str, float]:
        return {s: self.ocr(path, s) for s in SERVE_SCENARIOS}

    @property
    def cycles(self) -> float:
        return self.get("cpu_clk_unhalted")

    @property
    def instructions(self) -> float:
        return self.get("inst_retired.any")

    @property
    def ops_completed(self) -> float:
        return self.get("app.ops_completed")


class CHAPMUView(_View):
    """CHA/LLC PMU (Table 2) of one socket over one epoch."""

    def __init__(self, delta: CounterDelta, socket: int = 0) -> None:
        super().__init__(delta, f"cha{socket}")
        self.socket = socket

    def tor_inserts(self, path: str, scenario: str = "total") -> float:
        return self.get(f"unc_cha_tor_inserts.{TOR_SUBEVENT[path]}.{scenario}")

    def tor_occupancy(self, path: str, scenario: str = "total") -> float:
        sub = TOR_SUBEVENT[path]
        return self.get(f"unc_cha_tor_occupancy.{sub}.{scenario}")

    def llc_hits(self, path: str) -> float:
        return self.tor_inserts(path, "hit")

    def llc_misses(self, path: str) -> float:
        return self.tor_inserts(path, "miss")

    def miss_targets(self, path: str) -> Dict[str, float]:
        """Where did this path's LLC misses get served from?"""
        out = {}
        for scenario in ("miss_local_ddr", "miss_remote_ddr", "miss_cxl"):
            out[scenario] = self.tor_inserts(path, scenario)
        return out

    @property
    def snoop_hits(self) -> float:
        return self.get("unc_cha_snoop.hit") + self.get("unc_cha_snoop.hitm")

    @property
    def snoop_hitm(self) -> float:
        return self.get("unc_cha_snoop.hitm")

    def state_transitions(self) -> Dict[str, float]:
        prefix = "unc_cha_state."
        return {
            event[len(prefix):]: value
            for (scope, event), value in self._delta.items()
            if scope == self.scope and event.startswith(prefix)
        }

    def avg_tor_latency(self, path: str, scenario: str = "total") -> float:
        """Mean TOR residency (cycles) per request: occupancy / inserts."""
        inserts = self.tor_inserts(path, scenario)
        if inserts <= 0:
            return 0.0
        return self.tor_occupancy(path, scenario) / inserts


class IMCView(_View):
    """IMC channel counters (Table 3), aggregated over all channels."""

    def __init__(self, delta: CounterDelta, imc_id: int = 0) -> None:
        super().__init__(delta, f"imc{imc_id}")
        self.imc_id = imc_id
        self._channels = sorted(
            {
                scope
                for (scope, _event) in delta
                if scope.startswith(f"imc{imc_id}.ch")
            }
        )

    @property
    def channels(self) -> List[str]:
        return self._channels

    def _sum(self, event: str) -> float:
        return sum(self._delta.get((ch, event), 0.0) for ch in self._channels)

    @property
    def rpq_inserts(self) -> float:
        return self._sum("unc_m_rpq_inserts")

    @property
    def wpq_inserts(self) -> float:
        return self._sum("unc_m_wpq_inserts")

    @property
    def rpq_occupancy(self) -> float:
        return self._sum("unc_m_rpq_occupancy")

    @property
    def wpq_occupancy(self) -> float:
        return self._sum("unc_m_wpq_occupancy")

    @property
    def rpq_cycles_ne(self) -> float:
        return self._sum("unc_m_rpq_cycles_ne")

    @property
    def wpq_cycles_ne(self) -> float:
        return self._sum("unc_m_wpq_cycles_ne")

    @property
    def cas_reads(self) -> float:
        return self._sum("unc_m_cas_count.rd")

    @property
    def cas_writes(self) -> float:
        return self._sum("unc_m_cas_count.wr")

    @property
    def cas_all(self) -> float:
        return self._sum("unc_m_cas_count.all")


class M2PCIeView(_View):
    """M2PCIe / FlexBus root-port counters for one CXL endpoint."""

    def __init__(self, delta: CounterDelta, node_id: int) -> None:
        super().__init__(delta, f"m2pcie{node_id}")
        self.node_id = node_id

    @property
    def ingress_inserts(self) -> float:
        return self.get("unc_m2p_rxc_inserts.all")

    @property
    def ingress_cycles_ne(self) -> float:
        return self.get("unc_m2p_rxc_cycles_ne.all")

    @property
    def ingress_occupancy(self) -> float:
        return self.get("unc_m2p_rxc_occupancy.all")

    @property
    def data_responses(self) -> float:
        """CXL loads completed (block data to mesh)."""
        return self.get("unc_m2p_txc_inserts.bl")

    @property
    def write_acks(self) -> float:
        """CXL stores completed (acknowledgements to mesh)."""
        return self.get("unc_m2p_txc_inserts.ak")


class CXLDeviceView(_View):
    """CXL device counters (Table 4) for one Type-3 endpoint."""

    def __init__(self, delta: CounterDelta, node_id: int) -> None:
        super().__init__(delta, f"cxl{node_id}")
        self.node_id = node_id

    @property
    def req_inserts(self) -> float:
        return self.get("unc_cxlcm_rxc_pack_buf_inserts.mem_req")

    @property
    def data_inserts(self) -> float:
        return self.get("unc_cxlcm_rxc_pack_buf_inserts.mem_data")

    def pack_buf_cycles_ne(self, which: str = "mem_req") -> float:
        return self.get(f"unc_cxlcm_rxc_pack_buf_ne.{which}")

    def pack_buf_cycles_full(self, which: str = "mem_req") -> float:
        return self.get(f"unc_cxlcm_rxc_pack_buf_full.{which}")

    def pack_buf_occupancy(self, which: str = "mem_req") -> float:
        return self.get(f"unc_cxlcm_rxc_pack_buf_occupancy.{which}")

    @property
    def mc_occupancy(self) -> float:
        return self.get("unc_cxlcm_mc_occupancy")

    @property
    def mc_cycles_ne(self) -> float:
        return self.get("unc_cxlcm_mc_cycles_ne")

    @property
    def drs_responses(self) -> float:
        return self.get("unc_cxlcm_txc_pack_buf_inserts.mem_data")

    @property
    def ndr_responses(self) -> float:
        return self.get("unc_cxlcm_txc_pack_buf_inserts.mem_req")


def core_ids(delta: CounterDelta) -> List[int]:
    """All core scopes present in a delta."""
    ids = set()
    for scope, _event in delta:
        if scope.startswith("core") and scope[4:].isdigit():
            ids.add(int(scope[4:]))
    return sorted(ids)


def cxl_node_ids(delta: CounterDelta) -> List[int]:
    ids = set()
    for scope, _event in delta:
        if scope.startswith("cxl") and scope[3:].isdigit():
            ids.add(int(scope[3:]))
    return sorted(ids)
