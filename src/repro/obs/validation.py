"""Ground-truth validation of PFAnalyzer against the flight recorder.

PFAnalyzer infers per-component queue lengths from aggregate PMU counters
via Little's law; the recorder measures the same quantity directly from
per-request timestamps.  This module lines the two up per component: the
measured queue length is ``(sampled arrivals x sample_every / duration) x
mean residency`` - Little's law again, but over ground-truth intervals -
and agreement on the top-1 component is the pass criterion (the check
hardware could not run, section 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .recorder import TraceReport

#: Measured stages with a directly comparable PFAnalyzer component.
#: L1D is invisible to the recorder (L1 hits never become MemRequests);
#: the measured FlexBus+MC interval spans the whole CXL complex including
#: the device MC, matching the analyzer's single FlexBus+MC estimate, so
#: the nested CXL_MC stage is informational only.
COMPARABLE_STAGES = ("LFB", "L2", "LLC", "FlexBus+MC")


@dataclass
class StageComparison:
    component: str
    measured_mean_residency: float
    measured_queue_length: float
    estimated_queue_length: float

    @property
    def ratio(self) -> Optional[float]:
        if self.estimated_queue_length <= 0:
            return None
        return self.measured_queue_length / self.estimated_queue_length


@dataclass
class ValidationReport:
    """Measured-vs-estimated queue lengths plus top-1 agreement."""

    rows: List[StageComparison] = field(default_factory=list)
    measured_top: Optional[str] = None
    estimated_top: Optional[str] = None

    @property
    def agrees(self) -> bool:
        return (
            self.measured_top is not None
            and self.measured_top == self.estimated_top
        )

    def row(self, component: str) -> Optional[StageComparison]:
        for row in self.rows:
            if row.component == component:
                return row
        return None

    def render(self) -> str:
        lines = [
            "Ground-truth validation (measured vs Little's-law estimate)",
            "component     meas W     meas L      est L   meas/est",
        ]
        for row in self.rows:
            ratio = f"{row.ratio:10.2f}" if row.ratio is not None else f"{'-':>10}"
            lines.append(
                f"{row.component:<12}"
                f" {row.measured_mean_residency:8.1f}"
                f" {row.measured_queue_length:10.4f}"
                f" {row.estimated_queue_length:10.4f}"
                f" {ratio}"
            )
        lines.append(
            f"top-1: measured={self.measured_top or '-'}"
            f" estimated={self.estimated_top or '-'}"
            f" -> {'AGREE' if self.agrees else 'DISAGREE'}"
        )
        return "\n".join(lines)


def validate_against_analyzer(
    report: TraceReport, analyzer_reports: Iterable
) -> ValidationReport:
    """Compare a trace report against PFAnalyzer queue estimates.

    ``analyzer_reports`` is the per-epoch sequence of
    :class:`~repro.core.analyzer.AnalyzerReport` objects from the same
    run (duck-typed: anything with ``by_component()``); their
    per-component queue lengths are averaged across epochs to match the
    whole-session aggregation of the trace report.
    """
    totals: Dict[str, float] = {}
    epochs = 0
    for analyzer_report in analyzer_reports:
        epochs += 1
        for component, length in analyzer_report.by_component().items():
            totals[component] = totals.get(component, 0.0) + length
    estimated = {
        component: total / epochs for component, total in totals.items()
    } if epochs else {}

    residency = report.stage_mean_residency()
    out = ValidationReport()
    for component in COMPARABLE_STAGES:
        measured_l = report.measured_queue_length(component)
        estimated_l = estimated.get(component, 0.0)
        if measured_l == 0.0 and estimated_l == 0.0:
            continue
        out.rows.append(
            StageComparison(
                component=component,
                measured_mean_residency=residency.get(component, 0.0),
                measured_queue_length=measured_l,
                estimated_queue_length=estimated_l,
            )
        )
    if out.rows:
        out.measured_top = max(
            out.rows, key=lambda r: r.measured_queue_length
        ).component
        out.estimated_top = max(
            out.rows, key=lambda r: r.estimated_queue_length
        ).component
    return out
