"""Request-path flight recorder.

The recorder samples 1-in-N memory requests at creation and stamps a hop
event (component, enq/deq, timestamp) on each sampled request as it
moves through the Clos stages.  Components hold a ``recorder`` attribute
that is ``None`` unless a profiling spec asked for tracing, so the
disabled path costs one attribute test per hop site and nothing else.

Everything here is duck-typed against the simulator: a "request" is any
object with ``core_id`` / ``path`` / ``address`` / ``issue_time`` and a
writable ``trace`` slot, a "queue" is anything exposing ``name`` and a
``stats`` object with ``sync``/``occupancy_integral``.  That keeps
``repro.obs`` importable below both ``repro.sim`` and ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .histogram import LogHistogram

#: Stage names in request-path order.  These are the coarse per-stage
#: intervals the report and the validation layer reason about; queue-level
#: hops (``q:imc0.ch0.rpq`` etc.) ride alongside for Perfetto drill-down.
CANONICAL_STAGES = ("LFB", "L2", "LLC", "IMC", "FlexBus+MC", "CXL_MC")

ENQ = "enq"
DEQ = "deq"


@dataclass
class HopEvent:
    """One timestamped transition at a component boundary."""

    component: str
    kind: str        # "enq" | "deq"
    t: float


@dataclass
class RequestTrace:
    """The recorded life of one sampled request.

    ``local_id`` is the recorder's own sequence number - unlike the
    simulator-global ``req_id`` it is deterministic across runs within a
    process, which is what makes traced runs reproducible.
    """

    local_id: int
    req_id: int
    core_id: int
    path: str
    address: int
    issue_time: float
    events: List[HopEvent] = field(default_factory=list)
    completion_time: Optional[float] = None
    serve_location: Optional[str] = None

    def intervals(self) -> List[Tuple[str, float, float]]:
        """Matched ``(component, t_enq, t_deq)`` residency intervals.

        Pairs each ``deq`` with the most recent unmatched ``enq`` of the
        same component (stages can nest, e.g. CXL_MC inside FlexBus+MC).
        Unmatched enqueues (request still in flight at session end) are
        dropped.
        """
        open_by_component: Dict[str, List[float]] = {}
        out: List[Tuple[str, float, float]] = []
        for event in self.events:
            if event.kind == ENQ:
                open_by_component.setdefault(event.component, []).append(event.t)
            else:
                stack = open_by_component.get(event.component)
                if stack:
                    out.append((event.component, stack.pop(), event.t))
        return out

    def to_dict(self) -> Dict:
        return {
            "local_id": self.local_id,
            "req_id": self.req_id,
            "core_id": self.core_id,
            "path": self.path,
            "address": self.address,
            "issue_time": self.issue_time,
            "events": [[e.component, e.kind, e.t] for e in self.events],
            "completion_time": self.completion_time,
            "serve_location": self.serve_location,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RequestTrace":
        trace = cls(
            local_id=data["local_id"],
            req_id=data["req_id"],
            core_id=data["core_id"],
            path=data["path"],
            address=data["address"],
            issue_time=data["issue_time"],
            events=[HopEvent(c, k, t) for c, k, t in data.get("events", [])],
        )
        trace.completion_time = data.get("completion_time")
        trace.serve_location = data.get("serve_location")
        return trace


@dataclass
class TraceReport:
    """Aggregated output of one traced session."""

    sample_every: int
    requests_seen: int = 0
    requests_traced: int = 0
    duration: float = 0.0
    stage_histograms: Dict[str, LogHistogram] = field(default_factory=dict)
    # queue name -> [[epoch_end_cycle, mean_depth_over_epoch], ...]
    queue_occupancy: Dict[str, List[List[float]]] = field(default_factory=dict)
    # cache name -> {"hits": n, "misses": n}
    cache_lookups: Dict[str, Dict[str, int]] = field(default_factory=dict)
    traces: List[RequestTrace] = field(default_factory=list)
    # Fast-forwarded spans as [t_start, t_end] cycle pairs - dashboards
    # must render these as extrapolated, not measured (repro.sim.warp).
    warp_spans: List[List[float]] = field(default_factory=list)

    def stage_mean_residency(self) -> Dict[str, float]:
        return {
            stage: hist.mean
            for stage, hist in self.stage_histograms.items()
            if hist.count
        }

    def measured_queue_length(self, stage: str) -> float:
        """Little's-law L from ground truth: sampled rate x mean residency.

        Each traced interval stands for ``sample_every`` real requests,
        so the arrival rate is scaled back up before multiplying by the
        measured mean residency.
        """
        hist = self.stage_histograms.get(stage)
        if hist is None or hist.count == 0 or self.duration <= 0:
            return 0.0
        rate = hist.count * self.sample_every / self.duration
        return rate * hist.mean

    def to_dict(self) -> Dict:
        return {
            "sample_every": self.sample_every,
            "requests_seen": self.requests_seen,
            "requests_traced": self.requests_traced,
            "duration": self.duration,
            "stage_histograms": {
                stage: hist.to_dict()
                for stage, hist in self.stage_histograms.items()
            },
            "queue_occupancy": self.queue_occupancy,
            "cache_lookups": self.cache_lookups,
            "traces": [t.to_dict() for t in self.traces],
            "warp_spans": self.warp_spans,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceReport":
        return cls(
            sample_every=data["sample_every"],
            requests_seen=data.get("requests_seen", 0),
            requests_traced=data.get("requests_traced", 0),
            duration=data.get("duration", 0.0),
            stage_histograms={
                stage: LogHistogram.from_dict(h)
                for stage, h in data.get("stage_histograms", {}).items()
            },
            queue_occupancy={
                name: [[float(t), float(v)] for t, v in series]
                for name, series in data.get("queue_occupancy", {}).items()
            },
            cache_lookups=data.get("cache_lookups", {}),
            traces=[RequestTrace.from_dict(t) for t in data.get("traces", [])],
            warp_spans=[
                [float(a), float(b)] for a, b in data.get("warp_spans", [])
            ],
        )


class FlightRecorder:
    """Samples requests and accumulates their per-stage hop events."""

    def __init__(
        self,
        engine: Any,
        sample_every: int = 64,
        max_requests: int = 100_000,
    ) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        if max_requests <= 0:
            raise ValueError("max_requests must be positive")
        self.engine = engine
        self.sample_every = sample_every
        self.max_requests = max_requests
        self.requests_seen = 0
        self.traces: List[RequestTrace] = []
        self._watched_queues: List[Tuple[str, Any]] = []
        self._queue_marks: Dict[str, Tuple[float, float]] = {}
        self._queue_series: Dict[str, List[List[float]]] = {}
        self._cache_lookups: Dict[str, Dict[str, int]] = {}
        self._warp_spans: List[List[float]] = []
        self._start = engine.now

    # -- sampling --------------------------------------------------------

    def maybe_trace(self, request: Any) -> Optional[RequestTrace]:
        """Called once per request creation; 1-in-N get a trace attached."""
        self.requests_seen += 1
        if (self.requests_seen - 1) % self.sample_every != 0:
            return None
        if len(self.traces) >= self.max_requests:
            return None
        trace = RequestTrace(
            local_id=len(self.traces),
            req_id=request.req_id,
            core_id=request.core_id,
            path=request.path.family,
            address=request.address,
            issue_time=request.issue_time,
        )
        request.trace = trace
        self.traces.append(trace)
        return trace

    # -- hop events ------------------------------------------------------

    def hop(self, request: Any, component: str, kind: str) -> None:
        trace = getattr(request, "trace", None)
        if trace is None:
            return
        trace.events.append(HopEvent(component, kind, self.engine.now))

    def complete(self, request: Any) -> None:
        trace = getattr(request, "trace", None)
        if trace is None or trace.completion_time is not None:
            return
        trace.completion_time = request.completion_time
        if request.serve_location is not None:
            trace.serve_location = request.serve_location.value

    # -- queue-level events (MonitoredQueue observer protocol) -----------

    @staticmethod
    def _request_of(item: Any) -> Optional[Any]:
        """Dig the MemRequest out of a queue item.

        Queue items are either the request itself or ``(request, cb)``
        tuples; link queues carry ``(flit_bytes, cb)`` with no request.
        """
        if hasattr(item, "req_id"):
            return item
        if isinstance(item, tuple) and item and hasattr(item[0], "req_id"):
            return item[0]
        return None

    def on_queue_push(self, queue: Any, item: Any) -> None:
        request = self._request_of(item)
        if request is not None:
            self.hop(request, f"q:{queue.name}", ENQ)

    def on_queue_pop(self, queue: Any, item: Any) -> None:
        request = self._request_of(item)
        if request is not None:
            self.hop(request, f"q:{queue.name}", DEQ)

    # -- occupancy time series -------------------------------------------

    def watch_queue(self, name: str, stats: Any) -> None:
        """Register a queue's ``QueueStats`` for the occupancy series."""
        self._watched_queues.append((name, stats))
        self._queue_marks[name] = (self.engine.now, stats.occupancy_integral)
        self._queue_series[name] = []

    def epoch_mark(self, now: float) -> None:
        """Close one occupancy interval per watched queue."""
        for name, stats in self._watched_queues:
            stats.sync(now)
            last_t, last_integral = self._queue_marks[name]
            elapsed = now - last_t
            if elapsed <= 0:
                continue
            mean = (stats.occupancy_integral - last_integral) / elapsed
            self._queue_series[name].append([now, mean])
            self._queue_marks[name] = (now, stats.occupancy_integral)

    # -- warp events -----------------------------------------------------

    def warp_mark(self, t_start: float, t_end: float) -> None:
        """Record one fast-forwarded span (see :mod:`repro.sim.warp`)."""
        self._warp_spans.append([t_start, t_end])

    # -- cache events ----------------------------------------------------

    def on_cache_lookup(self, name: str, hit: bool) -> None:
        counts = self._cache_lookups.setdefault(name, {"hits": 0, "misses": 0})
        counts["hits" if hit else "misses"] += 1

    # -- report ----------------------------------------------------------

    def report(self) -> TraceReport:
        report = TraceReport(
            sample_every=self.sample_every,
            requests_seen=self.requests_seen,
            requests_traced=len(self.traces),
            duration=max(self.engine.now - self._start, 0.0),
            queue_occupancy={
                name: list(series)
                for name, series in self._queue_series.items()
                if series
            },
            cache_lookups={
                name: dict(counts)
                for name, counts in self._cache_lookups.items()
            },
            traces=list(self.traces),
            warp_spans=[list(span) for span in self._warp_spans],
        )
        for trace in self.traces:
            for component, t_enq, t_deq in trace.intervals():
                hist = report.stage_histograms.get(component)
                if hist is None:
                    hist = report.stage_histograms[component] = LogHistogram()
                hist.add(t_deq - t_enq)
        return report


def persist_trace(db: Any, report: TraceReport, timestamp: float = 0.0) -> None:
    """Store a trace report's aggregates in a :class:`TimeSeriesDB`.

    One ``TRACE_STAGES`` record per stage (count, mean/p50/p95/max
    residency, Little's-law queue length) and one ``TRACE_QUEUES`` record
    per (queue, epoch) carrying the mean depth over that epoch.
    """
    for stage, hist in sorted(report.stage_histograms.items()):
        db.insert(
            "TRACE_STAGES",
            timestamp,
            tags={"stage": stage},
            fields={
                "count": float(hist.count),
                "mean_residency": hist.mean,
                "p50": hist.percentile(50.0),
                "p95": hist.percentile(95.0),
                "max": hist.max,
                "queue_length": report.measured_queue_length(stage),
            },
        )
    for name, series in sorted(report.queue_occupancy.items()):
        for t, mean in series:
            db.insert(
                "TRACE_QUEUES",
                t,
                tags={"queue": name},
                fields={"mean_depth": mean},
            )
