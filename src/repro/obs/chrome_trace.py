"""Chrome ``trace_event`` exporter.

Emits the JSON object format Perfetto and ``chrome://tracing`` both load:
one complete ("X") event per matched stage interval, one per whole
request, and metadata ("M") events naming each core's track.  Rows are
keyed pid=core, tid=trace-local request id, so a core's sampled requests
stack as parallel tracks and each request reads left-to-right through
LFB -> L2 -> LLC -> IMC / FlexBus+MC -> CXL_MC.

Timestamps are simulated CPU cycles exported 1:1 into the format's
microsecond field; only relative spacing matters for inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .recorder import TraceReport

_REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


def to_chrome_trace(report: TraceReport) -> Dict:
    """Convert a :class:`TraceReport` into a Chrome trace document."""
    events: List[Dict] = []
    seen_cores = set()
    for trace in report.traces:
        if trace.core_id not in seen_cores:
            seen_cores.add(trace.core_id)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0.0,
                    "pid": trace.core_id,
                    "tid": 0,
                    "args": {"name": f"core{trace.core_id}"},
                }
            )
        end = trace.completion_time
        if end is not None and end >= trace.issue_time:
            events.append(
                {
                    "name": f"{trace.path} req {trace.req_id:#x}",
                    "cat": trace.path,
                    "ph": "X",
                    "ts": trace.issue_time,
                    "dur": end - trace.issue_time,
                    "pid": trace.core_id,
                    "tid": trace.local_id,
                    "args": {
                        "address": f"{trace.address:#x}",
                        "serve_location": trace.serve_location or "?",
                    },
                }
            )
        for component, t_enq, t_deq in trace.intervals():
            events.append(
                {
                    "name": component,
                    "cat": trace.path,
                    "ph": "X",
                    "ts": t_enq,
                    "dur": t_deq - t_enq,
                    "pid": trace.core_id,
                    "tid": trace.local_id,
                    "args": {"req_id": trace.req_id},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "sample_every": report.sample_every,
            "requests_seen": report.requests_seen,
            "requests_traced": report.requests_traced,
            "duration_cycles": report.duration,
        },
    }


def validate_chrome_trace(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a well-formed trace.

    Checks the envelope, per-event required keys/types, non-negative
    durations, and - via each (pid, tid) track - that complete events do
    not run backwards in time.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document missing traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        missing = _REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ValueError(f"event {i} missing keys: {sorted(missing)}")
        if event["ph"] not in ("X", "M", "B", "E", "i"):
            raise ValueError(f"event {i} has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"event {i} has bad ts {event['ts']!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} has bad dur {dur!r}")


def export_chrome_trace(
    report: TraceReport, path: Union[str, Path]
) -> Dict:
    """Write the Chrome trace JSON for ``report`` to ``path``."""
    document = to_chrome_trace(report)
    validate_chrome_trace(document)
    Path(path).write_text(json.dumps(document))
    return document
