"""Log-bucketed latency histogram.

Per-stage residencies span four orders of magnitude (an L2 tag probe is
~10 cycles, a queued CXL media access can be >10k), so fixed-width bins
either blur the short stages or truncate the long ones.  A power-of-two
bucketed histogram keeps constant relative resolution across the whole
range at a fixed, tiny memory cost - the same trick HdrHistogram and the
kernel's BPF ``log2`` histograms use.
"""

from __future__ import annotations

import math
from typing import Dict, List


class LogHistogram:
    """Histogram with power-of-two buckets over non-negative values.

    Bucket ``i`` (for ``i >= 1``) covers ``[2**(i-1), 2**i)``; bucket 0
    holds values below 1.0 (including zero).  Exact sum/min/max are kept
    alongside the buckets so ``mean`` does not suffer bucketing error;
    percentiles interpolate within the winning bucket.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float = math.inf
        self.max: float = 0.0
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value < 1.0:
            return 0
        return int(math.log2(value)) + 1

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency sample: {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = self._bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                lo = 0.0 if bucket == 0 else float(2 ** (bucket - 1))
                hi = 1.0 if bucket == 0 else float(2 ** bucket)
                # Clamp the interpolated estimate into the observed range.
                mid = (lo + hi) / 2.0
                return min(max(mid, self.min), self.max)
        return self.max

    def merge(self, other: "LogHistogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count

    def buckets(self) -> List[List[float]]:
        """``[bucket_low, count]`` rows, low-to-high (for plotting)."""
        rows = []
        for bucket in sorted(self._buckets):
            low = 0.0 if bucket == 0 else float(2 ** (bucket - 1))
            rows.append([low, float(self._buckets[bucket])])
        return rows

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
            "buckets": [[b, c] for b, c in sorted(self._buckets.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LogHistogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min = math.inf if data.get("min") is None else float(data["min"])
        hist.max = float(data.get("max", 0.0))
        hist._buckets = {int(b): int(c) for b, c in data.get("buckets", [])}
        return hist
