"""Observability layer: request-path flight recorder and its consumers.

The simulator threads every :class:`~repro.sim.request.MemRequest`
through the Clos stages (core -> SB/LFB -> L1D -> L2 -> CHA/LLC -> mesh
-> IMC, or FlexBus -> CXL MC).  The :class:`FlightRecorder` samples
1-in-N of those requests and records a hop event (component, enq/deq
timestamp) at every stage, giving the repo the ground truth that real
hardware could not give the paper's authors.

Three consumers sit on top of the recorder:

* per-stage log-bucketed latency histograms and queue-occupancy time
  series (persisted through :mod:`repro.tsdb` via :func:`persist_trace`);
* a Chrome ``trace_event`` JSON exporter (:mod:`repro.obs.chrome_trace`)
  so any traced run opens in Perfetto;
* a ground-truth validation report (:mod:`repro.obs.validation`) that
  compares measured per-stage residency against PFAnalyzer's
  Little's-law queue estimates for the same run.

The package deliberately imports nothing from ``repro.sim`` or
``repro.core`` - components hand it duck-typed objects - so it can sit
below both without import cycles.
"""

from .histogram import LogHistogram
from .recorder import (
    CANONICAL_STAGES,
    FlightRecorder,
    HopEvent,
    RequestTrace,
    TraceReport,
    persist_trace,
)
from .chrome_trace import (
    export_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from .validation import StageComparison, ValidationReport, validate_against_analyzer

__all__ = [
    "LogHistogram",
    "CANONICAL_STAGES",
    "FlightRecorder",
    "HopEvent",
    "RequestTrace",
    "TraceReport",
    "persist_trace",
    "to_chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "StageComparison",
    "ValidationReport",
    "validate_against_analyzer",
]
