"""Unified execution options for the profiling entry points.

:func:`repro.api.run`, :func:`repro.api.run_many` and
:func:`repro.api.fleet_run_many` grew their execution knobs (caching,
event budgets, timeouts, retries, tracing) one keyword at a time, with
per-verb spellings and defaults.  :class:`RunOptions` is the one carrier
for all of them:

    from repro import RunOptions, api

    opts = RunOptions(cache=False, max_events=2_000_000, trace=True)
    result = api.run(spec, options=opts)
    campaign = api.run_many(specs, options=opts)

Every field defaults to :data:`UNSET` ("not given"), so one
``RunOptions`` can be reused across verbs while each verb keeps its own
historical defaults for the fields the caller left alone (``run`` caches
off / no retries; ``run_many`` caches on / one retry).  The legacy
keyword arguments still work; passing a keyword *and* the same field on
``options`` is a conflict and raises ``ValueError``, while mixing
``options`` with other legacy keywords merges them and emits a
``DeprecationWarning`` nudging callers to fold everything into
``options``.

``trace`` accepts ``True`` (default :class:`~repro.core.spec.TraceSpec`),
an ``int`` (sample 1-in-N requests), or a full ``TraceSpec``; it is
applied to the profile spec(s) via ``dataclasses.replace`` so the specs
passed in are never mutated.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .core.spec import ProfileSpec, TraceSpec

__all__ = ["RunOptions", "UNSET", "coerce_trace"]


class _UnsetType:
    """Sentinel distinguishing "not given" from an explicit None/False."""

    _instance: Optional["_UnsetType"] = None

    def __new__(cls) -> "_UnsetType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: Field default meaning "the caller did not set this".
UNSET: Any = _UnsetType()


@dataclass(frozen=True)
class RunOptions:
    """Execution options shared by the ``api`` verbs.

    Fields left :data:`UNSET` fall back to the per-verb default, so the
    same instance composes with every entry point:

    * ``cache`` - ``None``/``False`` (off), ``True`` (default store), a
      path, or a :class:`~repro.exec.cache.ResultCache`.
    * ``max_events`` - simulation event budget per job; exceeding it is
      a retryable failure.
    * ``timeout`` - per-job wall-clock limit in seconds.
    * ``retries`` - additional attempts for failed jobs.
    * ``trace`` - flight-recorder config: ``True``, a sample-1-in-N
      ``int``, or a :class:`~repro.core.spec.TraceSpec`.
    * ``fabric`` - switched multi-host CXL fabric between root ports and
      devices: a preset name from
      :data:`~repro.sim.fabric.FABRIC_PRESETS` or a full
      :class:`~repro.sim.fabric.FabricSpec`; ``None`` = direct attach.
    * ``shared_cache`` - a second-tier store directory (or
      :class:`~repro.exec.cache.ResultCache`) the local cache pulls
      misses from and publishes completions to
      (:class:`~repro.durable.PullThroughCache`); requires ``cache``.
    * ``live`` - streaming profiling: ``True`` (default
      :class:`~repro.live.LiveSpec`) or a full ``LiveSpec``; the run
      ingests into a retention-tiered TSDB and publishes per-epoch
      digests while in flight (``run`` only - campaign verbs reject it;
      submit live jobs through serve to stream ``/v1/live``).
    * ``fidelity`` - ``"exact"`` (default: every epoch fully simulated)
      or ``"adaptive"`` (steady-state epochs fast-forwarded and
      extrapolated, see :mod:`repro.sim.warp`); a
      :class:`~repro.sim.warp.WarpSpec` tunes the detector.  Non-exact
      fidelity participates in the cache key - warped counters are
      extrapolations, never interchangeable with exact results.
    """

    cache: Any = UNSET
    max_events: Any = UNSET
    timeout: Any = UNSET
    retries: Any = UNSET
    trace: Any = UNSET
    fabric: Any = UNSET
    shared_cache: Any = UNSET
    live: Any = UNSET
    fidelity: Any = UNSET

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)


_FIELDS: Tuple[str, ...] = tuple(f.name for f in dataclasses.fields(RunOptions))


def coerce_trace(trace: Any) -> Optional[TraceSpec]:
    """Normalise the ``trace`` option into an ``Optional[TraceSpec]``."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return TraceSpec()
    if isinstance(trace, TraceSpec):
        return trace
    if isinstance(trace, int):
        return TraceSpec(sample_every=trace)
    raise ValueError(
        f"trace must be None, bool, int (sample 1-in-N) or TraceSpec, "
        f"got {trace!r}"
    )


def _validate(field: str, value: Any) -> Any:
    if value is None or value is UNSET:
        return value
    if field == "max_events":
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ValueError(f"max_events must be a positive int, got {value!r}")
    elif field == "timeout":
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
            raise ValueError(f"timeout must be a positive number, got {value!r}")
    elif field == "retries":
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"retries must be a non-negative int, got {value!r}")
    elif field == "trace":
        value = coerce_trace(value)
    elif field == "fabric":
        from .sim.fabric import FABRIC_PRESETS, FabricSpec

        if isinstance(value, str):
            if value not in FABRIC_PRESETS:
                raise ValueError(
                    f"unknown fabric preset {value!r}; choose from "
                    f"{FABRIC_PRESETS}"
                )
        elif not isinstance(value, FabricSpec):
            raise ValueError(
                f"fabric must be None, a preset name or a FabricSpec, "
                f"got {value!r}"
            )
    elif field == "shared_cache":
        from pathlib import Path

        from .exec.cache import ResultCache

        if not isinstance(value, (str, Path, ResultCache)):
            raise ValueError(
                f"shared_cache must be None, a path or a ResultCache, "
                f"got {value!r}"
            )
    elif field == "live":
        from .live.spec import coerce_live

        value = coerce_live(value)
    elif field == "fidelity":
        from .sim.warp import coerce_fidelity

        coerce_fidelity(value)  # validates; the raw value travels on
    return value


def resolve_options(
    options: Optional[RunOptions],
    legacy: Dict[str, Any],
    *,
    api: str,
    defaults: Dict[str, Any],
) -> Dict[str, Any]:
    """Merge ``options`` with legacy keyword arguments into one dict.

    ``legacy`` maps field name to the value the verb's keyword received
    (:data:`UNSET` when the caller left it alone); ``defaults`` holds the
    verb's historical defaults and also defines which fields the verb
    supports.  A field set both ways is ambiguous -> ``ValueError``;
    legacy keywords alongside ``options`` merge with a
    ``DeprecationWarning``.  Fields a verb does not support (absent from
    ``defaults``) raise when explicitly set.
    """
    if options is not None and not isinstance(options, RunOptions):
        raise TypeError(f"options must be a RunOptions, got {type(options).__name__}")
    mixed = []
    resolved: Dict[str, Any] = {}
    for field in _FIELDS:
        from_opts = getattr(options, field) if options is not None else UNSET
        from_kwarg = legacy.get(field, UNSET)
        if from_opts is not UNSET and from_kwarg is not UNSET:
            raise ValueError(
                f"{api}: '{field}' passed both via options= and as a "
                f"keyword argument; set it in one place"
            )
        if from_kwarg is not UNSET:
            mixed.append(field)
        value = from_kwarg if from_kwarg is not UNSET else from_opts
        if value is not UNSET and field not in defaults:
            raise ValueError(f"{api}: option '{field}' is not supported here")
        resolved[field] = _validate(field, value)
    if options is not None and mixed:
        warnings.warn(
            f"{api}: mixing options= with keyword argument(s) "
            f"{', '.join(sorted(mixed))}; fold them into RunOptions",
            DeprecationWarning,
            stacklevel=3,
        )
    for field, default in defaults.items():
        if resolved.get(field) is UNSET:
            resolved[field] = default
    return resolved


def apply_trace(spec: ProfileSpec, trace: Optional[TraceSpec]) -> ProfileSpec:
    """A spec carrying ``trace``; the input spec is never mutated."""
    if trace is None or spec.trace == trace:
        return spec
    return dataclasses.replace(spec, trace=trace)
