"""Compact, scripted versions of the paper's seven case studies.

Each function runs a down-sized version of one section 5 case on the
simulated machine and prints the same story the paper tells.  They power
``pathfinder case --id N`` and serve as executable documentation; the
full-size versions with shape assertions live in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.fabric import apply_fabric, preset_fabric
from ..sim.machine import Machine
from ..sim.topology import spr_config
from ..tiering import TPP, TPPConfig
from ..tsdb import pearsonr
from ..workloads import (
    HotColdAccess,
    MBW,
    SequentialStream,
    ZipfAccess,
    build_app,
)
from .profiler import PathFinder, ProfileResult
from .report import render_path_map, render_stall_breakdown
from .spec import AppSpec, ProfileSpec


def _profile(machine: Machine, apps: List[AppSpec], epoch: float = 25_000.0,
             max_epochs: int = 60) -> ProfileResult:
    profiler = PathFinder(
        machine, ProfileSpec(apps=apps, epoch_cycles=epoch,
                             max_epochs=max_epochs)
    )
    result = profiler.run()
    result.profiler = profiler  # convenient back-reference for the cases
    return result


def case1_path_classification(ops: int = 8000) -> None:
    """Case 1 (section 5.2): PFBuilder path maps for fotonik3d on CXL."""
    machine = Machine(spr_config(num_cores=2))
    app = AppSpec(
        workload=build_app("649.fotonik3d_s", num_ops=ops),
        core=0, membind=machine.cxl_node.node_id,
    )
    result = _profile(machine, [app])
    print(render_path_map(result.final.path_map, core_id=0))
    share = result.final.path_map.family_share_at_cxl()
    print(f"\nHWPF share of CXL hits: {share['HWPF']*100:.1f}% "
          "(paper: 89.1%) - prefetch dominates the CXL DIMM traffic.")


def case2_stall_breakdown(ops: int = 8000) -> None:
    """Case 2 (section 5.3): PFEstimator breakdown for fft on CXL."""
    machine = Machine(spr_config(num_cores=2))
    app = AppSpec(
        workload=build_app("fft", num_ops=ops),
        core=0, membind=machine.cxl_node.node_id,
    )
    result = _profile(machine, [app])
    print(render_stall_breakdown(result.final.stalls))
    shares = result.final.stalls.shares("DRd")
    uncore = shares["FlexBus+MC"] + shares["CXL_DIMM"]
    print(f"\nuncore share of DRd stall: {uncore*100:.1f}% "
          "(paper fft: 83.0%) - stalls concentrate beyond the LLC.")


def case3_interference(ops: int = 5000) -> None:
    """Case 3 (section 5.4): local vs CXL mFlow on one core."""
    from ..workloads import InterleavedFlows

    for load in (0.2, 1.0):
        machine = Machine(spr_config(num_cores=2))
        local = SequentialStream(name="l", num_ops=ops,
                                 working_set_bytes=1 << 21, gap=3.0, seed=3)
        cxl = SequentialStream(name="c", num_ops=max(1, int(ops * load)),
                               working_set_bytes=1 << 21, gap=3.0, seed=17)
        mixed = InterleavedFlows(local, cxl, secondary_fraction=load / 2.0)
        mixed.primary.install(machine, machine.local_node.node_id)
        mixed.secondary.install(machine, machine.cxl_node.node_id)
        app = AppSpec(workload=mixed, core=0,
                      preinstalled=[machine.local_node.node_id,
                                    machine.cxl_node.node_id])
        result = _profile(machine, [app])
        total = sum(
            sum(e.stalls.aggregate("DRd").values()) for e in result.epochs
        )
        print(f"CXL load {int(load*100):3d}%: CXL-induced DRd stall "
              f"{total:10.0f} cycles")
    print("-> in-core stall grows with the CXL share while the uncore "
          "stays uncongested (one core cannot saturate the FlexBus).")


def case4_contention(ops: int = 3000) -> None:
    """Case 4 (section 5.5): neighbour CXL flows crush a YCSB flow."""
    for neighbours in (0, 3):
        machine = Machine(spr_config(num_cores=4))
        ycsb = ZipfAccess(name="ycsb", num_ops=ops,
                          working_set_bytes=1 << 22, gap=2.0, seed=5)
        apps = [AppSpec(workload=ycsb, core=0,
                        membind=machine.cxl_node.node_id)]
        for i in range(neighbours):
            stream = SequentialStream(
                name=f"n{i}", num_ops=4 * ops, working_set_bytes=1 << 22,
                gap=0.5, seed=40 + i,
            )
            apps.append(AppSpec(workload=stream, core=1 + i,
                                membind=machine.cxl_node.node_id))
        result = _profile(machine, apps)
        flow = next(f for f in result.flows if f.pid == apps[0].pid)
        tput = ops / (flow.ended_at or result.total_cycles) * 1000
        culprit = result.final.queues.culprit()
        where = f"{culprit.path}@{culprit.component}" if culprit else "-"
        print(f"{neighbours} neighbours: YCSB {tput:6.1f} ops/kcyc, "
              f"culprit {where}")
    print("-> contention manifests first at the shared FlexBus+MC.")


def case5_bandwidth(ops: int = 6000) -> None:
    """Case 5 (section 5.6): bandwidth partition among MBW tenants."""
    machine = Machine(spr_config(num_cores=4))
    apps, tenants = [], []
    for i, (gap, apl) in enumerate(((6.0, 8), (4.0, 4), (2.0, 2), (0.5, 1))):
        tenant = MBW(name=f"mbw{i}", num_ops=ops, working_set_bytes=1 << 22,
                     rate_gap=gap, accesses_per_line=apl, seed=60 + i)
        tenants.append(tenant)
        apps.append(AppSpec(workload=tenant, core=i,
                            membind=machine.cxl_node.node_id))
    result = _profile(machine, apps, max_epochs=80)
    flows = {f.core_id: f for f in result.flows}
    freqs, bws = [], []
    for i, tenant in enumerate(tenants):
        requests = sum(
            v for e in result.epochs
            for (scope, event), v in e.snapshot.delta.items()
            if scope == f"core{i}" and event.endswith(".cxl_dram")
        )
        lifetime = flows[i].ended_at or result.total_cycles
        freqs.append(requests / lifetime)
        bws.append(tenant.num_ops * 64.0 / tenant.accesses_per_line / lifetime)
        print(f"MBW-{i+1}: req freq {freqs[-1]*1000:6.2f}/kcyc, "
              f"bandwidth {bws[-1]:5.2f} B/cyc")
    print(f"Pearson(freq, bandwidth) = {pearsonr(freqs, bws):.3f} "
          "(paper: 0.998)")


def case6_locality(ops: int = 20000) -> None:
    """Case 6 (section 5.7): a CXL neighbour disturbs a victim's LLC."""
    machine = Machine(
        spr_config(num_cores=3, l2_size=512 * 1024, llc_size=4 << 20)
    )
    victim = ZipfAccess(name="victim", num_ops=ops,
                        working_set_bytes=4 << 20, theta=0.6, gap=3.0, seed=9)
    apps = [
        AppSpec(workload=victim, core=0, membind=machine.local_node.node_id),
        AppSpec(
            workload=build_app("554.roms_r", num_ops=ops // 2, seed=13),
            core=1, membind=machine.cxl_node.node_id, start_at=60_000.0,
        ),
    ]
    result = _profile(machine, apps, epoch=10_000.0, max_epochs=80)
    profiler = result.profiler
    before, after = profiler.materializer.locality_shift(
        apps[0].pid, 60_000.0, dst="LLC"
    )
    print(f"victim LLC hits/epoch: before launch {before:.1f}, "
          f"after {after:.1f}")
    report = profiler.materializer.locality(apps[0].pid, component="LLC")
    print(f"stable phases detected: {len(report.windows)}")


def case7_tpp(ops: int = 12000) -> None:
    """Case 7 (section 5.8): TPP guided by page temperature."""
    for enabled in (False, True):
        machine = Machine(spr_config(num_cores=2))
        gups = HotColdAccess(name="gups", num_ops=ops,
                             working_set_bytes=3 << 20, hot_probability=0.9,
                             read_ratio=0.5, gap=3.0, seed=21)
        tpp = TPP(machine, TPPConfig(epoch_cycles=10_000.0,
                                     promote_per_epoch=128,
                                     hot_threshold=1.5), enabled=enabled)
        app = AppSpec(workload=gups, core=0,
                      interleave=(machine.local_node.node_id,
                                  machine.cxl_node.node_id, 0.5))
        result = _profile(machine, [app], max_epochs=120)
        flow_end = max((f.ended_at or result.total_cycles)
                       for f in result.flows)
        print(f"TPP {'on ' if enabled else 'off'}: {flow_end:9.0f} cycles, "
              f"{tpp.stats.promotions} promotions")
    print("-> promotion of the hot set collapses CXL traffic (paper: 3.0x).")


def case8_fabric(ops: int = 4000) -> None:
    """Case 8 (beyond the paper): fabric-congested vs device-bound pools.

    The same workload runs twice over a 2-host pooled fabric: once behind
    an undersized switch port (congestion builds in the fabric) and once
    behind a healthy switch but a slow CXL DIMM (stalls stay device-side).
    The analyzer's fabric diagnosis separates the two - a distinction no
    single-host profile can make.
    """
    from ..sim.dram import DRAMTiming
    from .report import render_fabric

    scenarios = (
        ("fabric-congested", apply_fabric(
            spr_config(num_cores=2),
            preset_fabric("undersized", inject_ops=20_000))),
        ("device-bound", apply_fabric(
            spr_config(
                num_cores=2,
                cxl_dram=DRAMTiming(
                    access_latency=1400.0, bytes_per_cycle=2.0, channels=1
                ),
                cxl_mc_queue_depth=8,
            ),
            # Few injected ops: the pool stays healthy, the DIMM does not.
            preset_fabric("pooled", inject_ops=2_000),
        )),
    )
    for label, config in scenarios:
        machine = Machine(config)
        stream = SequentialStream(name="s", num_ops=ops,
                                  working_set_bytes=1 << 20, gap=1.0, seed=7)
        app = AppSpec(workload=stream, core=0,
                      membind=machine.cxl_node.node_id)
        result = _profile(machine, [app])
        diagnosis = result.final.queues.fabric_diagnosis()
        print(f"--- scenario: {label} ---")
        print(render_fabric(result.final.queues))
        assert diagnosis is not None
        print(f"expected {label}, diagnosed {diagnosis.verdict}\n")
    print("-> the switch-port counters separate fabric congestion from "
          "device-side queueing on identical workloads.")


CASES: Dict[int, Callable[[], None]] = {
    1: case1_path_classification,
    2: case2_stall_breakdown,
    3: case3_interference,
    4: case4_contention,
    5: case5_bandwidth,
    6: case6_locality,
    7: case7_tpp,
    8: case8_fabric,
}


def run_case(case_id: int) -> None:
    if case_id not in CASES:
        raise KeyError(f"unknown case {case_id}; choose 1-8")
    fn = CASES[case_id]
    print(f"### Case {case_id}: {fn.__doc__.splitlines()[0]}\n")
    fn()
