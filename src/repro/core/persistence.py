"""Session persistence: export/import profiling digests as JSON.

The paper layers a time-series database over the profiler so sessions can
be analysed offline and across runs.  This module provides the file
format: a compact JSON digest of a :class:`ProfileResult` - per-epoch
counter deltas (sparse), flow metadata and session parameters - plus a
loader that reconstitutes snapshots so every technique (PFBuilder,
PFEstimator, PFAnalyzer, PFMaterializer) can re-run on saved data.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .mflow import MFlow
from .profiler import ProfileResult
from .snapshot import Snapshot
from .spec import AppSpec, ProfileSpec, ProfilingMode, ReportSpec, TraceSpec

FORMAT_VERSION = 1

#: Version of the declarative ProfileSpec / MachineConfig wire format
#: (what ``repro.serve`` accepts over HTTP).
SPEC_FORMAT_VERSION = 1


def _flow_to_dict(flow: MFlow) -> Dict:
    return {
        "flow_id": flow.flow_id,
        "pid": flow.pid,
        "core_id": flow.core_id,
        "node_id": flow.node_id,
        "node_kind": flow.node_kind,
        "app_name": flow.app_name,
        "created_at": flow.created_at,
        "ended_at": flow.ended_at,
        "snapshot_ids": list(flow.snapshot_ids),
    }


def _flow_from_dict(data: Dict) -> MFlow:
    flow = MFlow(
        pid=data["pid"],
        core_id=data["core_id"],
        node_id=data["node_id"],
        node_kind=data["node_kind"],
        app_name=data.get("app_name", ""),
        created_at=data.get("created_at", 0.0),
    )
    flow.flow_id = data["flow_id"]
    flow.ended_at = data.get("ended_at")
    flow.snapshot_ids = list(data.get("snapshot_ids", []))
    return flow


def result_to_document(result: ProfileResult) -> Dict:
    """Digest a :class:`ProfileResult` into a JSON-able document.

    Aggregated-mode sessions keep no epoch list but do carry a final
    cumulative epoch; it is stored with ``aggregated_only`` set so
    :func:`result_from_document` can round-trip either mode.
    """
    epoch_results = list(result.epochs)
    aggregated_only = False
    if not epoch_results and result.final is not None:
        epoch_results = [result.final]
        aggregated_only = True
    flows_by_id = {}
    epochs = []
    for epoch in epoch_results:
        snapshot = epoch.snapshot
        delta = [
            [scope, event, value]
            for (scope, event), value in snapshot.delta.items()
            if value
        ]
        entry = {
            "epoch": epoch.epoch,
            "snapshot_id": snapshot.snapshot_id,
            "t_start": snapshot.t_start,
            "t_end": snapshot.t_end,
            "flow_ids": [f.flow_id for f in snapshot.flows],
            "delta": delta,
        }
        if snapshot.warped:
            # Only present when true: exact sessions round-trip
            # byte-identically to the pre-warp format.
            entry["warped"] = True
        epochs.append(entry)
        for flow in snapshot.flows:
            flows_by_id[flow.flow_id] = flow
    for flow in result.flows:
        flows_by_id[flow.flow_id] = flow
    document = {
        "format_version": FORMAT_VERSION,
        "aggregated_only": aggregated_only,
        "total_cycles": result.total_cycles,
        "flows": [_flow_to_dict(f) for f in flows_by_id.values()],
        "epochs": epochs,
    }
    if result.trace is not None:
        document["trace"] = result.trace.to_dict()
    if result.warp is not None:
        document["warp"] = result.warp.to_dict()
    return document


def save_session(result: ProfileResult, path: Union[str, Path]) -> None:
    """Write a profiling session digest to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(result_to_document(result)))


def session_from_document(document: Dict) -> "LoadedSession":
    """Reconstitute a digest document into analysis-ready snapshots."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported session format version: {version}")
    flows = {
        data["flow_id"]: _flow_from_dict(data)
        for data in document.get("flows", [])
    }
    snapshots: List[Snapshot] = []
    for epoch in document["epochs"]:
        delta = {
            (scope, event): value for scope, event, value in epoch["delta"]
        }
        snapshot = Snapshot(
            t_start=epoch["t_start"],
            t_end=epoch["t_end"],
            delta=delta,
            flows=[flows[fid] for fid in epoch["flow_ids"] if fid in flows],
            warped=bool(epoch.get("warped", False)),
        )
        snapshot.snapshot_id = epoch["snapshot_id"]
        snapshots.append(snapshot)
    return LoadedSession(
        snapshots=snapshots,
        flows=list(flows.values()),
        total_cycles=document.get("total_cycles", 0.0),
    )


def load_session(path: Union[str, Path]) -> "LoadedSession":
    """Read a digest back; snapshots are fully reusable by the analyses."""
    return session_from_document(json.loads(Path(path).read_text()))


def result_from_document(document: Dict) -> ProfileResult:
    """Rebuild a full :class:`ProfileResult` from a digest document.

    Counter deltas, flows and total cycles are exactly the stored values;
    the derived per-epoch analyses (path map, stall breakdown, queue
    report) are recomputed by re-running the techniques on the stored
    snapshots, which is what makes content-addressed cache hits
    indistinguishable from fresh runs.
    """
    from .analyzer import PFAnalyzer
    from .builder import PFBuilder
    from .estimator import PFEstimator
    from .profiler import EpochResult

    session = session_from_document(document)
    builder, estimator, analyzer = PFBuilder(), PFEstimator(), PFAnalyzer()
    epoch_numbers = [e.get("epoch", i + 1)
                     for i, e in enumerate(document["epochs"])]
    epochs = []
    for number, snapshot in zip(epoch_numbers, session.snapshots):
        epochs.append(
            EpochResult(
                epoch=number,
                snapshot=snapshot,
                path_map=builder.build(snapshot),
                stalls=estimator.breakdown(snapshot),
                queues=analyzer.analyze(snapshot),
            )
        )
    result = ProfileResult(
        epochs=[] if document.get("aggregated_only") else epochs,
        final=epochs[-1] if epochs else None,
        flows=session.flows,
        total_cycles=session.total_cycles,
    )
    if document.get("trace") is not None:
        from ..obs import TraceReport

        result.trace = TraceReport.from_dict(document["trace"])
    if document.get("warp") is not None:
        from ..sim.warp import WarpReport

        result.warp = WarpReport.from_dict(document["warp"])
    return result


# -- declarative specs (the repro.serve wire format) ------------------------


def spec_to_document(spec: ProfileSpec) -> Dict:
    """Digest a :class:`ProfileSpec` into a JSON-able document.

    The inverse of :func:`spec_from_document`; workloads are captured
    declaratively via :mod:`repro.workloads.serde`, so the round trip
    preserves the content-addressed job key (only per-process identity -
    pids, page bases, RNG state - differs).
    """
    from ..workloads.serde import workload_to_document

    return {
        "spec_format": SPEC_FORMAT_VERSION,
        "apps": [
            {
                "workload": workload_to_document(app.workload),
                "core": app.core,
                "membind": app.membind,
                "interleave": list(app.interleave) if app.interleave else None,
                "preinstalled": (
                    list(app.preinstalled)
                    if app.preinstalled is not None else None
                ),
                "start_at": app.start_at,
            }
            for app in spec.apps
        ],
        "epoch_cycles": spec.epoch_cycles,
        "mode": spec.mode.value,
        "max_epochs": spec.max_epochs,
        "report": dataclasses.asdict(spec.report),
        "trace": dataclasses.asdict(spec.trace) if spec.trace else None,
    }


def spec_from_document(document: Dict) -> ProfileSpec:
    """Rebuild a :class:`ProfileSpec` from its declarative document."""
    from ..workloads.serde import workload_from_document

    version = document.get("spec_format", SPEC_FORMAT_VERSION)
    if version != SPEC_FORMAT_VERSION:
        raise ValueError(f"unsupported spec format version: {version}")
    apps = []
    for app in document["apps"]:
        interleave = app.get("interleave")
        preinstalled = app.get("preinstalled")
        apps.append(
            AppSpec(
                workload=workload_from_document(app["workload"]),
                core=int(app["core"]),
                membind=app.get("membind"),
                interleave=tuple(interleave) if interleave else None,
                preinstalled=(
                    list(preinstalled) if preinstalled is not None else None
                ),
                start_at=float(app.get("start_at", 0.0)),
            )
        )
    report = document.get("report")
    trace = document.get("trace")
    return ProfileSpec(
        apps=apps,
        epoch_cycles=float(document.get("epoch_cycles", 50_000.0)),
        mode=ProfilingMode(document.get("mode", "continuous")),
        max_epochs=int(document.get("max_epochs", 10_000)),
        report=ReportSpec(**report) if report else ReportSpec(),
        trace=TraceSpec(**trace) if trace else None,
    )


def config_to_document(config) -> Dict:
    """JSON-able form of a :class:`~repro.sim.topology.MachineConfig`."""
    return dataclasses.asdict(config)


def config_from_document(document: Optional[Dict]):
    """Rebuild a MachineConfig; ``None`` passes through (server default)."""
    from ..sim.dram import DRAMTiming
    from ..sim.topology import MachineConfig

    if document is None:
        return None
    fields = {f.name for f in dataclasses.fields(MachineConfig)}
    unknown = set(document) - fields
    if unknown:
        raise ValueError(
            f"unknown machine config fields: {sorted(unknown)}"
        )
    data = dict(document)
    for timing in ("local_dram", "cxl_dram"):
        if isinstance(data.get(timing), dict):
            data[timing] = DRAMTiming(**data[timing])
    if isinstance(data.get("fabric"), dict):
        from ..sim.fabric import FabricSpec

        data["fabric"] = FabricSpec.from_document(data["fabric"])
    return MachineConfig(**data)


class LoadedSession:
    """A reconstituted session: snapshots + flows, analysis-ready."""

    def __init__(
        self, snapshots: List[Snapshot], flows: List[MFlow], total_cycles: float
    ) -> None:
        self.snapshots = snapshots
        self.flows = flows
        self.total_cycles = total_cycles

    def reanalyze(self):
        """Re-run the four techniques offline; returns EpochResult-like
        tuples of (snapshot, path_map, stalls, queues)."""
        from .analyzer import PFAnalyzer
        from .builder import PFBuilder
        from .estimator import PFEstimator

        builder, estimator, analyzer = PFBuilder(), PFEstimator(), PFAnalyzer()
        out = []
        for snapshot in self.snapshots:
            out.append(
                (
                    snapshot,
                    builder.build(snapshot),
                    estimator.breakdown(snapshot),
                    analyzer.analyze(snapshot),
                )
            )
        return out
