"""PFAnalyzer: culprit-path detection at bottlenecked hardware (section 4.5).

Each vertex of the Clos graph is modelled as an FCFS queue.  The PMU gives
two things per component: hit/miss frequencies (arrival rates) and data
response times (delays), so Little's law ``L = lambda x W`` estimates the
average queue length a path sustains at each on-path component:

* L1D, L2:  ``L = lambda_hit x W_hit + lambda_miss x W_tag`` - a miss
  only occupies the level for the tag lookup before being forwarded.
* LLC:      ``L = lambda_hit x W_hit + lambda_miss x W_miss`` where
  ``W_miss`` is the observed TOR residency of missing requests (they park
  in the TOR until completion).
* LFB, DIMM: ``L = lambda_hit x W_hit`` - terminal stages that never
  forward (the memory holds the full data set).

Delays ``W`` are taken from the per-core load-latency samples as the
*increment* over the previous hop (the core-observed latency difference,
exactly the delay-variation attribution of the networking literature the
paper cites).  The (component, path) pair with the largest estimated queue
is the snapshot's culprit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pmu.views import CHAPMUView, CXLDeviceView, CorePMUView, M2PCIeView, core_ids, cxl_node_ids
from .snapshot import Snapshot

ANALYZER_COMPONENTS = ("L1D", "LFB", "L2", "LLC", "FlexBus+MC", "CXLFabric")
ANALYZED_PATHS = ("DRd", "RFO", "HWPF")

# A side must beat the other by this factor before the fabric diagnosis
# names it; anything closer is "balanced".
FABRIC_DIAGNOSIS_MARGIN = 1.2

# Fixed tag-lookup costs (cycles): hardware constants from capacity and
# associativity, as the paper assigns W_tag a constant value.
W_TAG_L1 = 4.0
W_TAG_L2 = 12.0


@dataclass(frozen=True)
class QueueEstimate:
    component: str
    path: str
    core_id: int
    queue_length: float
    arrival_rate: float
    delay: float


@dataclass(frozen=True)
class FabricPortEstimate:
    """Little's-law occupancy of one switch output port.

    ``queue_length`` is the time-average occupancy of the port's input
    queue over the snapshot; ``retries`` counts credit-throttled
    submissions (flits that found the queue full), the direct congestion
    signal."""

    switch: str
    port: str
    queue_length: float
    arrival_rate: float
    delay: float
    forwarded: float
    retries: float

    @property
    def name(self) -> str:
        return f"{self.switch}:{self.port}"


@dataclass(frozen=True)
class FabricDiagnosis:
    """Where do a switched machine's CXL stalls build up?

    ``verdict`` is ``"fabric-congested"`` (switch-port queues dominate),
    ``"device-bound"`` (device pack-buffer/MC queues dominate), or
    ``"balanced"`` when neither side beats the other by
    :data:`FABRIC_DIAGNOSIS_MARGIN`."""

    verdict: str
    congested_port: Optional[FabricPortEstimate]
    fabric_queue: float
    device_queue: float


@dataclass
class AnalyzerReport:
    """All per-(core, path, component) queue estimates of one snapshot."""

    snapshot_id: int
    estimates: List[QueueEstimate] = field(default_factory=list)
    fabric_ports: List[FabricPortEstimate] = field(default_factory=list)
    device_queue_length: float = 0.0

    def queue(self, component: str, path: str, core_id: Optional[int] = None) -> float:
        total = 0.0
        for est in self.estimates:
            if est.component == component and est.path == path:
                if core_id is None or est.core_id == core_id:
                    total += est.queue_length
        return total

    def culprit(self) -> Optional[QueueEstimate]:
        """ALG 1 line 19: the maximum-occupancy (component, path)."""
        if not self.estimates:
            return None
        return max(self.estimates, key=lambda e: e.queue_length)

    def culprit_for_core(self, core_id: int) -> Optional[QueueEstimate]:
        own = [e for e in self.estimates if e.core_id == core_id]
        if not own:
            return None
        return max(own, key=lambda e: e.queue_length)

    def by_component(self, path: Optional[str] = None) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for est in self.estimates:
            if path is not None and est.path != path:
                continue
            out[est.component] = out.get(est.component, 0.0) + est.queue_length
        return out

    def fabric_diagnosis(self) -> Optional[FabricDiagnosis]:
        """Attribute CXL stalls to fabric-port contention vs device-side
        queues.  ``None`` when the snapshot saw no switch ports at all."""
        if not self.fabric_ports:
            return None
        hot = max(self.fabric_ports, key=lambda p: p.queue_length)
        fabric_queue = hot.queue_length
        device_queue = self.device_queue_length
        if fabric_queue > FABRIC_DIAGNOSIS_MARGIN * device_queue:
            verdict = "fabric-congested"
        elif device_queue > FABRIC_DIAGNOSIS_MARGIN * fabric_queue:
            verdict = "device-bound"
        else:
            verdict = "balanced"
        return FabricDiagnosis(
            verdict=verdict,
            congested_port=hot,
            fabric_queue=fabric_queue,
            device_queue=device_queue,
        )


class PFAnalyzer:
    """Runs ALG 1 over one snapshot."""

    def __init__(self, socket: int = 0) -> None:
        self.socket = socket

    def analyze(self, snapshot: Snapshot) -> AnalyzerReport:
        delta = snapshot.delta
        clocks = max(snapshot.duration, 1.0)
        report = AnalyzerReport(snapshot_id=snapshot.snapshot_id)
        cha = CHAPMUView(delta, self.socket)
        for cid in core_ids(delta):
            view = CorePMUView(delta, cid)
            delays = self._hop_delays(view)
            for path in ANALYZED_PATHS:
                report.estimates.extend(
                    self._per_core_estimates(view, cha, path, clocks, delays)
                )
        report.estimates.extend(self._flexbus_estimates(snapshot, cha, clocks))
        report.fabric_ports = self._fabric_ports(delta, clocks)
        report.device_queue_length = self._device_queue(delta, clocks)
        report.estimates.extend(
            self._fabric_estimates(report.fabric_ports, cha, clocks)
        )
        return report

    # -- delays ------------------------------------------------------------

    def _hop_delays(self, view: CorePMUView) -> Dict[str, float]:
        """Per-hop service delay = latency increment over the previous hop."""
        l2_lat, _ = view.latency_sample("L2")
        llc_lat = self._mean(
            view.latency_sample("local_LLC"), view.latency_sample("snc_LLC")
        )
        mem_lat = self._mean(
            view.latency_sample("local_DRAM"),
            view.latency_sample("remote_DRAM"),
            view.latency_sample("CXL_DRAM"),
        )
        l1_hit = W_TAG_L1 + 1.0
        l2_hit = max(l2_lat - l1_hit, W_TAG_L2) if l2_lat else W_TAG_L2
        llc_hit = max(llc_lat - l2_lat, 1.0) if llc_lat else 1.0
        return {
            "L1D_hit": l1_hit,
            "L2_hit": l2_hit,
            "LLC_hit": llc_hit,
            "LLC_lat": llc_lat,
            "MEM": mem_lat,
        }

    @staticmethod
    def _mean(*samples: Tuple[float, float]) -> float:
        total = sum(mean * count for mean, count in samples)
        count = sum(count for _mean, count in samples)
        return total / count if count else 0.0

    # -- per-core components -------------------------------------------------

    def _per_core_estimates(
        self,
        view: CorePMUView,
        cha: CHAPMUView,
        path: str,
        clocks: float,
        delays: Dict[str, float],
    ) -> List[QueueEstimate]:
        cid = view.core_id
        out: List[QueueEstimate] = []

        def add(component: str, rate: float, delay: float) -> None:
            # A path with no arrivals (or no latency samples backing the
            # delay) contributes no queue: emit nothing rather than a
            # zero/NaN estimate that could tie-break into a culprit.
            if not (rate > 0.0) or not math.isfinite(rate):
                return
            if not math.isfinite(delay) or delay < 0.0:
                return
            out.append(
                QueueEstimate(
                    component=component,
                    path=path,
                    core_id=cid,
                    queue_length=rate * delay,
                    arrival_rate=rate,
                    delay=delay,
                )
            )

        if path == "DRd":
            # L1D observes demand loads only (section 5.9 blind spot).
            lam_hit = view.l1_hits / clocks
            lam_miss = view.l1_misses / clocks
            add("L1D", lam_hit, delays["L1D_hit"])
            add("L1D", lam_miss, W_TAG_L1)
            # LFB: hit-only model (the load is part of the uncore path).
            lfb_delay = self._lfb_residency(view, clocks)
            add("LFB", (view.fb_hits + view.lfb_inserts) / clocks, lfb_delay)
        # L2: hit and miss flows per path.
        lam_hit = view.l2_hits(path) / clocks
        lam_miss = view.l2_misses(path) / clocks
        add("L2", lam_hit, delays["L2_hit"])
        add("L2", lam_miss, W_TAG_L2)
        # LLC: hits serve, misses park in the TOR until completion.
        llc_hits = view.ocr(path, "l3_hit") + view.ocr(path, "snc_cache")
        llc_misses = max(
            0.0, view.ocr(path, "any_response") - llc_hits
        )
        tor_miss_delay = cha.avg_tor_latency(path, "miss")
        add("LLC", llc_hits / clocks, delays["LLC_hit"])
        add("LLC", llc_misses / clocks, tor_miss_delay or delays["MEM"])
        return out

    def _lfb_residency(self, view: CorePMUView, clocks: float) -> float:
        """Mean LFB entry residency from its occupancy integral."""
        inserts = view.lfb_inserts
        if inserts <= 0:
            return 0.0
        return view.lfb_occupancy / inserts

    # -- FlexBus+MC (terminal DIMM stage, hit-only model) ------------------------

    def _flexbus_estimates(
        self, snapshot: Snapshot, cha: CHAPMUView, clocks: float
    ) -> List[QueueEstimate]:
        delta = snapshot.delta
        out: List[QueueEstimate] = []
        read_weights = {
            path: cha.tor_inserts(path, "miss_cxl") for path in ANALYZED_PATHS
        }
        total_reads = sum(read_weights.values())
        for node in cxl_node_ids(delta):
            m2p = M2PCIeView(delta, node)
            device = CXLDeviceView(delta, node)
            served = m2p.data_responses
            if served <= 0:
                continue
            # W_hit: mean residency across the FlexBus + device complex.
            queue_cycles = (
                m2p.ingress_occupancy
                + m2p.get("unc_m2p_link_occupancy")
                + device.pack_buf_occupancy("mem_req")
                + device.mc_occupancy
            )
            w_hit = queue_cycles / served
            if not math.isfinite(w_hit) or w_hit < 0.0:
                continue
            for path, weight in read_weights.items():
                share = weight / total_reads if total_reads > 0 else 0.0
                rate = served * share / clocks
                if not (rate > 0.0) or not math.isfinite(rate):
                    continue
                out.append(
                    QueueEstimate(
                        component="FlexBus+MC",
                        path=path,
                        core_id=-1,
                        queue_length=rate * w_hit,
                        arrival_rate=rate,
                        delay=w_hit,
                    )
                )
        return out

    # -- CXL fabric (switch ports as middle Clos stages) ---------------------

    def _fabric_ports(
        self, delta: Dict[Tuple[str, str], float], clocks: float
    ) -> List[FabricPortEstimate]:
        """One estimate per switch output port, from ``unc_cxlsw_*``.

        Understands both counter layouts: the multi-host fabric's
        per-port events (scope ``cxlsw.<switch>``, ``unc_cxlsw_fwd.<port>``)
        and the one-tier :class:`~repro.sim.cxl_switch.CXLSwitch`'s
        directional events (scope-level ``unc_cxlsw_fwd_{down,up}``
        apportioned over that direction's ports by occupancy share)."""
        scopes: Dict[str, Dict[str, float]] = {}
        for (scope, event), value in delta.items():
            if scope.startswith("cxlsw"):
                scopes.setdefault(scope, {})[event] = value
        out: List[FabricPortEstimate] = []
        for scope in sorted(scopes):
            events = scopes[scope]
            switch = scope.split(".", 1)[1] if "." in scope else scope
            per_port: Dict[str, Dict[str, float]] = {}
            legacy: Dict[str, List[str]] = {"down": [], "up": []}
            for event, value in events.items():
                if "." not in event:
                    continue
                stem, port = event.split(".", 1)
                if stem.startswith("unc_cxlsw_down_") or stem.startswith(
                    "unc_cxlsw_up_"
                ):
                    _, _, direction, measure = stem.split("_", 3)
                    port_key = f"{direction}.{port}"
                    if port_key not in per_port:
                        per_port[port_key] = {}
                        legacy[direction].append(port_key)
                    per_port[port_key][measure] = value
                else:
                    measure = stem[len("unc_cxlsw_"):]
                    per_port.setdefault(port, {})[measure] = value
            # Legacy scopes publish forwarded/retry per direction only:
            # spread the aggregate over that direction's ports by
            # occupancy share (equal split when all ports sat empty).
            for direction, port_keys in legacy.items():
                if not port_keys:
                    continue
                fwd = events.get(f"unc_cxlsw_fwd_{direction}", 0.0)
                retry = events.get(f"unc_cxlsw_retry_{direction}", 0.0)
                occ_total = sum(
                    per_port[k].get("occupancy", 0.0) for k in port_keys
                )
                for key in port_keys:
                    occ = per_port[key].get("occupancy", 0.0)
                    share = (
                        occ / occ_total if occ_total > 0
                        else 1.0 / len(port_keys)
                    )
                    per_port[key]["fwd"] = fwd * share
                    per_port[key]["retry"] = retry * share
            for port in sorted(per_port):
                measures = per_port[port]
                occupancy = measures.get("occupancy", 0.0)
                forwarded = measures.get("fwd", 0.0)
                queue_length = occupancy / clocks
                delay = occupancy / forwarded if forwarded > 0 else 0.0
                if not math.isfinite(queue_length) or not math.isfinite(delay):
                    continue
                out.append(
                    FabricPortEstimate(
                        switch=switch,
                        port=port,
                        queue_length=queue_length,
                        arrival_rate=forwarded / clocks,
                        delay=delay,
                        forwarded=forwarded,
                        retries=measures.get("retry", 0.0),
                    )
                )
        return out

    def _device_queue(
        self, delta: Dict[Tuple[str, str], float], clocks: float
    ) -> float:
        """Time-average occupancy of all device-side queues (pack buffers
        + device MC) - the fabric diagnosis's other scale pan."""
        total = 0.0
        for node in cxl_node_ids(delta):
            device = CXLDeviceView(delta, node)
            total += (
                device.pack_buf_occupancy("mem_req")
                + device.pack_buf_occupancy("mem_data")
                + device.mc_occupancy
            )
        return total / clocks

    def _fabric_estimates(
        self,
        ports: List[FabricPortEstimate],
        cha: CHAPMUView,
        clocks: float,
    ) -> List[QueueEstimate]:
        """Fold the fabric into the per-path culprit competition.

        The whole fabric contributes one "CXLFabric" estimate per path,
        weighted by the same miss_cxl TOR shares as FlexBus+MC, so a
        congested switch port can win ``culprit()`` outright."""
        total_queue = sum(p.queue_length for p in ports)
        total_fwd = sum(p.forwarded for p in ports)
        if total_queue <= 0.0 or total_fwd <= 0.0:
            return []
        delay = total_queue * clocks / total_fwd
        read_weights = {
            path: cha.tor_inserts(path, "miss_cxl") for path in ANALYZED_PATHS
        }
        total_reads = sum(read_weights.values())
        out: List[QueueEstimate] = []
        for path, weight in read_weights.items():
            share = weight / total_reads if total_reads > 0 else 0.0
            rate = total_fwd * share / clocks
            if not (rate > 0.0) or not math.isfinite(rate):
                continue
            out.append(
                QueueEstimate(
                    component="CXLFabric",
                    path=path,
                    core_id=-1,
                    queue_length=rate * delay,
                    arrival_rate=rate,
                    delay=delay,
                )
            )
        return out
