"""Profiling task specification (paper Figure 5-a).

PathFinder's inputs: the applications (single or multi-tenant), their
running environment (pinned cores, bound memory nodes), the profiler
specification (mode, tracing granularity, resource cap) and the report
specification (which execution statistics to surface).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..workloads.base import Workload

_pids = itertools.count(1000)


class ProfilingMode(enum.Enum):
    CONTINUOUS = "continuous"   # per-epoch reports over the app lifetime
    AGGREGATED = "aggregated"   # one cumulative report at exit


@dataclass
class AppSpec:
    """One tenant: a workload pinned to a core with a memory policy."""

    workload: Workload
    core: int
    # Memory binding: a single node id, (local_node, cxl_node, ratio) for
    # interleaved placement, or - when the caller already placed the pages
    # (striping across a CXL pool, custom policies) - the list of node ids
    # the working set touches, so mFlows are registered per node.
    membind: Optional[int] = None
    interleave: Optional[Tuple[int, int, float]] = None
    preinstalled: Optional[Sequence[int]] = None
    # Launch delay in cycles: 0 = start with the session.  Case 6 launches
    # disturbing neighbours mid-profile to observe locality shifts.
    start_at: float = 0.0
    pid: int = field(default_factory=lambda: next(_pids))

    def __post_init__(self) -> None:
        modes = sum(
            1
            for mode in (self.membind, self.interleave, self.preinstalled)
            if mode is not None
        )
        if modes != 1:
            raise ValueError(
                "specify exactly one of membind / interleave / preinstalled"
            )

    @property
    def name(self) -> str:
        return self.workload.name


@dataclass
class TraceSpec:
    """Flight-recorder configuration (off unless attached to the spec).

    ``sample_every`` traces 1-in-N memory requests (the overhead knob);
    ``max_requests`` caps the retained traces so a long session cannot
    grow without bound.
    """

    sample_every: int = 64
    max_requests: int = 100_000

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ValueError("trace sample_every must be positive")
        if self.max_requests <= 0:
            raise ValueError("trace max_requests must be positive")


@dataclass
class ReportSpec:
    """Which statistics to include in the epoch reports."""

    path_map: bool = True
    stall_breakdown: bool = True
    queue_analysis: bool = True
    locality: bool = False
    top_n_paths: int = 4


@dataclass
class ProfileSpec:
    """The full profiling task."""

    apps: List[AppSpec]
    epoch_cycles: float = 50_000.0
    mode: ProfilingMode = ProfilingMode.CONTINUOUS
    max_epochs: int = 10_000
    report: ReportSpec = field(default_factory=ReportSpec)
    # Request-path tracing; None (the default) records nothing.
    trace: Optional[TraceSpec] = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("profile at least one application")
        if self.epoch_cycles <= 0:
            raise ValueError("epoch must be positive")
        cores = [a.core for a in self.apps]
        if len(cores) != len(set(cores)):
            raise ValueError("two applications pinned to the same core")
