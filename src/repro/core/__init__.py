"""PathFinder: the paper's primary contribution.

Snapshot-based, path-driven profiling of CXL.mem built from four
techniques (section 4): PFBuilder constructs the per-snapshot path map,
PFEstimator back-propagates CXL-induced stall cycles from the DIMM to the
core, PFAnalyzer estimates per-component queue lengths via Little's law
and flags the culprit path, and PFMaterializer synthesises behaviour
across snapshots through a time-series database.
"""

from .analyzer import (
    ANALYZER_COMPONENTS,
    AnalyzerReport,
    FabricDiagnosis,
    FabricPortEstimate,
    PFAnalyzer,
    QueueEstimate,
)
from .builder import CORE_COMPONENTS, FAMILIES, PFBuilder, PathMap, UNCORE_COMPONENTS
from .estimator import COMPONENTS as STALL_COMPONENTS
from .diff import MetricDelta, SessionDiff, compare_sessions, render_diff
from .estimator import PFEstimator, StallBreakdown
from .materializer import LocalityReport, PFMaterializer
from .mflow import MFlow, MFlowRegistry
from .persistence import (
    LoadedSession,
    config_from_document,
    config_to_document,
    load_session,
    save_session,
    spec_from_document,
    spec_to_document,
)
from .profiler import EpochResult, PathFinder, ProfileResult, profile
from .report import (
    render_epoch,
    render_fabric,
    render_path_map,
    render_queues,
    render_session,
    render_stall_breakdown,
    render_trace,
)
from .snapshot import Snapshot, SnapshotTaker
from .spec import AppSpec, ProfileSpec, ProfilingMode, ReportSpec, TraceSpec

__all__ = [
    "ANALYZER_COMPONENTS",
    "AnalyzerReport",
    "AppSpec",
    "CORE_COMPONENTS",
    "EpochResult",
    "FAMILIES",
    "FabricDiagnosis",
    "FabricPortEstimate",
    "LoadedSession",
    "LocalityReport",
    "MFlow",
    "MetricDelta",
    "MFlowRegistry",
    "PFAnalyzer",
    "PFBuilder",
    "PFEstimator",
    "PFMaterializer",
    "PathFinder",
    "PathMap",
    "ProfileResult",
    "ProfileSpec",
    "ProfilingMode",
    "QueueEstimate",
    "ReportSpec",
    "STALL_COMPONENTS",
    "SessionDiff",
    "TraceSpec",
    "render_trace",
    "Snapshot",
    "SnapshotTaker",
    "StallBreakdown",
    "compare_sessions",
    "config_from_document",
    "config_to_document",
    "load_session",
    "spec_from_document",
    "spec_to_document",
    "render_diff",
    "save_session",
    "UNCORE_COMPONENTS",
    "profile",
    "render_epoch",
    "render_fabric",
    "render_path_map",
    "render_queues",
    "render_session",
    "render_stall_breakdown",
]
