"""Human-readable report rendering for profiling sessions."""

from __future__ import annotations

from typing import Optional

from .builder import FAMILIES, PathMap
from .estimator import COMPONENTS as STALL_COMPONENTS
from .estimator import StallBreakdown
from .analyzer import AnalyzerReport
from .profiler import EpochResult, ProfileResult


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "      -"
    if value >= 1e6:
        return f"{value:7.1e}"
    return f"{value:7.0f}"


def render_path_map(path_map: PathMap, core_id: int) -> str:
    """Table 7-style rendering: component rows x path-family columns."""
    lines = [
        f"Path map (snapshot {path_map.snapshot_id}, core {core_id})",
        "component    " + "".join(f"{f:>9}" for f in FAMILIES),
    ]
    for component, row in path_map.rows(core_id):
        lines.append(
            f"{component:<13}"
            + "".join(f"{_fmt(row[f]):>9}" for f in FAMILIES)
        )
    hot_core = path_map.hot_path_core(core_id)
    hot_uncore = path_map.hot_path_uncore()
    lines.append(f"hot path: core={hot_core} uncore={hot_uncore}")
    share = path_map.family_share_at_cxl()
    lines.append(
        "CXL share: "
        + " ".join(f"{f}={share[f]*100:.1f}%" for f in FAMILIES)
    )
    return "\n".join(lines)


def render_stall_breakdown(stalls: StallBreakdown) -> str:
    """Figure 6-style rendering: per-path stall shares across components."""
    lines = [f"CXL-induced stall breakdown (snapshot {stalls.snapshot_id})"]
    header = "path   " + "".join(f"{c:>12}" for c in STALL_COMPONENTS)
    lines.append(header)
    for family in FAMILIES:
        shares = stalls.shares(family)
        lines.append(
            f"{family:<7}"
            + "".join(f"{shares[c]*100:11.1f}%" for c in STALL_COMPONENTS)
        )
    return "\n".join(lines)


def render_queues(report: AnalyzerReport, top_n: int = 5) -> str:
    lines = [f"Queue analysis (snapshot {report.snapshot_id})"]
    ranked = sorted(
        report.estimates, key=lambda e: e.queue_length, reverse=True
    )[:top_n]
    for est in ranked:
        core = "all" if est.core_id < 0 else str(est.core_id)
        lines.append(
            f"  {est.path:>5} @ {est.component:<10} core={core:<4}"
            f" L={est.queue_length:8.3f}  lambda={est.arrival_rate:.4f}"
            f"  W={est.delay:8.1f}"
        )
    culprit = report.culprit()
    if culprit is not None:
        lines.append(
            f"culprit: {culprit.path} on {culprit.component}"
            f" (queue length {culprit.queue_length:.3f})"
        )
    return "\n".join(lines)


def render_fabric(report: AnalyzerReport, top_n: int = 5) -> str:
    """Switch-port occupancy table plus the fabric-vs-device verdict."""
    lines = [f"CXL fabric (snapshot {report.snapshot_id})"]
    if not report.fabric_ports:
        lines.append("  no switch ports observed (direct-attached CXL)")
        return "\n".join(lines)
    ranked = sorted(
        report.fabric_ports, key=lambda p: p.queue_length, reverse=True
    )[:top_n]
    lines.append(
        "  port                          L    fwd    retry       W"
    )
    for port in ranked:
        lines.append(
            f"  {port.name:<24}{port.queue_length:8.3f}"
            f" {port.forwarded:6.0f} {port.retries:8.0f}"
            f" {port.delay:7.1f}"
        )
    diagnosis = report.fabric_diagnosis()
    if diagnosis is not None:
        hot = diagnosis.congested_port
        lines.append(
            f"verdict: {diagnosis.verdict}"
            f" (fabric L={diagnosis.fabric_queue:.3f}"
            f" at {hot.name if hot else '-'},"
            f" device L={diagnosis.device_queue:.3f})"
        )
    return "\n".join(lines)


def render_epoch(result: EpochResult, core_id: int = 0) -> str:
    parts = [
        f"=== epoch {result.epoch} (t={result.snapshot.t_start:.0f}"
        f"..{result.snapshot.t_end:.0f}) ===",
        render_path_map(result.path_map, core_id),
        render_stall_breakdown(result.stalls),
        render_queues(result.queues),
    ]
    if result.queues.fabric_ports:
        parts.append(render_fabric(result.queues))
    return "\n".join(parts)


def render_campaign(campaign) -> str:
    """Per-job status table plus totals for a :class:`CampaignResult`.

    Degenerate campaigns get an honest summary instead of the usual
    table: an empty job list says so outright, and a campaign where
    every job failed renders a failure-only summary (tag, failure kind,
    first error line) so the table cannot read as a successful run.
    """
    if not campaign.jobs:
        return "campaign: no jobs to report"
    if not campaign.ok:
        lines = [f"campaign FAILED: 0/{len(campaign.jobs)} jobs succeeded"]
        for job in campaign.jobs:
            detail = job.failure or "unknown"
            if job.error:
                first_line = job.error.strip().splitlines()[-1]
                detail += f": {first_line}"
            lines.append(
                f"  {job.tag:<20} attempts={job.attempts}"
                f" wall={job.wall_time:.2f}s  {detail}"
            )
        lines.append(
            f"campaign: 0/{len(campaign.jobs)} ok,"
            f" {campaign.wall_time:.2f}s wall"
        )
        return "\n".join(lines)
    lines = [
        "tag                  status     attempts     wall      events"
        "      cycles  failure",
    ]
    for job in campaign.jobs:
        lines.append(
            f"{job.tag:<20} {job.status:<10} {job.attempts:>8}"
            f" {job.wall_time:7.2f}s {_fmt(job.events_executed):>9}"
            f" {_fmt(job.total_cycles):>11}"
            f"  {job.failure or '-'}"
        )
    summary = campaign.summary()
    lines.append(
        f"campaign: {summary['ok']}/{summary['jobs']} ok,"
        f" {summary['cache_hits']} cache hits"
        f" ({summary['hit_rate']*100:.0f}%),"
        f" {summary['workers']} workers,"
        f" {summary['wall_time']:.2f}s wall,"
        f" {summary['total_events']:.0f} events"
    )
    if summary.get("spawn_failures"):
        lines.append(
            f"pool: {summary['spawn_failures']} worker spawn failure(s); "
            "affected jobs degraded to in-process execution"
        )
    return "\n".join(lines)


def render_fleet(result) -> str:
    """A fleet campaign report: placement table on top of the job table.

    Wraps :func:`render_campaign` (a :class:`FleetResult` IS a
    campaign result) with the per-member placement, reroute count and
    cache-hit locality the fleet layer adds.
    """
    lines = [render_campaign(result)]
    by_member = result.by_member() if hasattr(result, "by_member") else {}
    if by_member:
        lines.append("member               jobs    ok  hits  failed")
        for member_id in sorted(by_member):
            row = by_member[member_id]
            lines.append(
                f"{member_id:<20} {row['jobs']:>4} {row['ok']:>5}"
                f" {row['cache_hits']:>5} {row['failed']:>7}"
            )
    members = len(getattr(result, "members", []) or [])
    lines.append(
        f"fleet: {members} members,"
        f" {getattr(result, 'rerouted_jobs', 0)} rerouted,"
        f" locality {getattr(result, 'locality', 0.0)*100:.0f}%"
    )
    return "\n".join(lines)


def render_trace(trace, top_queues: int = 6) -> str:
    """Per-stage latency table for a :class:`repro.obs.TraceReport`.

    Canonical Clos stages first (request-path order), then any recorded
    fine-grained queue stages, then the busiest queue-occupancy series.
    """
    from ..obs import CANONICAL_STAGES

    lines = [
        f"Flight recorder: 1-in-{trace.sample_every} sampling,"
        f" {trace.requests_traced}/{trace.requests_seen} requests traced,"
        f" {trace.duration:.0f} cycles",
        "stage            samples     mean      p50      p95      max"
        "   est. L",
    ]
    ordered = [s for s in CANONICAL_STAGES if s in trace.stage_histograms]
    ordered += sorted(
        s for s in trace.stage_histograms if s not in CANONICAL_STAGES
    )
    for stage in ordered:
        hist = trace.stage_histograms[stage]
        if not hist.count:
            continue
        lines.append(
            f"{stage:<16} {hist.count:7d} {hist.mean:8.1f}"
            f" {hist.percentile(50.0):8.1f} {hist.percentile(95.0):8.1f}"
            f" {hist.max:8.1f}"
            f" {trace.measured_queue_length(stage):8.3f}"
        )
    if trace.queue_occupancy:
        busiest = sorted(
            trace.queue_occupancy.items(),
            key=lambda kv: -max(v for _, v in kv[1]),
        )[:top_queues]
        lines.append("queue occupancy (mean depth, busiest epoch):")
        for name, series in busiest:
            peak = max(v for _, v in series)
            mean = sum(v for _, v in series) / len(series)
            lines.append(f"  {name:<24} mean={mean:7.3f}  peak={peak:7.3f}")
    return "\n".join(lines)


def render_session(result: ProfileResult, core_id: int = 0) -> str:
    lines = [
        f"PathFinder session: {result.num_epochs} epochs,"
        f" {result.total_cycles:.0f} cycles, {len(result.flows)} mFlows"
    ]
    for flow in result.flows:
        lines.append(
            f"  mFlow {flow.flow_id}: pid={flow.pid} core={flow.core_id}"
            f" node={flow.node_id} ({flow.node_kind})"
            f" snapshots={len(flow.snapshot_ids)}"
        )
    if result.final is not None:
        lines.append(render_epoch(result.final, core_id))
    return "\n".join(lines)
