"""Session A/B comparison.

Case 7 evaluates an optimisation (TPP) by lining up two profiling
sessions - baseline vs treatment - and comparing hit locations, uncore
latencies and culprit queueing.  This module packages that workflow:
:func:`compare_sessions` takes two profiled results and produces a
structured :class:`SessionDiff` of the metrics the paper compares, plus a
textual renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pmu.views import CorePMUView, M2PCIeView, core_ids, cxl_node_ids
from .profiler import ProfileResult

_SERVE_TIERS = ("l3_hit", "snc_cache", "local_dram", "remote_dram", "cxl_dram")


def _totals(result: ProfileResult) -> Dict[Tuple[str, str], float]:
    totals: Dict[Tuple[str, str], float] = {}
    for epoch in result.epochs:
        for key, value in epoch.snapshot.delta.items():
            totals[key] = totals.get(key, 0.0) + value
    return totals


@dataclass
class MetricDelta:
    """One compared metric: baseline, treatment, and the ratio."""

    name: str
    baseline: float
    treatment: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.treatment > 0 else 1.0
        return self.treatment / self.baseline

    @property
    def change_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.treatment == 0 else float("inf")
        return (self.treatment - self.baseline) / self.baseline * 100.0


@dataclass
class SessionDiff:
    """Structured comparison of two profiling sessions."""

    runtime: MetricDelta
    serve_shift: Dict[str, Dict[str, MetricDelta]] = field(default_factory=dict)
    cxl_traffic: Optional[MetricDelta] = None
    stall_uncore_fraction: Optional[MetricDelta] = None
    culprit_queue: Optional[MetricDelta] = None

    def speedup(self) -> float:
        if self.runtime.treatment == 0:
            return float("inf")
        return self.runtime.baseline / self.runtime.treatment

    def metrics(self) -> List[MetricDelta]:
        out = [self.runtime]
        for family_metrics in self.serve_shift.values():
            out.extend(family_metrics.values())
        for metric in (self.cxl_traffic, self.stall_uncore_fraction,
                       self.culprit_queue):
            if metric is not None:
                out.append(metric)
        return out


def compare_sessions(
    baseline: ProfileResult,
    treatment: ProfileResult,
    families: Tuple[str, ...] = ("DRd", "RFO", "HWPF"),
) -> SessionDiff:
    """Line up two sessions of the same workload under different policies."""
    base_totals = _totals(baseline)
    treat_totals = _totals(treatment)
    diff = SessionDiff(
        runtime=MetricDelta(
            "runtime_cycles", baseline.total_cycles, treatment.total_cycles
        )
    )
    # Per-family serve-tier shifts (Figure 13-a's hit comparison).
    cores = sorted(set(core_ids(base_totals)) | set(core_ids(treat_totals)))
    for family in families:
        per_tier: Dict[str, MetricDelta] = {}
        for tier in _SERVE_TIERS:
            base_value = sum(
                CorePMUView(base_totals, c).ocr(family, tier) for c in cores
            )
            treat_value = sum(
                CorePMUView(treat_totals, c).ocr(family, tier) for c in cores
            )
            if base_value or treat_value:
                per_tier[tier] = MetricDelta(
                    f"{family}.{tier}", base_value, treat_value
                )
        if per_tier:
            diff.serve_shift[family] = per_tier
    # CXL DIMM traffic (M2PCIe ground truth).
    nodes = sorted(
        set(cxl_node_ids(base_totals)) | set(cxl_node_ids(treat_totals))
    )
    if nodes:
        base_traffic = sum(
            M2PCIeView(base_totals, n).data_responses
            + M2PCIeView(base_totals, n).write_acks
            for n in nodes
        )
        treat_traffic = sum(
            M2PCIeView(treat_totals, n).data_responses
            + M2PCIeView(treat_totals, n).write_acks
            for n in nodes
        )
        diff.cxl_traffic = MetricDelta(
            "cxl_dimm_traffic", base_traffic, treat_traffic
        )
    # Stall shape: the uncore fraction of attributed DRd stall.
    if baseline.epochs and treatment.epochs:
        diff.stall_uncore_fraction = MetricDelta(
            "drd_stall_uncore_fraction",
            _mean_uncore_fraction(baseline),
            _mean_uncore_fraction(treatment),
        )
        diff.culprit_queue = MetricDelta(
            "late_culprit_queue",
            _late_culprit(baseline),
            _late_culprit(treatment),
        )
    return diff


def _mean_uncore_fraction(result: ProfileResult) -> float:
    fractions = [
        e.stalls.uncore_fraction("DRd")
        for e in result.epochs
        if sum(e.stalls.aggregate("DRd").values()) > 0
    ]
    return sum(fractions) / len(fractions) if fractions else 0.0


def _late_culprit(result: ProfileResult) -> float:
    tail = result.epochs[-max(1, len(result.epochs) // 3):]
    queues = [
        e.queues.culprit().queue_length
        for e in tail
        if e.queues.culprit() is not None
    ]
    return sum(queues) / len(queues) if queues else 0.0


def render_diff(diff: SessionDiff) -> str:
    lines = [
        "Session comparison (baseline -> treatment)",
        f"  runtime : {diff.runtime.baseline:.0f} -> "
        f"{diff.runtime.treatment:.0f} cycles "
        f"({diff.speedup():.2f}x speedup)",
    ]
    for family, tiers in diff.serve_shift.items():
        for tier, metric in tiers.items():
            lines.append(
                f"  {family:<5} served by {tier:<12}: "
                f"{metric.baseline:9.0f} -> {metric.treatment:9.0f} "
                f"({metric.change_pct:+.1f}%)"
            )
    if diff.cxl_traffic is not None:
        lines.append(
            f"  CXL DIMM traffic : {diff.cxl_traffic.baseline:.0f} -> "
            f"{diff.cxl_traffic.treatment:.0f} "
            f"({diff.cxl_traffic.change_pct:+.1f}%)"
        )
    if diff.stall_uncore_fraction is not None:
        lines.append(
            f"  DRd stall uncore share : "
            f"{diff.stall_uncore_fraction.baseline*100:.1f}% -> "
            f"{diff.stall_uncore_fraction.treatment*100:.1f}%"
        )
    if diff.culprit_queue is not None:
        lines.append(
            f"  late culprit queue : {diff.culprit_queue.baseline:.2f} -> "
            f"{diff.culprit_queue.treatment:.2f}"
        )
    return "\n".join(lines)
