"""PFBuilder: construct the CXL data-path map (section 4.3).

Traceroute is impossible inside a processor, but PMUs report path-specific
hit/miss counts at every stage, so the path map is reconstructed per
snapshot by synthesising the Table 5 counters: core counters give per-path
traffic at SB/L1D/LFB/L2, the CHA TOR records the core->CHA mapping and
LLC outcome, and M2PCIe/IMC counters pin down the DIMM hop.

The output :class:`PathMap` is exactly the shape of the paper's Table 7:
per-core hit distribution over {SB, L1D, LFB, L2} and uncore hit
distribution over {local LLC, SNC LLC, remote LLC, local DRAM, remote
DRAM, CXL memory}, per path family.  Cells the real PMU cannot observe
(RFO/DWr at L1D and LFB - section 5.9's stated limitation) are ``None``
here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pmu.views import CHAPMUView, CorePMUView, M2PCIeView, core_ids
from .snapshot import Snapshot

CORE_COMPONENTS = ("SB", "L1D", "LFB", "L2")
UNCORE_COMPONENTS = (
    "local_LLC", "snc_LLC", "remote_LLC", "local_DRAM", "remote_DRAM",
    "CXL_memory",
)
FAMILIES = ("DRd", "RFO", "HWPF", "DWr")

# ocr scenario feeding each uncore component row.
_OCR_FOR_COMPONENT = {
    "local_LLC": "l3_hit",
    "snc_LLC": "snc_cache",
    "remote_LLC": "remote_cache",
    "local_DRAM": "local_dram",
    "remote_DRAM": "remote_dram",
    "CXL_memory": "cxl_dram",
}


@dataclass
class PathMap:
    """All mFlow-induced paths of one snapshot with quantitative loads."""

    snapshot_id: int
    duration: float
    # core -> family -> component -> hits (None = not observable, section 5.9)
    per_core: Dict[int, Dict[str, Dict[str, Optional[float]]]]
    # family -> component -> hits, aggregated from per-core ocr counters
    uncore: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # family -> {hit, miss, miss_cxl, ...} socket-level TOR classification
    tor: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # per CXL endpoint: loads (block data) and stores (acks) observed at M2PCIe
    cxl_traffic: Dict[int, Dict[str, float]] = field(default_factory=dict)

    # -- queries used by the case studies ---------------------------------

    def core_hits(self, core_id: int, family: str, component: str) -> Optional[float]:
        return self.per_core.get(core_id, {}).get(family, {}).get(component)

    def uncore_hits(self, family: str, component: str) -> float:
        return self.uncore.get(family, {}).get(component, 0.0)

    def total_core_requests(self, core_id: Optional[int] = None) -> float:
        """Sum of demand hits across core components (the 5.8x gcc metric)."""
        cores = [core_id] if core_id is not None else list(self.per_core)
        total = 0.0
        for cid in cores:
            for family in ("DRd", "RFO", "DWr"):
                for component in CORE_COMPONENTS:
                    value = self.core_hits(cid, family, component)
                    if value:
                        total += value
        return total

    def cxl_hits(self, family: Optional[str] = None) -> float:
        families = [family] if family else list(FAMILIES)
        return sum(self.uncore_hits(f, "CXL_memory") for f in families)

    def family_share_at_cxl(self) -> Dict[str, float]:
        """Which path dominates the CXL DIMM traffic (fotonik3d: HWPF 89%)."""
        total = self.cxl_hits()
        if total <= 0:
            return {f: 0.0 for f in FAMILIES}
        return {f: self.uncore_hits(f, "CXL_memory") / total for f in FAMILIES}

    def hot_path_core(self, core_id: int) -> str:
        """Family with the most core-level (SB..L2) hits."""
        best, best_value = FAMILIES[0], -1.0
        for family in FAMILIES:
            value = sum(
                v or 0.0
                for v in self.per_core.get(core_id, {}).get(family, {}).values()
            )
            if value > best_value:
                best, best_value = family, value
        return best

    def hot_path_uncore(self) -> str:
        best, best_value = FAMILIES[0], -1.0
        for family in FAMILIES:
            value = sum(self.uncore.get(family, {}).values())
            if value > best_value:
                best, best_value = family, value
        return best

    def rows(self, core_id: int) -> List[Tuple[str, Dict[str, Optional[float]]]]:
        """Table 7-shaped rows: component -> {family: hits}."""
        out: List[Tuple[str, Dict[str, Optional[float]]]] = []
        for component in CORE_COMPONENTS:
            out.append(
                (
                    component,
                    {
                        family: self.core_hits(core_id, family, component)
                        for family in FAMILIES
                    },
                )
            )
        for component in UNCORE_COMPONENTS:
            out.append(
                (
                    component,
                    {family: self.uncore_hits(family, component) for family in FAMILIES},
                )
            )
        return out


class PFBuilder:
    """Builds a :class:`PathMap` from one snapshot's counter delta."""

    def __init__(self, socket: int = 0) -> None:
        self.socket = socket

    def build(self, snapshot: Snapshot) -> PathMap:
        delta = snapshot.delta
        per_core: Dict[int, Dict[str, Dict[str, Optional[float]]]] = {}
        uncore: Dict[str, Dict[str, float]] = {
            family: {component: 0.0 for component in UNCORE_COMPONENTS}
            for family in FAMILIES
        }
        for core_id in core_ids(delta):
            view = CorePMUView(delta, core_id)
            per_core[core_id] = self._core_paths(view)
            for family in FAMILIES:
                histogram = self._serve_histogram(view, family)
                for component, value in histogram.items():
                    uncore[family][component] += value
        cha = CHAPMUView(delta, self.socket)
        tor = {
            family: {
                scenario: cha.tor_inserts(family, scenario)
                for scenario in ("total", "hit", "miss", "miss_cxl")
            }
            for family in ("DRd", "RFO", "HWPF")
        }
        tor["DWr"] = {"total": cha.tor_inserts("DWr", "total")}
        cxl_traffic: Dict[int, Dict[str, float]] = {}
        for scope, _event in delta:
            if scope.startswith("m2pcie") and scope[6:].isdigit():
                node = int(scope[6:])
                if node not in cxl_traffic:
                    m2p = M2PCIeView(delta, node)
                    cxl_traffic[node] = {
                        "loads": m2p.data_responses,
                        "stores": m2p.write_acks,
                        "inserts": m2p.ingress_inserts,
                    }
        return PathMap(
            snapshot_id=snapshot.snapshot_id,
            duration=snapshot.duration,
            per_core=per_core,
            uncore=uncore,
            tor=tor,
            cxl_traffic=cxl_traffic,
        )

    # -- per-core stage (SB -> L1D -> LFB -> L2) -------------------------------

    def _core_paths(self, view: CorePMUView) -> Dict[str, Dict[str, Optional[float]]]:
        paths: Dict[str, Dict[str, Optional[float]]] = {}
        # DRd: observable at L1D, LFB and L2.
        paths["DRd"] = {
            "SB": None,
            "L1D": view.l1_hits,
            "LFB": view.fb_hits,
            "L2": view.l2_hits("DRd"),
        }
        # RFO / DWr: the core PMU has no L1D/LFB split (section 5.9).
        paths["RFO"] = {
            "SB": None,
            "L1D": None,
            "LFB": None,
            "L2": view.l2_hits("RFO"),
        }
        paths["HWPF"] = {
            "SB": None,
            "L1D": None,
            "LFB": None,
            "L2": view.l2_hits("HWPF"),
        }
        paths["DWr"] = {
            "SB": view.get("mem_inst_retired.all_stores"),
            "L1D": None,
            "LFB": None,
            "L2": view.get("mem_store_retired.l2_hit"),
        }
        return paths

    # -- uncore stage (LLC tiers and DIMMs) --------------------------------

    def _serve_histogram(self, view: CorePMUView, family: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        if family == "HWPF":
            # Combine the three prefetch flavours (L1D HWPF, L2 HWPF DRd/RFO).
            for component, scenario in _OCR_FOR_COMPONENT.items():
                out[component] = (
                    view.ocr("HWPF", scenario)
                    + view.ocr("HWPF_L1", scenario)
                    + view.ocr("HWPF_RFO", scenario)
                )
            return out
        for component, scenario in _OCR_FOR_COMPONENT.items():
            out[component] = view.ocr(family, scenario)
        return out
