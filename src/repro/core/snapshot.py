"""Snapshot capture: one profiling epoch's PMU state.

PathFinder performs snapshot-based path-driven profiling (section 4.1):
at the end of every scheduling epoch it reads all PMUs, diffs against the
previous read, and tags the delta with the flows that ran.  The
:class:`Snapshot` is the unit every downstream technique (PFBuilder,
PFEstimator, PFAnalyzer, PFMaterializer) consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..pmu.registry import CounterRegistry, delta as counter_delta
from .mflow import MFlow

CounterKey = Tuple[str, str]

_snapshot_ids = itertools.count(1)


@dataclass
class Snapshot:
    """Counter activity between two PMU reads, tagged with live flows."""

    t_start: float
    t_end: float
    delta: Mapping[CounterKey, float]
    flows: List[MFlow] = field(default_factory=list)
    snapshot_id: int = field(default_factory=lambda: next(_snapshot_ids))

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def flow_for_core(self, core_id: int) -> List[MFlow]:
        return [f for f in self.flows if f.core_id == core_id]

    def get(self, scope: str, event: str, default: float = 0.0) -> float:
        return self.delta.get((scope, event), default)


class SnapshotTaker:
    """Stateful reader turning absolute counters into epoch deltas."""

    def __init__(self, registry: CounterRegistry) -> None:
        self._registry = registry
        self._previous: Dict[CounterKey, float] = {}
        self._previous_time = 0.0

    def take(self, now: float, flows: Optional[List[MFlow]] = None) -> Snapshot:
        current = self._registry.snapshot(now)
        snapshot = Snapshot(
            t_start=self._previous_time,
            t_end=now,
            delta=counter_delta(current, self._previous),
            flows=list(flows or []),
        )
        for flow in snapshot.flows:
            flow.attach_snapshot(snapshot.snapshot_id)
        self._previous = current
        self._previous_time = now
        return snapshot
