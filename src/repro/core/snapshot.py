"""Snapshot capture: one profiling epoch's PMU state.

PathFinder performs snapshot-based path-driven profiling (section 4.1):
at the end of every scheduling epoch it reads all PMUs, diffs against the
previous read, and tags the delta with the flows that ran.  The
:class:`Snapshot` is the unit every downstream technique (PFBuilder,
PFEstimator, PFAnalyzer, PFMaterializer) consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..pmu.registry import CounterRegistry, delta as counter_delta
from .mflow import MFlow

CounterKey = Tuple[str, str]

_snapshot_ids = itertools.count(1)

#: Events whose over-the-jump movement in a warped epoch is exact
#: bookkeeping (clock advance, ops consumed by ``Core.skip_ops``) and
#: therefore beats the steady-profile extrapolation.
_EXACT_OVER_WARP = frozenset(
    ["cpu_clk_unhalted", "inst_retired.any", "app.ops_completed"]
)


@dataclass
class Snapshot:
    """Counter activity between two PMU reads, tagged with live flows."""

    t_start: float
    t_end: float
    delta: Mapping[CounterKey, float]
    flows: List[MFlow] = field(default_factory=list)
    snapshot_id: int = field(default_factory=lambda: next(_snapshot_ids))
    #: True when this epoch was fast-forwarded (repro.sim.warp): the
    #: delta is part measurement (time integrals, retired ops) and part
    #: extrapolation of the steady per-epoch profile.
    warped: bool = False

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def flow_for_core(self, core_id: int) -> List[MFlow]:
        return [f for f in self.flows if f.core_id == core_id]

    def get(self, scope: str, event: str, default: float = 0.0) -> float:
        return self.delta.get((scope, event), default)


class SnapshotTaker:
    """Stateful reader turning absolute counters into epoch deltas."""

    def __init__(self, registry: CounterRegistry) -> None:
        self._registry = registry
        self._previous: Dict[CounterKey, float] = {}
        self._previous_time = 0.0

    def take(self, now: float, flows: Optional[List[MFlow]] = None) -> Snapshot:
        current = self._registry.snapshot(now)
        snapshot = Snapshot(
            t_start=self._previous_time,
            t_end=now,
            delta=counter_delta(current, self._previous),
            flows=list(flows or []),
        )
        for flow in snapshot.flows:
            flow.attach_snapshot(snapshot.snapshot_id)
        self._previous = current
        self._previous_time = now
        return snapshot

    def take_extrapolated(
        self,
        now: float,
        steady: Mapping[CounterKey, float],
        scale: float,
        flows: Optional[List[MFlow]] = None,
    ) -> Snapshot:
        """A synthetic epoch snapshot for a warped (fast-forwarded) span.

        Almost every counter gets ``scale`` x its steady per-epoch value:
        the warp's whole premise is that the steady profile is the best
        estimator for the skipped span.  The exceptions are counters
        whose movement over the jump is exact bookkeeping rather than an
        estimate - the clock itself and the instruction/op retirement
        booked by ``Core.skip_ops`` - which keep their natural delta.
        (Time-integral counters also move "naturally" over a jump, but
        only as ``instantaneous depth x span``, a worse estimator of the
        steady mean than the extrapolation, so they do not.)  The
        baseline then resets to the post-jump state, so the following
        exact (verification) epoch diffs cleanly.
        """
        current = self._registry.snapshot(now)
        natural = counter_delta(current, self._previous)
        merged: Dict[CounterKey, float] = {}
        for key, value in steady.items():
            scaled = value * scale
            if scaled != 0.0:
                merged[key] = scaled
        for key, value in natural.items():
            if value != 0.0 and key[1] in _EXACT_OVER_WARP:
                merged[key] = value
        snapshot = Snapshot(
            t_start=self._previous_time,
            t_end=now,
            delta=merged,
            flows=list(flows or []),
            warped=True,
        )
        for flow in snapshot.flows:
            flow.attach_snapshot(snapshot.snapshot_id)
        self._previous = current
        self._previous_time = now
        return snapshot
