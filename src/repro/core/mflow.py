"""mFlow: the unit of CXL.mem profiling (section 4.2).

A memory flow is ``Core_i <-> DIMM_j``: every load, store and prefetch a
pinned thread exchanges with one DIMM, in committed order.  It is
application-dependent (lifetime = workload), location-sensitive (new flow
on thread migration or first touch of a new DIMM) and bidirectional.  An
application therefore owns up to ``cores x DIMMs`` flows, and each flow
accumulates a time-ordered list of snapshots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

_flow_ids = itertools.count(1)


@dataclass
class MFlow:
    """One Core_i <-> DIMM_j memory flow."""

    pid: int
    core_id: int
    node_id: int
    node_kind: str                  # "local_ddr" | "remote_ddr" | "cxl"
    app_name: str = ""
    flow_id: int = field(default_factory=lambda: next(_flow_ids))
    created_at: float = 0.0
    ended_at: Optional[float] = None
    snapshot_ids: List[int] = field(default_factory=list)

    @property
    def is_cxl(self) -> bool:
        return self.node_kind == "cxl"

    @property
    def alive(self) -> bool:
        return self.ended_at is None

    @property
    def key(self) -> str:
        return f"pid{self.pid}.core{self.core_id}.node{self.node_id}"

    def end(self, time: float) -> None:
        self.ended_at = time

    def attach_snapshot(self, snapshot_id: int) -> None:
        self.snapshot_ids.append(snapshot_id)


class MFlowRegistry:
    """Tracks live flows; creates one lazily per (pid, core, node)."""

    def __init__(self) -> None:
        self._flows: dict = {}

    def get_or_create(
        self,
        pid: int,
        core_id: int,
        node_id: int,
        node_kind: str,
        app_name: str = "",
        now: float = 0.0,
    ) -> MFlow:
        key = (pid, core_id, node_id)
        flow = self._flows.get(key)
        if flow is None or not flow.alive:
            flow = MFlow(
                pid=pid,
                core_id=core_id,
                node_id=node_id,
                node_kind=node_kind,
                app_name=app_name,
                created_at=now,
            )
            self._flows[key] = flow
        return flow

    def flows_of(self, pid: Optional[int] = None) -> List[MFlow]:
        flows = list(self._flows.values())
        if pid is not None:
            flows = [f for f in flows if f.pid == pid]
        return sorted(flows, key=lambda f: f.flow_id)

    def cxl_flows(self) -> List[MFlow]:
        return [f for f in self._flows.values() if f.is_cxl]

    def end_all(self, pid: int, now: float) -> None:
        for flow in self._flows.values():
            if flow.pid == pid and flow.alive:
                flow.end(now)

    def __len__(self) -> int:
        return len(self._flows)
