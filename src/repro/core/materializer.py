"""PFMaterializer: cross-snapshot synthesis (section 4.6).

Every snapshot is compacted into hierarchical records - edges, vertices,
mFlows and paths - and inserted into the time-series database.  Workflows
then run Flux-like query pipelines to surface consistent execution
characteristics: data locality phases (window clustering), predictability
(Holt-Winters), trends/anomalies (TSA decomposition) and cross-application
interference (Pearson correlation of aligned series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..pmu.views import CorePMUView, CXLDeviceView, M2PCIeView, cxl_node_ids
from ..tsdb import (
    TimeSeriesDB,
    Window,
    cluster_windows,
    decompose,
    detect_period,
    holt_winters,
    pearsonr,
)
from .builder import FAMILIES, PFBuilder, PathMap
from .mflow import MFlow
from .snapshot import Snapshot

PATH_SET = "path_set"
VERTEX_SET = "vertex_set"
EDGE_SET = "edge_set"
FLOW_SET = "mflow_set"


@dataclass
class LocalityReport:
    """Output of the LLC temporal-locality workflow (section 4.6's example)."""

    pid: int
    component: str
    hits_series: List[float]
    windows: List[Window]
    forecast: List[float]
    trend: List[float]
    anomalies: List[int]
    period: Optional[int]

    @property
    def stable_phase_length(self) -> int:
        if not self.windows:
            return 0
        return max(w.length for w in self.windows)

    @property
    def predictable(self) -> bool:
        """Forecast error within 25% of the series scale -> predictable."""
        if not self.forecast or len(self.hits_series) < 4:
            return False
        scale = max(abs(v) for v in self.hits_series) or 1.0
        actual = self.hits_series[-1]
        return abs(self.forecast[0] - actual) <= 0.25 * scale


class PFMaterializer:
    """Snapshot digests in, time-series insights out.

    ``db`` defaults to a fresh unbounded :class:`TimeSeriesDB`; streaming
    callers pass one with a retention policy.  Every record lands through
    the :meth:`_insert` hook so subclasses (``repro.live``'s incremental
    materializer) can maintain rolling per-series state alongside the
    batch store without re-deriving the record layout.
    """

    def __init__(
        self, socket: int = 0, db: Optional[TimeSeriesDB] = None
    ) -> None:
        self.db = db if db is not None else TimeSeriesDB()
        self._builder = PFBuilder(socket)
        self.socket = socket
        self._ingested = 0

    def _insert(
        self,
        measurement: str,
        timestamp: float,
        tags: Dict[str, str],
        fields: Dict[str, float],
    ) -> None:
        """Single funnel for every materialized record (subclass hook)."""
        self.db.insert(measurement, timestamp, tags=tags, fields=fields)

    # -- ingestion ------------------------------------------------------

    def ingest(self, snapshot: Snapshot, path_map: Optional[PathMap] = None) -> None:
        """Compact one snapshot into path/vertex/edge/flow records."""
        if path_map is None:
            path_map = self._builder.build(snapshot)
        t = snapshot.t_end
        pid_by_core: Dict[int, MFlow] = {}
        for flow in snapshot.flows:
            pid_by_core[flow.core_id] = flow
        for core_id, families in path_map.per_core.items():
            flow = pid_by_core.get(core_id)
            pid = flow.pid if flow else -1
            view = CorePMUView(snapshot.delta, core_id)
            for family in FAMILIES:
                components = families.get(family, {})
                core_hits = sum(v or 0.0 for v in components.values())
                for dst, scenario in (
                    ("LLC", "l3_hit"),
                    ("CXL", "cxl_dram"),
                    ("DRAM", "local_dram"),
                ):
                    hits = (
                        view.ocr(family, scenario)
                        if family != "HWPF"
                        else view.ocr("HWPF", scenario)
                        + view.ocr("HWPF_L1", scenario)
                        + view.ocr("HWPF_RFO", scenario)
                    )
                    self._insert(
                        PATH_SET,
                        t,
                        tags={
                            "pid": str(pid),
                            "core": str(core_id),
                            "path": family,
                            "dst": dst,
                        },
                        fields={"hits": hits, "core_hits": core_hits},
                    )
            self._insert(
                VERTEX_SET,
                t,
                tags={"component": "core", "core": str(core_id), "pid": str(pid)},
                fields={
                    "l1_hits": view.l1_hits,
                    "l1_misses": view.l1_misses,
                    "l2_stall": view.l2_stall_cycles,
                    "l1_stall": view.l1_stall_cycles,
                    "llc_stall": view.l3_stall_cycles,
                    "ops": view.ops_completed,
                    "demand_read_latency": view.avg_demand_read_latency,
                },
            )
        for node in cxl_node_ids(snapshot.delta):
            m2p = M2PCIeView(snapshot.delta, node)
            device = CXLDeviceView(snapshot.delta, node)
            duration = max(snapshot.duration, 1.0)
            self._insert(
                EDGE_SET,
                t,
                tags={"edge": f"flexbus{node}"},
                fields={
                    "loads": m2p.data_responses,
                    "stores": m2p.write_acks,
                    "queue_occupancy": m2p.ingress_occupancy / duration,
                    "device_queue": device.mc_occupancy / duration,
                },
            )
        for flow in snapshot.flows:
            self._insert(
                FLOW_SET,
                t,
                tags={
                    "pid": str(flow.pid),
                    "core": str(flow.core_id),
                    "node": str(flow.node_id),
                    "kind": flow.node_kind,
                    "flow": str(flow.flow_id),
                },
                fields={"alive": 1.0},
            )
        self._ingested += 1

    @property
    def snapshots_ingested(self) -> int:
        return self._ingested

    # -- workflows -----------------------------------------------------------

    def locality(
        self,
        pid: int,
        component: str = "LLC",
        path: str = "DRd",
        window_tolerance: float = 0.2,
    ) -> LocalityReport:
        """Section 4.6's worked example: LLC temporal locality of one app.

        1. scope the query to the app's paths whose destination is ``component``;
        2. pull the hit series and overall stats;
        3. cluster snapshots into stable windows;
        4. run TSA + Holt-Winters for trend/seasonality/predictability;
        5. leave cross-app correlation to :meth:`correlate`.
        """
        query = self.db.from_(PATH_SET).where(
            pid=str(pid), path=path, dst=component
        )
        series = query.values("hits")
        if not series:
            raise ValueError(
                f"no snapshots for pid={pid} path={path} dst={component}"
            )
        windows = cluster_windows(series, tolerance=window_tolerance)
        period = detect_period(series)
        decomposition = decompose(series, period=period)
        forecast = (
            holt_winters(series, horizon=1, season_length=period)
            if len(series) >= 2
            else list(series)
        )
        return LocalityReport(
            pid=pid,
            component=component,
            hits_series=series,
            windows=windows,
            forecast=forecast,
            trend=decomposition.trend,
            anomalies=decomposition.anomalies(),
            period=period,
        )

    def correlate(
        self, pid_a: int, pid_b: int, field: str = "hits",
        path: str = "DRd", dst: str = "LLC",
    ) -> float:
        """Pearson correlation between two apps' aligned snapshot series."""
        qa = self.db.from_(PATH_SET).where(pid=str(pid_a), path=path, dst=dst)
        qb = self.db.from_(PATH_SET).where(pid=str(pid_b), path=path, dst=dst)
        return qa.pearsonr_with(qb, field)

    def bandwidth_correlation(self, flows: Sequence[Tuple[int, int]]) -> float:
        """Case 5 (Figure 11-b): correlation between per-flow CXL request
        frequency and application-level throughput across flows.

        ``flows`` is a list of (pid, core) pairs sharing the CXL link.
        """
        freqs: List[float] = []
        throughputs: List[float] = []
        for pid, core in flows:
            requests = self.db.from_(PATH_SET).where(
                pid=str(pid), core=str(core), dst="CXL"
            )
            ops = self.db.from_(VERTEX_SET).where(
                component="core", core=str(core)
            )
            if requests.empty or ops.empty:
                continue
            freqs.append(requests.sum("hits"))
            throughputs.append(ops.sum("ops"))
        if len(freqs) < 2:
            raise ValueError("need at least two flows to correlate")
        return pearsonr(freqs, throughputs)

    def locality_shift(
        self, pid: int, boundary: float, path: str = "DRd", dst: str = "LLC"
    ) -> Tuple[float, float]:
        """Mean hits before/after a disturbance at time ``boundary``
        (Case 6: how launching a neighbour changes an app's locality)."""
        query = self.db.from_(PATH_SET).where(pid=str(pid), path=path, dst=dst)
        before = query.range(stop=boundary)
        after = query.range(start=boundary)
        if before.empty or after.empty:
            raise ValueError("boundary leaves an empty side")
        return before.mean("hits"), after.mean("hits")

    def flexbus_utilization_series(self, node: int = 0) -> List[float]:
        return self.db.from_(EDGE_SET).where(edge=f"flexbus{node}").values(
            "queue_occupancy"
        )

    # -- extension workflows (section 4.6's closing list) ---------------------

    def compute_bursts(self, core_id: int, z_threshold: float = 2.0) -> List[int]:
        """Computing-burst detection: epochs where a core's completed-op
        rate is a residual outlier of its own series."""
        series = self.db.from_(VERTEX_SET).where(
            component="core", core=str(core_id)
        ).values("ops")
        if len(series) < 4:
            return []
        decomposition = decompose(series)
        return decomposition.anomalies(z_threshold=z_threshold)

    def orthogonality(self, core_a: int, core_b: int) -> float:
        """Execution orthogonality between two co-located cores.

        Pearson correlation of their per-epoch op-completion series:
        ~0 means the tenants progress independently; strongly negative
        means they contend (one's burst is the other's stall); positive
        means they breathe together (shared phase behaviour).
        """
        qa = self.db.from_(VERTEX_SET).where(component="core", core=str(core_a))
        qb = self.db.from_(VERTEX_SET).where(component="core", core=str(core_b))
        return qa.pearsonr_with(qb, "ops")

    def spatial_locality(self, pid: int, path: str = "DRd") -> float:
        """Spatial-locality proxy: the fraction of the app's beyond-L2
        traffic absorbed by nearer tiers (LLC vs memory), averaged over
        snapshots.  Dense, spatially-local apps keep this high; scattered
        access patterns push it toward zero."""
        llc = self.db.from_(PATH_SET).where(
            pid=str(pid), path=path, dst="LLC"
        ).values("hits")
        dram = self.db.from_(PATH_SET).where(
            pid=str(pid), path=path, dst="DRAM"
        ).values("hits")
        cxl = self.db.from_(PATH_SET).where(
            pid=str(pid), path=path, dst="CXL"
        ).values("hits")
        if not llc:
            raise ValueError(f"no snapshots for pid={pid}")
        ratios = []
        for i in range(len(llc)):
            near = llc[i]
            far = (dram[i] if i < len(dram) else 0.0) + (
                cxl[i] if i < len(cxl) else 0.0
            )
            total = near + far
            if total > 0:
                ratios.append(near / total)
        return sum(ratios) / len(ratios) if ratios else 0.0
