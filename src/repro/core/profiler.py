"""PathFinder orchestration (section 4.1's workflow, Figure 5-c).

``PathFinder.run()`` installs the applications on the machine, then drives
the simulation in scheduling epochs.  At each epoch boundary it takes a
PMU snapshot, associates it with the live mFlows, and pushes it through
the four techniques: PFBuilder (path map), PFEstimator (stall breakdown),
PFAnalyzer (queue/culprit analysis) and PFMaterializer (time-series
ingestion).  The per-epoch results are collected into an
:class:`EpochResult` list that the case studies and the CLI render.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

logger = logging.getLogger(__name__)

from ..obs import FlightRecorder, TraceReport, persist_trace
from ..sim.machine import Machine
from ..sim.warp import WarpController, WarpReport, coerce_fidelity
from .analyzer import AnalyzerReport, PFAnalyzer
from .builder import PFBuilder, PathMap
from .estimator import PFEstimator, StallBreakdown
from .materializer import PFMaterializer
from .mflow import MFlow, MFlowRegistry
from .snapshot import Snapshot, SnapshotTaker
from .spec import AppSpec, ProfileSpec, ProfilingMode


@dataclass
class EpochResult:
    """Everything PathFinder derived from one snapshot."""

    epoch: int
    snapshot: Snapshot
    path_map: PathMap
    stalls: StallBreakdown
    queues: AnalyzerReport

    @property
    def t_end(self) -> float:
        return self.snapshot.t_end


@dataclass
class ProfileResult:
    """A full profiling session: epoch series + final aggregate."""

    epochs: List[EpochResult] = field(default_factory=list)
    final: Optional[EpochResult] = None
    flows: List[MFlow] = field(default_factory=list)
    total_cycles: float = 0.0
    # Flight-recorder output; None unless the spec carried a TraceSpec.
    trace: Optional[TraceReport] = None
    # Fast-forward audit trail; None unless fidelity was adaptive AND at
    # least one warp fired (exact runs never carry a report).
    warp: Optional[WarpReport] = None

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def series(self, fn) -> List[float]:
        """Map an extractor over the epoch results."""
        return [fn(e) for e in self.epochs]


class PathFinder:
    """The profiler: wraps a machine and a profiling specification.

    With ``live`` (a :class:`repro.live.LiveSpec` or ``True``), the
    materializer becomes the streaming :class:`~repro.live.LiveMaterializer`
    (retention-tiered TSDB + O(1) rolling workflows), sim queues are
    delta-sampled each epoch, and a per-epoch digest is published to
    ``self.live_bus`` (and to ``on_epoch``, if given) *while the run is
    in flight* - the ingestion path the serve daemon streams from.
    """

    def __init__(
        self,
        machine: Machine,
        spec: ProfileSpec,
        live=None,
        on_epoch=None,
        fidelity=None,
    ) -> None:
        self.machine = machine
        self.spec = spec
        warp_spec = coerce_fidelity(fidelity)
        self.warp: Optional[WarpController] = None
        if warp_spec is not None:
            self.warp = WarpController(machine, warp_spec, spec.epoch_cycles)
        self.builder = PFBuilder()
        self.estimator = PFEstimator()
        self.analyzer = PFAnalyzer()
        self.live = None
        self.live_bus = None
        self._on_epoch = on_epoch
        self._sampler = None
        if live is not None and live is not False:
            # Imported lazily: repro.live imports this module's siblings.
            from ..live import (
                IngestionBus,
                LiveMaterializer,
                QueueSampler,
                coerce_live,
            )

            self.live = coerce_live(live)
            self.materializer = LiveMaterializer(self.live)
            self.live_bus = IngestionBus()
            if self.live.sample_queues:
                self._sampler = QueueSampler(machine, self.materializer.db)
        else:
            self.materializer = PFMaterializer()
        self.flows = MFlowRegistry()
        self.recorder: Optional[FlightRecorder] = None
        if spec.trace is not None:
            self.recorder = FlightRecorder(
                machine.engine,
                sample_every=spec.trace.sample_every,
                max_requests=spec.trace.max_requests,
            )
            machine.attach_recorder(self.recorder)
        self._taker = SnapshotTaker(machine.pmu)
        self._running_apps: Dict[int, AppSpec] = {}
        self._pending_starts = 0

    # -- setup -----------------------------------------------------------

    def _install(self, app: AppSpec) -> None:
        workload = app.workload
        if app.membind is not None:
            workload.install(self.machine, app.membind)
            nodes = [app.membind]
        elif app.interleave is not None:
            local, cxl, ratio = app.interleave
            workload.install_interleaved(self.machine, local, cxl, ratio)
            nodes = [local, cxl]
        else:
            # Caller already placed the pages (e.g. striped across a pool).
            nodes = list(app.preinstalled)
        for node_id in nodes:
            node = self.machine.address_space.node(node_id)
            self.flows.get_or_create(
                pid=app.pid,
                core_id=app.core,
                node_id=node_id,
                node_kind=node.kind.value,
                app_name=app.name,
                now=self.machine.now,
            )
        self._running_apps[app.pid] = app

        def finished(pid=app.pid) -> None:
            self.flows.end_all(pid, self.machine.now)
            self._running_apps.pop(pid, None)

        self.machine.pin(app.core, iter(workload), on_done=finished)

    def _deferred_install(self, app: AppSpec) -> None:
        self._pending_starts -= 1
        self._install(app)

    # -- thread migration (mFlow location sensitivity, section 4.2) --------

    def migrate(self, pid: int, new_core: int) -> None:
        """Move a profiled application to another core.

        The old (pid, core, node) flows end and fresh flows begin on the
        new core - "we would create and initiate a new mFlow when the
        thread migrates to a new core".
        """
        app = self._running_apps.get(pid)
        if app is None:
            raise KeyError(f"pid {pid} is not running")
        old_flows = [f for f in self.flows.flows_of(pid) if f.alive]

        def migrated() -> None:
            now = self.machine.now
            for flow in old_flows:
                flow.end(now)
            for flow in old_flows:
                self.flows.get_or_create(
                    pid=pid,
                    core_id=new_core,
                    node_id=flow.node_id,
                    node_kind=flow.node_kind,
                    app_name=flow.app_name,
                    now=now,
                )
            app.core = new_core

        self.machine.migrate(app.core, new_core, on_migrated=migrated)

    def schedule_migration(self, pid: int, new_core: int, at: float) -> None:
        """Arrange a migration at an absolute cycle time."""
        self.machine.engine.at(at, lambda: self._try_migrate(pid, new_core))

    def _try_migrate(self, pid: int, new_core: int) -> None:
        if pid in self._running_apps:
            self.migrate(pid, new_core)

    # -- main loop -----------------------------------------------------------

    def run(self) -> ProfileResult:
        for app in self.spec.apps:
            if app.start_at > 0:
                self._pending_starts += 1
                self.machine.engine.after(
                    app.start_at, lambda a=app: self._deferred_install(a)
                )
            else:
                self._install(app)
        result = ProfileResult()
        epoch = 0
        while (
            not self.machine.all_idle or self._pending_starts > 0
        ) and epoch < self.spec.max_epochs:
            epoch_start = self.machine.now
            self.machine.run(until=self.machine.now + self.spec.epoch_cycles)
            epoch += 1
            # A flow belongs to the epoch if it was alive at any point in it.
            live = [
                f
                for f in self.flows.flows_of()
                if f.alive or (f.ended_at is not None and f.ended_at > epoch_start)
            ]
            if self.recorder is not None:
                self.recorder.epoch_mark(self.machine.now)
            snapshot = self._taker.take(self.machine.now, flows=live)
            epoch_result = self._process(epoch, snapshot)
            if self.live is not None:
                self._publish_epoch(epoch_result)
            if self.spec.mode is ProfilingMode.CONTINUOUS:
                result.epochs.append(epoch_result)
            result.final = epoch_result
            if self.warp is not None:
                # Exact epochs feed the steady-state detector (and judge
                # the verification epoch after a warp); once armed, skip
                # ahead before paying for the next simulated epoch.
                self.warp.observe(snapshot.delta)
                epoch = self._maybe_warp(epoch, result)
        result.flows = self.flows.flows_of()
        result.total_cycles = self.machine.now
        if self.warp is not None and self.warp.report.events:
            result.warp = self.warp.report
        if self.recorder is not None:
            result.trace = self.recorder.report()
            persist_trace(
                self.materializer.db, result.trace, timestamp=self.machine.now
            )
        if self.live_bus is not None:
            self.live_bus.close()
        return result

    def _maybe_warp(self, epoch: int, result: ProfileResult) -> int:
        """Fast-forward if the warp is armed; returns the advanced epoch.

        A successful warp compresses ``skip_epochs`` epochs into one
        synthetic :class:`EpochResult` (its snapshot is flagged
        ``warped``) and advances the epoch counter by the span it covers,
        so ``max_epochs`` bounds the same amount of simulated work either
        way.  The next loop iteration then runs exactly - that is the
        verification epoch the controller judges in ``observe``.
        """
        assert self.warp is not None
        if (
            not self.warp.armed
            or self._pending_starts > 0
            or self.machine.all_idle
            or epoch >= self.spec.max_epochs
        ):
            return epoch
        attempt = self.warp.attempt()
        if attempt is None:
            return epoch
        steady, scale, event = attempt
        now = self.machine.now
        epoch += max(1, int(round(scale)))
        event.epoch = epoch
        live = [
            f
            for f in self.flows.flows_of()
            if f.alive or (f.ended_at is not None and f.ended_at > event.t_start)
        ]
        if self.recorder is not None:
            self.recorder.epoch_mark(now)
            self.recorder.warp_mark(event.t_start, now)
        snapshot = self._taker.take_extrapolated(now, steady, scale, flows=live)
        epoch_result = self._process(epoch, snapshot)
        if self.live is not None:
            self._publish_epoch(epoch_result)
        if self.spec.mode is ProfilingMode.CONTINUOUS:
            result.epochs.append(epoch_result)
        result.final = epoch_result
        return epoch

    def _publish_epoch(self, epoch_result: EpochResult) -> None:
        """Stream one epoch's digest to live consumers (bus + callback)."""
        from ..live import epoch_digest

        queues = None
        if self._sampler is not None:
            samples = self._sampler.sample(self.machine.now)
            queues = self._sampler.hottest(samples, self.live.top_k)
        digest = epoch_digest(
            epoch_result, self.materializer, top_k=self.live.top_k, queues=queues
        )
        self.live_bus.publish(digest)
        if self._on_epoch is not None:
            self._on_epoch(digest)

    def _process(self, epoch: int, snapshot: Snapshot) -> EpochResult:
        path_map = self.builder.build(snapshot)
        stalls = self.estimator.breakdown(snapshot)
        queues = self.analyzer.analyze(snapshot)
        self.materializer.ingest(snapshot, path_map)
        if logger.isEnabledFor(logging.DEBUG):
            culprit = queues.culprit()
            logger.debug(
                "epoch %d [%0.0f..%0.0f]: cxl_hits=%0.0f culprit=%s",
                epoch, snapshot.t_start, snapshot.t_end, path_map.cxl_hits(),
                f"{culprit.path}@{culprit.component}" if culprit else "-",
            )
        return EpochResult(
            epoch=epoch,
            snapshot=snapshot,
            path_map=path_map,
            stalls=stalls,
            queues=queues,
        )


def profile(
    machine: Machine, spec: ProfileSpec
) -> ProfileResult:
    """Deprecated one-call wrapper; use :func:`repro.api.run` instead.

    The :mod:`repro.api` facade adds result caching and campaign
    execution on top of the same single-run semantics.
    """
    import warnings

    warnings.warn(
        "repro.core.profiler.profile() is deprecated; use repro.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return PathFinder(machine, spec).run()
