"""PFEstimator: CXL-induced pipeline-stall breakdown (section 4.4, ALG 2).

Mixed local/CXL traffic shares every stall counter, so splitting stalls by
miss-target proportion alone is inaccurate.  PFEstimator instead walks the
data path *bottom-up*, the way reverse traceroute reconstructs a path from
the far end:

1. **CXL DIMM / FlexBus RC / host uncore / CHA** (ALG 2 lines 2-27): the
   per-request residency beyond the LLC is profiled from the uncore
   counters - packing-buffer and device-MC occupancy at the DIMM, ingress
   and link-serialisation occupancy at the root port, TOR occupancy of
   CXL-bound misses at the CHA - and normalised into fractions of the
   core-observed CXL load latency.  (IMC RPQ/WPQ occupancy attributed to
   the CXL DIMM is ~zero because CXL bypasses the IMC, Figure 4-a.)
2. **In-core (LLC -> L2 -> LFB -> L1D -> SB)**: the nested stall counters
   are differenced so each level is charged only the stall *increment* it
   adds (``stalls_l1d - stalls_l2`` is the stall served by L2, and so on);
   the final ``stalls_l3`` residue - time actually spent waiting beyond
   the LLC - is distributed over LLC/CHA/FlexBus+MC/CXL-DIMM using the
   stage-1 residency fractions.  Each level's stall is further scaled by
   the latency-weighted CXL share of its traffic, so a slow CXL fill
   outweighs several fast DDR fills.

Per-path splitting at levels where the core PMU cannot distinguish access
types (section 5.9) uses each path's miss counts at that level as weights,
mirroring the real tool's necessity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..pmu.views import (
    CHAPMUView,
    CXLDeviceView,
    CorePMUView,
    IMCView,
    M2PCIeView,
    core_ids,
    cxl_node_ids,
)
from .snapshot import Snapshot

COMPONENTS = ("SB", "L1D", "LFB", "L2", "LLC", "CHA", "FlexBus+MC", "CXL_DIMM")
FAMILIES = ("DRd", "RFO", "HWPF", "DWr")

# White-box split of the downstream *service* time (the part that is pure
# latency, not queueing) between the link complex and the device: two link
# crossings vs controller + media.  Section 4.5 sanctions white-box
# modelling of opaque hardware.
_LINK_SERVICE_SHARE = 0.45


@dataclass
class StallBreakdown:
    """CXL-induced stall cycles per (core, path family, component)."""

    snapshot_id: int
    per_core: Dict[int, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def aggregate(self, family: str) -> Dict[str, float]:
        out = {component: 0.0 for component in COMPONENTS}
        for core_stats in self.per_core.values():
            for component, value in core_stats.get(family, {}).items():
                out[component] += value
        return out

    def shares(self, family: str) -> Dict[str, float]:
        """Figure 6's percentage view: each component's share of the total."""
        agg = self.aggregate(family)
        total = sum(agg.values())
        if total <= 0:
            return {component: 0.0 for component in COMPONENTS}
        return {component: value / total for component, value in agg.items()}

    def core_total(self, core_id: int, family: str) -> float:
        return sum(self.per_core.get(core_id, {}).get(family, {}).values())

    def component(self, family: str, component: str) -> float:
        return self.aggregate(family).get(component, 0.0)

    def uncore_fraction(self, family: str) -> float:
        """Share of stalls at FlexBus+MC and the DIMM (fft: ~83% for DRd)."""
        shares = self.shares(family)
        return shares["FlexBus+MC"] + shares["CXL_DIMM"]


@dataclass
class DownstreamProfile:
    """Per-CXL-request residency fractions beyond the LLC lookup."""

    frac_llc: float = 0.0
    frac_cha: float = 0.0
    frac_flex: float = 0.0
    frac_dimm: float = 0.0
    mean_cxl_latency: float = 0.0

    @property
    def valid(self) -> bool:
        return self.mean_cxl_latency > 0


class PFEstimator:
    """Runs the ALG-2 back-propagation over one snapshot."""

    def __init__(self, socket: int = 0) -> None:
        self.socket = socket

    # -- public API ---------------------------------------------------------

    def breakdown(
        self, snapshot: Snapshot, cxl_node_id: Optional[int] = None
    ) -> StallBreakdown:
        delta = snapshot.delta
        nodes = cxl_node_ids(delta)
        if cxl_node_id is not None:
            nodes = [n for n in nodes if n == cxl_node_id]
        cores = core_ids(delta)
        result = StallBreakdown(snapshot_id=snapshot.snapshot_id)
        core_views = {cid: CorePMUView(delta, cid) for cid in cores}
        cha = CHAPMUView(delta, self.socket)
        profile = self._downstream_profile(delta, nodes, core_views, cha)
        for cid in cores:
            view = core_views[cid]
            result.per_core[cid] = {
                family: self._attribute(view, family, profile)
                for family in FAMILIES
            }
        return result

    @staticmethod
    def _cxl_responses(view: CorePMUView, family: str) -> float:
        """CXL-served responses of one family on one core (ocr counters)."""
        if family == "HWPF":
            return (
                view.ocr("HWPF", "cxl_dram")
                + view.ocr("HWPF_L1", "cxl_dram")
                + view.ocr("HWPF_RFO", "cxl_dram")
            )
        return view.ocr(family, "cxl_dram")

    # -- stages 1-4: downstream residency profile -------------------------------

    def _downstream_profile(
        self,
        delta,
        nodes: List[int],
        core_views: Mapping[int, CorePMUView],
        cha: CHAPMUView,
    ) -> DownstreamProfile:
        """ALG 2 lines 2-27 condensed into per-request residencies."""
        served = 0.0
        flex_queue = dimm_queue = 0.0
        for node in nodes:
            device = CXLDeviceView(delta, node)
            m2p = M2PCIeView(delta, node)
            served += m2p.data_responses + m2p.write_acks
            flex_queue += m2p.ingress_occupancy + m2p.get("unc_m2p_link_occupancy")
            dimm_queue += (
                device.pack_buf_occupancy("mem_req")
                + device.pack_buf_occupancy("mem_data")
                + device.mc_occupancy
            )
        # Stage 3 (host uncore): IMC occupancy attributed to the CXL DIMM.
        # CXL traffic bypasses the IMC (Figure 4-a), so this term is zero;
        # the call documents ALG 2 line 21.
        _ = IMCView(delta, 0)
        if served <= 0:
            return DownstreamProfile()
        q_flex = flex_queue / served
        q_dimm = dimm_queue / served
        # Core-observed mean latencies (load-latency sampling).
        cxl_lat = self._weighted_latency(core_views, ("CXL_DRAM",))
        llc_lat = self._weighted_latency(core_views, ("local_LLC", "snc_LLC"))
        if cxl_lat <= 0:
            return DownstreamProfile()
        if llc_lat <= 0:
            llc_lat = 0.15 * cxl_lat  # cold-LLC fallback: nominal lookup cost
        # CHA own queueing: TOR residency minus everything downstream of it.
        tor_occ = sum(
            cha.tor_occupancy(family, "miss_cxl")
            for family in ("DRd", "RFO", "HWPF")
        )
        tor_n = sum(
            cha.tor_inserts(family, "miss_cxl")
            for family in ("DRd", "RFO", "HWPF")
        )
        per_req_tor = tor_occ / tor_n if tor_n > 0 else 0.0
        service_rest = max(0.0, cxl_lat - llc_lat - q_flex - q_dimm)
        cha_own = max(0.0, per_req_tor - q_flex - q_dimm - service_rest - llc_lat)
        flex_total = q_flex + _LINK_SERVICE_SHARE * service_rest
        dimm_total = q_dimm + (1.0 - _LINK_SERVICE_SHARE) * service_rest
        denominator = llc_lat + cha_own + flex_total + dimm_total
        if denominator <= 0:
            return DownstreamProfile()
        return DownstreamProfile(
            frac_llc=llc_lat / denominator,
            frac_cha=cha_own / denominator,
            frac_flex=flex_total / denominator,
            frac_dimm=dimm_total / denominator,
            mean_cxl_latency=cxl_lat,
        )

    @staticmethod
    def _weighted_latency(
        core_views: Mapping[int, CorePMUView], locations: Tuple[str, ...]
    ) -> float:
        total = count = 0.0
        for view in core_views.values():
            for location in locations:
                mean, n = view.latency_sample(location)
                total += mean * n
                count += n
        return total / count if count else 0.0

    # -- stage 5: in-core back-propagation ---------------------------------------

    def _attribute(
        self, view: CorePMUView, family: str, profile: DownstreamProfile
    ) -> Dict[str, float]:
        out = {component: 0.0 for component in COMPONENTS}
        if family == "DWr":
            # SB entries drain when the store's ownership (RFO) or
            # write-back completes, so the CXL share of the write pipeline
            # covers both the RFO and the modified-write streams.
            wb_cxl = view.ocr("DWr", "cxl_dram") + view.ocr("RFO", "cxl_dram")
            wb_all = view.ocr("DWr", "any_response") + view.ocr(
                "RFO", "any_response"
            )
            share = wb_cxl / wb_all if wb_all > 0 else 0.0
            out["SB"] = (view.sb_stall_rd_wr + view.sb_stall_wr_only) * share
            return out
        if not profile.valid:
            return out
        share = self._latency_weighted_cxl_share(view, family)
        weight = self._path_weight(view, family)
        l1 = view.l1_stall_cycles
        l2 = view.l2_stall_cycles
        l3 = view.l3_stall_cycles
        fb_full = view.lfb_full_stall
        # Increment each level adds over the level below it.
        l1_increment = max(0.0, l1 - l2) * share["l1"] * weight["l1"]
        lfb_own = min(fb_full * share["l1"] * weight["l1"], l1_increment)
        out["LFB"] = lfb_own
        out["L1D"] = l1_increment - lfb_own
        out["L2"] = max(0.0, l2 - l3) * share["l2"] * weight["l2"]
        # Residue: stall cycles spent waiting beyond the LLC, split by the
        # downstream residency profile (stages 1-4).
        beyond = l3 * share["llc"] * weight["llc"]
        out["LLC"] = beyond * profile.frac_llc
        out["CHA"] = beyond * profile.frac_cha
        out["FlexBus+MC"] = beyond * profile.frac_flex
        out["CXL_DIMM"] = beyond * profile.frac_dimm
        return out

    def _latency_weighted_cxl_share(
        self, view: CorePMUView, family: str
    ) -> Dict[str, float]:
        """Fraction of stall pressure attributable to CXL at each level.

        Weight = (CXL responses x CXL latency) / sum over serve locations,
        so one 700-cycle CXL fill outweighs several 200-cycle DDR fills.
        """
        cxl_mean, _count = view.latency_sample("CXL_DRAM")
        if cxl_mean == 0.0:
            cxl_mean = 1.0
        cxl = self._cxl_responses(view, family) * cxl_mean
        other = 0.0
        for location, scenario in (
            ("local_DRAM", "local_dram"),
            ("remote_DRAM", "remote_dram"),
            ("local_LLC", "l3_hit"),
            ("snc_LLC", "snc_cache"),
            ("remote_LLC", "remote_cache"),
        ):
            mean, _n = view.latency_sample(location)
            other += view.ocr(family, scenario) * (mean if mean > 0 else 1.0)
        total = cxl + other
        offcore_share = cxl / total if total > 0 else 0.0
        return {"l1": offcore_share, "l2": offcore_share, "llc": offcore_share}

    def _path_weight(self, view: CorePMUView, family: str) -> Dict[str, float]:
        """Split the (access-type-blind) demand stall counters across path
        families by their miss populations at each level (section 5.9)."""
        l2_misses = {f: view.l2_misses(f) for f in ("DRd", "RFO", "HWPF")}
        total_l2 = sum(l2_misses.values())
        l2_share = l2_misses.get(family, 0.0) / total_l2 if total_l2 > 0 else 0.0
        # L1-level weights: only DRd is visible at L1D/LFB; RFO/HWPF get the
        # residual proportional to their L2 presence.
        return {"l1": l2_share, "l2": l2_share, "llc": l2_share}
