"""PathFinder command-line interface.

Mirrors the paper's CLI utility: pick applications from the Table 6
catalog, pin them to cores, bind their memory to the local or CXL node,
and run a profiling session with periodic reports.

Examples::

    pathfinder run --app 519.lbm_r --node cxl --ops 20000
    pathfinder run --app fft --app barnes --node cxl --epoch 100000
    pathfinder list-apps --suite GAPBS
    pathfinder list-events --group cha
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..pmu.events import ALL_EVENTS, events_in_group
from ..sim.fabric import FABRIC_PRESETS, apply_fabric
from ..sim.machine import Machine
from ..sim.topology import emr_config, spr_config
from ..workloads.suites import APPLICATIONS, build_app, suite_names
from .profiler import PathFinder
from .report import render_epoch, render_session
from .spec import AppSpec, ProfileSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pathfinder",
        description="CXL.mem profiler over a simulated SPR/EMR server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="profile one or more applications")
    run.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    run.add_argument(
        "--node", choices=["local", "cxl"], default="cxl",
        help="memory node to bind the working sets to",
    )
    run.add_argument("--ops", type=int, default=10000, help="ops per app")
    run.add_argument("--epoch", type=float, default=50000.0,
                     help="profiling epoch length in cycles")
    run.add_argument("--machine", choices=["spr", "emr"], default="spr")
    run.add_argument("--cores", type=int, default=None,
                     help="number of simulated cores")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--per-epoch", action="store_true",
                     help="print every epoch, not just the final one")
    run.add_argument(
        "--fabric", choices=list(FABRIC_PRESETS), default=None,
        help="route CXL traffic through a switched multi-host fabric "
             "preset (see docs/FABRIC.md)",
    )
    run.add_argument(
        "--fidelity", choices=["exact", "adaptive"], default="exact",
        help="adaptive fast-forwards steady-state epochs by "
             "extrapolating counters (see docs/ENGINE.md)",
    )

    apps = sub.add_parser("list-apps", help="show the application catalog")
    apps.add_argument("--suite", default=None)

    events = sub.add_parser("list-events", help="show the PMU event catalog")
    events.add_argument(
        "--group", choices=["core", "cha", "uncore", "cxl"], default=None
    )

    case = sub.add_parser(
        "case", help="run a compact version of one case study (1-8)"
    )
    case.add_argument("--id", type=int, required=True, choices=range(1, 9))

    campaign = sub.add_parser(
        "campaign",
        help="profile an app x node grid over a worker pool with caching",
    )
    campaign.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    campaign.add_argument(
        "--node", action="append", choices=["local", "cxl"], default=None,
        help="memory node(s) to grid over (repeatable; default both)",
    )
    campaign.add_argument("--ops", type=int, default=10000, help="ops per app")
    campaign.add_argument("--epoch", type=float, default=50000.0,
                          help="profiling epoch length in cycles")
    campaign.add_argument("--machine", choices=["spr", "emr"], default="spr")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: min(4, cpus))")
    campaign.add_argument("--serial", action="store_true",
                          help="run in-process, no worker pool")
    campaign.add_argument("--cache-dir", default=None,
                          help="result cache directory (default results/cache)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="always recompute, never touch the cache")
    campaign.add_argument("--shared-cache", default=None, metavar="DIR",
                          help="shared pull-through store the local cache "
                               "hydrates from and publishes to")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-job wall-clock limit in seconds")
    campaign.add_argument("--retries", type=int, default=1,
                          help="extra attempts per failed job")
    campaign.add_argument(
        "--fabric", action="append", choices=list(FABRIC_PRESETS),
        default=None, metavar="PRESET",
        help="also grid over switched-fabric preset(s) (repeatable; "
             "jobs run app x node x {direct, presets...})",
    )
    campaign.add_argument(
        "--fidelity", choices=["exact", "adaptive"], default="exact",
        help="adaptive fast-forwards steady-state epochs; non-exact "
             "fidelity is part of each job's cache key",
    )

    trace = sub.add_parser(
        "trace",
        help="profile with the flight recorder on and report per-stage "
             "latencies",
    )
    trace.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    trace.add_argument(
        "--node", choices=["local", "cxl"], default="cxl",
        help="memory node to bind the working sets to",
    )
    trace.add_argument("--ops", type=int, default=10000, help="ops per app")
    trace.add_argument("--epoch", type=float, default=50000.0,
                       help="profiling epoch length in cycles")
    trace.add_argument("--machine", choices=["spr", "emr"], default="spr")
    trace.add_argument("--cores", type=int, default=None,
                       help="number of simulated cores")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--sample-every", type=int, default=64,
                       help="trace 1 in N requests (default 64)")
    trace.add_argument("--out", default=None,
                       help="write a Chrome trace_event JSON here "
                            "(open in Perfetto / chrome://tracing)")
    trace.add_argument("--validate", action="store_true",
                       help="compare measured per-stage queueing against "
                            "PFAnalyzer's Little's-law estimates")

    live = sub.add_parser(
        "live",
        help="streaming incremental profiling: run an app live, or "
             "attach to a daemon/fleet /v1/live firehose "
             "(see docs/OBSERVABILITY.md)",
    )
    live.add_argument(
        "--app", action="append", default=None,
        help="application to profile live (repeatable; local mode)",
    )
    live.add_argument("--node", choices=["local", "cxl"], default="cxl",
                      help="memory node to bind the working sets to")
    live.add_argument("--ops", type=int, default=10000, help="ops per app")
    live.add_argument("--epoch", type=float, default=50000.0,
                      help="profiling epoch length in cycles")
    live.add_argument("--machine", choices=["spr", "emr"], default="spr")
    live.add_argument("--seed", type=int, default=1)
    live.add_argument("--window", type=int, default=8,
                      help="rolling operator window (epochs)")
    live.add_argument("--attach", action="store_true",
                      help="stream a running daemon's /v1/live instead "
                           "of profiling locally")
    live.add_argument("--host", default="127.0.0.1",
                      help="daemon host for --attach")
    live.add_argument("--port", type=int, default=8023,
                      help="daemon port for --attach")
    live.add_argument(
        "--member", action="append", default=None, metavar="HOST:PORT",
        help="merge-stream these fleet members' /v1/live endpoints "
             "(repeatable; implies --attach)",
    )
    live.add_argument("--max-events", type=int, default=None,
                      help="stop an attached stream after N events")
    live.add_argument("--json", action="store_true",
                      help="print raw NDJSON instead of rendered lines")

    serve = sub.add_parser(
        "serve",
        help="run the profiling-as-a-service daemon (see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023,
                       help="listen port (0 = let the OS pick)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job worker processes")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max queued jobs before submissions get 429")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache directory (default results/cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a result cache")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-job wall-clock limit in seconds")
    serve.add_argument("--max-events", type=int, default=None,
                       help="default per-job simulation event budget")
    serve.add_argument("--retries", type=int, default=0,
                       help="extra attempts per failed job")
    serve.add_argument("--journal-dir", default=None,
                       help="write-ahead job journal directory; on restart "
                            "unfinished jobs are replayed from it")
    serve.add_argument("--shared-cache", default=None, metavar="DIR",
                       help="shared pull-through store the local cache "
                            "hydrates from and publishes to")
    serve.add_argument(
        "--tenant", action="append", default=None, metavar="SPEC",
        help="tenant policy 'name:weight=2,max_queued=16,"
             "max_in_flight=2,rate=5,burst=10' (repeatable; "
             "'name:3' is weight shorthand)",
    )
    serve.add_argument("--max-terminal-jobs", type=int, default=1024,
                       help="terminal job records kept in memory before "
                            "oldest-first pruning")
    serve.add_argument("--job-retention-s", type=float, default=None,
                       help="also prune terminal job records older than "
                            "this many seconds")

    submit = sub.add_parser(
        "submit", help="submit a profiling job to a running daemon"
    )
    submit.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    submit.add_argument(
        "--node", choices=["local", "cxl"], default="cxl",
        help="memory node to bind the working sets to",
    )
    submit.add_argument("--ops", type=int, default=10000, help="ops per app")
    submit.add_argument("--epoch", type=float, default=50000.0,
                        help="profiling epoch length in cycles")
    submit.add_argument("--machine", choices=["spr", "emr"], default="spr")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8023)
    submit.add_argument("--tag", default="")
    submit.add_argument("--priority", type=int, default=10,
                        help="queue priority (lower runs first)")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return immediately")
    submit.add_argument("--stream", action="store_true",
                        help="stream the job's NDJSON events while waiting")

    fleet = sub.add_parser(
        "fleet",
        help="run campaigns across a fleet of serve daemons "
             "(see docs/SERVING.md)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="shard an app x node campaign over the fleet"
    )
    fleet_run.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    fleet_run.add_argument(
        "--node", action="append", choices=["local", "cxl"], default=None,
        help="memory node(s) to grid over (repeatable; default both)",
    )
    fleet_run.add_argument("--ops", type=int, default=10000,
                           help="ops per app")
    fleet_run.add_argument("--epoch", type=float, default=50000.0,
                           help="profiling epoch length in cycles")
    fleet_run.add_argument("--machine", choices=["spr", "emr"],
                           default="spr")
    fleet_run.add_argument("--seed", type=int, default=1)
    fleet_run.add_argument(
        "--member", action="append", default=None, metavar="HOST:PORT",
        help="a running daemon to route to (repeatable)",
    )
    fleet_run.add_argument(
        "--local", type=int, default=None, metavar="N",
        help="boot an ephemeral N-member fleet in-process instead of "
             "--member",
    )
    fleet_run.add_argument("--workers", type=int, default=1,
                           help="worker processes per --local member")
    fleet_run.add_argument("--timeout", type=float, default=None,
                           help="per-job wall-clock limit in seconds")
    fleet_run.add_argument("--stream", action="store_true",
                           help="print the merged NDJSON progress stream")
    fleet_run.add_argument("--tenant", default=None, metavar="NAME",
                           help="submit the campaign as this tenant")

    fleet_status = fleet_sub.add_parser(
        "status", help="fleet-wide /metricsz rollup as JSON"
    )
    fleet_status.add_argument(
        "--member", action="append", required=True, metavar="HOST:PORT",
        help="a running daemon to probe (repeatable)",
    )

    fleet_drain = fleet_sub.add_parser(
        "drain", help="ask every member to drain and exit"
    )
    fleet_drain.add_argument(
        "--member", action="append", required=True, metavar="HOST:PORT",
        help="a running daemon to drain (repeatable)",
    )

    tenants = sub.add_parser(
        "tenants",
        help="per-tenant usage of one daemon (or a fleet rollup)",
    )
    tenants.add_argument("--host", default="127.0.0.1")
    tenants.add_argument("--port", type=int, default=8023)
    tenants.add_argument(
        "--member", action="append", default=None, metavar="HOST:PORT",
        help="roll up these fleet members instead of --host/--port "
             "(repeatable)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or prune the content-addressed result cache"
    )
    cache.add_argument("--dir", default=None,
                       help="cache directory (default results/cache)")
    cache.add_argument("--stats", action="store_true",
                       help="print entry count, bytes and hit counters")
    cache.add_argument("--prune", type=int, default=None, metavar="BYTES",
                       help="evict least-recently-used entries down to "
                            "BYTES total")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    cores = args.cores or max(2, len(args.app))
    config_fn = spr_config if args.machine == "spr" else emr_config
    config = config_fn(num_cores=cores)
    if args.fabric:
        config = apply_fabric(config, args.fabric)
    machine = Machine(config)
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    profiler = PathFinder(
        machine,
        ProfileSpec(apps=specs, epoch_cycles=args.epoch),
        fidelity=args.fidelity,
    )
    result = profiler.run()
    if args.per_epoch:
        for epoch_result in result.epochs:
            print(render_epoch(epoch_result))
    # render_session already appends the CXL fabric section when the
    # final snapshot carries switch-port estimates.
    print(render_session(result))
    if result.warp is not None:
        report = result.warp
        print(
            f"warp: {len(report.events)} fast-forward(s), "
            f"{report.epochs_skipped:.1f} epochs "
            f"({report.cycles_skipped:.0f} cycles) skipped"
            + (", aborted on divergence" if report.aborted else "")
        )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .. import api
    from ..exec import CampaignJob, cxl_node_id, local_node_id
    from .report import render_campaign

    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    config_fn = spr_config if args.machine == "spr" else emr_config
    config = config_fn(num_cores=2)
    node_ids = {"local": local_node_id(config), "cxl": cxl_node_id(config)}
    fabrics = [None] + list(args.fabric or [])
    jobs = []
    for name in args.app:
        for node in args.node or ["local", "cxl"]:
            for fabric in fabrics:
                if fabric is not None and node != "cxl":
                    continue  # fabric variants only matter for CXL traffic
                workload = build_app(name, num_ops=args.ops, seed=args.seed)
                spec = ProfileSpec(
                    apps=[AppSpec(workload=workload, core=0,
                                  membind=node_ids[node])],
                    epoch_cycles=args.epoch,
                )
                tag = f"{name}@{node}" + (f"+{fabric}" if fabric else "")
                jobs.append(CampaignJob(spec=spec,
                                        config=apply_fabric(config, fabric),
                                        tag=tag,
                                        fidelity=args.fidelity))
    cache = False if args.no_cache else (args.cache_dir or True)
    campaign = api.run_many(
        jobs,
        parallel=not args.serial,
        workers=args.workers,
        cache=cache,
        shared_cache=args.shared_cache,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(render_campaign(campaign))
    if not campaign.jobs or campaign.failed:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs import export_chrome_trace, validate_against_analyzer
    from .report import render_trace
    from .spec import TraceSpec

    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    cores = args.cores or max(2, len(args.app))
    config_fn = spr_config if args.machine == "spr" else emr_config
    machine = Machine(config_fn(num_cores=cores))
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    spec = ProfileSpec(
        apps=specs,
        epoch_cycles=args.epoch,
        trace=TraceSpec(sample_every=args.sample_every),
    )
    profiler = PathFinder(machine, spec)
    result = profiler.run()
    print(render_session(result))
    print()
    print(render_trace(result.trace))
    if args.out:
        document = export_chrome_trace(result.trace, args.out)
        print(f"chrome trace: {args.out}"
              f" ({len(document['traceEvents'])} events)")
    if args.validate:
        reports = [e.queues for e in result.epochs]
        if not reports and result.final is not None:
            reports = [result.final.queues]
        print()
        print(validate_against_analyzer(result.trace, reports).render())
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    import json

    from ..live import render_live_event

    def emit(event) -> None:
        if args.json:
            print(json.dumps(event), flush=True)
        elif event.get("event") == "epoch":
            prefix = event.get("member") or event.get("job_id") or ""
            line = render_live_event(event)
            print(f"[{prefix}] {line}" if prefix else line, flush=True)
        else:
            prefix = event.get("member") or event.get("job_id") or "-"
            print(f"[{prefix}] {event.get('event', '?')}", flush=True)

    if args.member:
        from ..fleet import FleetCoordinator

        coordinator = FleetCoordinator(args.member)
        for event in coordinator.live_events(max_events=args.max_events):
            emit(event)
        return 0
    if args.attach:
        from ..serve import ServeClient, ServeError

        client = ServeClient(host=args.host, port=args.port)
        try:
            for event in client.live(max_events=args.max_events):
                emit(event)
        except (ServeError, ConnectionError, OSError) as exc:
            print(f"cannot stream from {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1
        return 0

    # Local mode: profile in-process, rendering each epoch as it lands.
    if not args.app:
        print("live needs --app (local mode) or --attach/--member",
              file=sys.stderr)
        return 2
    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    from .. import api
    from ..live import LiveSpec

    config_fn = spr_config if args.machine == "spr" else emr_config
    machine = Machine(config_fn(num_cores=max(2, len(args.app))))
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    spec = ProfileSpec(apps=specs, epoch_cycles=args.epoch)
    result = api.run(
        spec,
        machine=machine,
        live=LiveSpec(window=args.window),
        on_epoch=emit,
    )
    print()
    print(render_session(result))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from ..serve import ServeDaemon

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    cache = False if args.no_cache else (args.cache_dir or True)
    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache=cache,
        retries=args.retries,
        timeout=args.timeout,
        max_events=args.max_events,
        journal_dir=args.journal_dir,
        shared_cache=args.shared_cache,
        tenants=args.tenant,
        max_terminal_jobs=args.max_terminal_jobs,
        job_retention_s=args.job_retention_s,
    )

    async def _main() -> None:
        await daemon.start()
        # Machine-readable (smoke scripts resolve --port 0 from this).
        print(f"listening on http://{daemon.host}:{daemon.port}",
              flush=True)
        await daemon.serve_forever()

    asyncio.run(_main())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from ..serve import ServeClient, ServeError

    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    config_fn = spr_config if args.machine == "spr" else emr_config
    config = config_fn(num_cores=max(2, len(args.app)))
    machine = Machine(config)
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    spec = ProfileSpec(apps=specs, epoch_cycles=args.epoch)
    client = ServeClient(host=args.host, port=args.port)
    try:
        job = client.submit_run(
            spec, config, tag=args.tag, priority=args.priority,
            timeout=args.timeout, retry_on_busy=True,
        )
        print(f"job {job['job_id']} {job['state']}"
              + (" (cache hit)" if job.get("cache_hit") else ""))
        if args.no_wait:
            return 0
        if args.stream:
            for event in client.events(job["job_id"]):
                print(json.dumps(event))
        final = client.wait(job["job_id"])
    except ServeError as exc:
        print(f"daemon refused: {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"cannot reach daemon at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if final["state"] != "done":
        print(f"job failed ({final['failure']}): {final['error']}",
              file=sys.stderr)
        return 1
    print(f"done in {final['wall_time']:.2f}s"
          f" ({final['events_executed']} events,"
          f" {final['num_epochs']} epochs"
          + (", cache hit)" if final["cache_hit"] else ")"))
    for scope, event, value in final["counters"] or []:
        print(f"{scope:<28} {event:<52} {value:14.0f}")
    return 0


def _fleet_jobs(args: argparse.Namespace) -> List:
    from ..exec import CampaignJob, cxl_node_id, local_node_id

    config_fn = spr_config if args.machine == "spr" else emr_config
    config = config_fn(num_cores=2)
    node_ids = {"local": local_node_id(config), "cxl": cxl_node_id(config)}
    jobs = []
    for name in args.app:
        for node in args.node or ["local", "cxl"]:
            workload = build_app(name, num_ops=args.ops, seed=args.seed)
            spec = ProfileSpec(
                apps=[AppSpec(workload=workload, core=0,
                              membind=node_ids[node])],
                epoch_cycles=args.epoch,
            )
            jobs.append(CampaignJob(spec=spec, config=config,
                                    tag=f"{name}@{node}",
                                    timeout=args.timeout))
    return jobs


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from ..fleet import FleetCoordinator, LocalFleet
    from .report import render_fleet

    if args.fleet_command == "status":
        coordinator = FleetCoordinator(args.member)
        print(json.dumps(coordinator.metrics(), indent=2))
        return 0
    if args.fleet_command == "drain":
        coordinator = FleetCoordinator(args.member)
        report = coordinator.drain()
        print(json.dumps(report, indent=2))
        return 0 if all(r.get("draining") for r in report.values()) else 1

    # fleet run
    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    if bool(args.member) == bool(args.local):
        print("fleet run needs exactly one of --member or --local N",
              file=sys.stderr)
        return 2
    jobs = _fleet_jobs(args)

    def _run(coordinator) -> int:
        coordinator.start_monitor()
        try:
            campaign = coordinator.shard_campaign(jobs)
            if args.stream:
                for event in campaign.events():
                    print(json.dumps(event), flush=True)
            result = campaign.wait()
        finally:
            coordinator.stop_monitor()
        print(render_fleet(result))
        return 1 if (not result.jobs or result.failed) else 0

    if args.local:
        with LocalFleet(size=args.local, workers=args.workers) as fleet:
            fleet.coordinator.tenant = args.tenant
            if args.tenant:
                for member in fleet.coordinator.members():
                    member.client.tenant = args.tenant
            return _run(fleet.coordinator)
    return _run(FleetCoordinator(args.member, tenant=args.tenant))


def _cmd_tenants(args: argparse.Namespace) -> int:
    import json

    from ..serve import ServeClient

    if args.member:
        from ..fleet import FleetCoordinator

        rollup = FleetCoordinator(args.member).metrics()
        print(json.dumps({
            "members_reachable": rollup["members_reachable"],
            "members_total": rollup["members_total"],
            "tenants": rollup["tenants"],
        }, indent=2))
        return 0 if rollup["members_reachable"] else 1
    client = ServeClient(host=args.host, port=args.port)
    try:
        print(json.dumps(client.tenants(), indent=2))
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach daemon at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from ..exec.cache import DEFAULT_CACHE_DIR, ResultCache

    store = ResultCache(args.dir or DEFAULT_CACHE_DIR)
    did_anything = False
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} entries")
        did_anything = True
    if args.prune is not None:
        report = store.prune(args.prune)
        print(f"pruned {report['removed']} entries"
              f" ({report['freed_bytes']} bytes freed,"
              f" {report['remaining_bytes']} bytes remain)")
        did_anything = True
    if args.stats or not did_anything:
        print(json.dumps(store.stats(), indent=2))
    return 0


def _cmd_list_apps(args: argparse.Namespace) -> int:
    names = suite_names(args.suite)
    if not names:
        print(f"no applications in suite {args.suite!r}", file=sys.stderr)
        return 2
    for name in names:
        spec = APPLICATIONS[name]
        print(
            f"{name:<22} {spec.suite:<14} ws={spec.working_set_mb:9.1f}MB"
            f" pattern={spec.pattern}"
        )
    return 0


def _cmd_list_events(args: argparse.Namespace) -> int:
    events = events_in_group(args.group) if args.group else ALL_EVENTS
    for event in events:
        print(f"{event.name:<52} {event.group:<7} {event.scope_kind:<12}"
              f" paths={','.join(event.paths) or '-'}")
    print(f"total: {len(events)} events")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "tenants":
        return _cmd_tenants(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "list-apps":
        return _cmd_list_apps(args)
    if args.command == "list-events":
        return _cmd_list_events(args)
    if args.command == "case":
        from .cases import run_case

        run_case(args.id)
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
