"""PathFinder command-line interface.

Mirrors the paper's CLI utility: pick applications from the Table 6
catalog, pin them to cores, bind their memory to the local or CXL node,
and run a profiling session with periodic reports.

Examples::

    pathfinder run --app 519.lbm_r --node cxl --ops 20000
    pathfinder run --app fft --app barnes --node cxl --epoch 100000
    pathfinder list-apps --suite GAPBS
    pathfinder list-events --group cha
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..pmu.events import ALL_EVENTS, events_in_group
from ..sim.machine import Machine
from ..sim.topology import emr_config, spr_config
from ..workloads.suites import APPLICATIONS, build_app, suite_names
from .profiler import PathFinder
from .report import render_epoch, render_session
from .spec import AppSpec, ProfileSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pathfinder",
        description="CXL.mem profiler over a simulated SPR/EMR server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="profile one or more applications")
    run.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    run.add_argument(
        "--node", choices=["local", "cxl"], default="cxl",
        help="memory node to bind the working sets to",
    )
    run.add_argument("--ops", type=int, default=10000, help="ops per app")
    run.add_argument("--epoch", type=float, default=50000.0,
                     help="profiling epoch length in cycles")
    run.add_argument("--machine", choices=["spr", "emr"], default="spr")
    run.add_argument("--cores", type=int, default=None,
                     help="number of simulated cores")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--per-epoch", action="store_true",
                     help="print every epoch, not just the final one")

    apps = sub.add_parser("list-apps", help="show the application catalog")
    apps.add_argument("--suite", default=None)

    events = sub.add_parser("list-events", help="show the PMU event catalog")
    events.add_argument(
        "--group", choices=["core", "cha", "uncore", "cxl"], default=None
    )

    case = sub.add_parser(
        "case", help="run a compact version of one paper case study (1-7)"
    )
    case.add_argument("--id", type=int, required=True, choices=range(1, 8))

    campaign = sub.add_parser(
        "campaign",
        help="profile an app x node grid over a worker pool with caching",
    )
    campaign.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    campaign.add_argument(
        "--node", action="append", choices=["local", "cxl"], default=None,
        help="memory node(s) to grid over (repeatable; default both)",
    )
    campaign.add_argument("--ops", type=int, default=10000, help="ops per app")
    campaign.add_argument("--epoch", type=float, default=50000.0,
                          help="profiling epoch length in cycles")
    campaign.add_argument("--machine", choices=["spr", "emr"], default="spr")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: min(4, cpus))")
    campaign.add_argument("--serial", action="store_true",
                          help="run in-process, no worker pool")
    campaign.add_argument("--cache-dir", default=None,
                          help="result cache directory (default results/cache)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="always recompute, never touch the cache")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-job wall-clock limit in seconds")
    campaign.add_argument("--retries", type=int, default=1,
                          help="extra attempts per failed job")

    trace = sub.add_parser(
        "trace",
        help="profile with the flight recorder on and report per-stage "
             "latencies",
    )
    trace.add_argument(
        "--app", action="append", required=True,
        help="application name from the catalog (repeatable)",
    )
    trace.add_argument(
        "--node", choices=["local", "cxl"], default="cxl",
        help="memory node to bind the working sets to",
    )
    trace.add_argument("--ops", type=int, default=10000, help="ops per app")
    trace.add_argument("--epoch", type=float, default=50000.0,
                       help="profiling epoch length in cycles")
    trace.add_argument("--machine", choices=["spr", "emr"], default="spr")
    trace.add_argument("--cores", type=int, default=None,
                       help="number of simulated cores")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--sample-every", type=int, default=64,
                       help="trace 1 in N requests (default 64)")
    trace.add_argument("--out", default=None,
                       help="write a Chrome trace_event JSON here "
                            "(open in Perfetto / chrome://tracing)")
    trace.add_argument("--validate", action="store_true",
                       help="compare measured per-stage queueing against "
                            "PFAnalyzer's Little's-law estimates")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    cores = args.cores or max(2, len(args.app))
    config_fn = spr_config if args.machine == "spr" else emr_config
    machine = Machine(config_fn(num_cores=cores))
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    profiler = PathFinder(machine, ProfileSpec(apps=specs, epoch_cycles=args.epoch))
    result = profiler.run()
    if args.per_epoch:
        for epoch_result in result.epochs:
            print(render_epoch(epoch_result))
    print(render_session(result))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .. import api
    from ..exec import CampaignJob, cxl_node_id, local_node_id
    from .report import render_campaign

    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    config_fn = spr_config if args.machine == "spr" else emr_config
    config = config_fn(num_cores=2)
    node_ids = {"local": local_node_id(config), "cxl": cxl_node_id(config)}
    jobs = []
    for name in args.app:
        for node in args.node or ["local", "cxl"]:
            workload = build_app(name, num_ops=args.ops, seed=args.seed)
            spec = ProfileSpec(
                apps=[AppSpec(workload=workload, core=0,
                              membind=node_ids[node])],
                epoch_cycles=args.epoch,
            )
            jobs.append(CampaignJob(spec=spec, config=config,
                                    tag=f"{name}@{node}"))
    cache = False if args.no_cache else (args.cache_dir or True)
    campaign = api.run_many(
        jobs,
        parallel=not args.serial,
        workers=args.workers,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(render_campaign(campaign))
    if not campaign.jobs or campaign.failed:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs import export_chrome_trace, validate_against_analyzer
    from .report import render_trace
    from .spec import TraceSpec

    for name in args.app:
        if name not in APPLICATIONS:
            print(f"unknown application: {name}", file=sys.stderr)
            return 2
    cores = args.cores or max(2, len(args.app))
    config_fn = spr_config if args.machine == "spr" else emr_config
    machine = Machine(config_fn(num_cores=cores))
    node = (
        machine.cxl_node.node_id if args.node == "cxl"
        else machine.local_node.node_id
    )
    specs: List[AppSpec] = []
    for i, name in enumerate(args.app):
        workload = build_app(name, num_ops=args.ops, seed=args.seed + i)
        specs.append(AppSpec(workload=workload, core=i, membind=node))
    spec = ProfileSpec(
        apps=specs,
        epoch_cycles=args.epoch,
        trace=TraceSpec(sample_every=args.sample_every),
    )
    profiler = PathFinder(machine, spec)
    result = profiler.run()
    print(render_session(result))
    print()
    print(render_trace(result.trace))
    if args.out:
        document = export_chrome_trace(result.trace, args.out)
        print(f"chrome trace: {args.out}"
              f" ({len(document['traceEvents'])} events)")
    if args.validate:
        reports = [e.queues for e in result.epochs]
        if not reports and result.final is not None:
            reports = [result.final.queues]
        print()
        print(validate_against_analyzer(result.trace, reports).render())
    return 0


def _cmd_list_apps(args: argparse.Namespace) -> int:
    names = suite_names(args.suite)
    if not names:
        print(f"no applications in suite {args.suite!r}", file=sys.stderr)
        return 2
    for name in names:
        spec = APPLICATIONS[name]
        print(
            f"{name:<22} {spec.suite:<14} ws={spec.working_set_mb:9.1f}MB"
            f" pattern={spec.pattern}"
        )
    return 0


def _cmd_list_events(args: argparse.Namespace) -> int:
    events = events_in_group(args.group) if args.group else ALL_EVENTS
    for event in events:
        print(f"{event.name:<52} {event.group:<7} {event.scope_kind:<12}"
              f" paths={','.join(event.paths) or '-'}")
    print(f"total: {len(events)} events")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "list-apps":
        return _cmd_list_apps(args)
    if args.command == "list-events":
        return _cmd_list_events(args)
    if args.command == "case":
        from .cases import run_case

        run_case(args.id)
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
