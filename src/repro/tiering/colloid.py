"""Colloid: latency-balancing tiering control (Vuppala & Agarwal, SOSP'24).

Colloid's principle - "access latency is the key" - guides TPP's migration
at runtime: compare the observed per-tier memory latency and only promote
while the slow tier's latency actually exceeds the fast tier's; back off
when local DDR becomes the slower (loaded) tier.  The paper's Case 7 uses
the CHA-observed DRd miss latency per tier; our implementation reads the
same signal from the PMU latency samples.

``DynamicColloid`` is the paper's PathFinder-assisted variant (section
5.8): instead of fixing the DRd latency as the control signal, it asks
PFBuilder for the CHA miss ratios of DRd/RFO/HWPF, picks the most frequent
request type in the current phase, and uses *that* type's per-tier latency
- making migration adapt to what the application actually does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..pmu.views import CHAPMUView, CorePMUView, core_ids
from ..sim.machine import Machine
from .tpp import TPP


@dataclass
class ColloidConfig:
    epoch_cycles: float = 20_000.0
    latency_ratio_deadband: float = 1.1   # |lat_cxl/lat_local| tolerance
    min_promote: int = 8
    max_promote: int = 256


class Colloid:
    """Latency-ratio controller modulating TPP's promotion budget."""

    def __init__(
        self,
        machine: Machine,
        tpp: TPP,
        config: Optional[ColloidConfig] = None,
    ) -> None:
        self.machine = machine
        self.tpp = tpp
        self.config = config or ColloidConfig()
        self._last_counters: Dict = {}
        self.decisions: list = []
        self._schedule()

    def _schedule(self) -> None:
        self.machine.engine.after(self.config.epoch_cycles, self._epoch)

    def _epoch(self) -> None:
        self.control()
        if not self.machine.all_idle:
            self._schedule()

    # -- control law ----------------------------------------------------------

    def control(self) -> None:
        lat_local, lat_cxl = self.tier_latencies()
        self._apply(lat_local, lat_cxl)

    def _apply(self, lat_local: float, lat_cxl: float) -> None:
        config = self.tpp.config
        if lat_local <= 0 or lat_cxl <= 0:
            return  # no signal this epoch
        ratio = lat_cxl / lat_local
        if ratio > self.config.latency_ratio_deadband:
            # CXL is the slow tier: promote more aggressively.
            config.promote_per_epoch = min(
                self.config.max_promote, config.promote_per_epoch * 2
            )
        elif ratio < 1.0 / self.config.latency_ratio_deadband:
            # Local tier is now slower (loaded): stop promoting into it.
            config.promote_per_epoch = max(
                self.config.min_promote, config.promote_per_epoch // 2
            )
        self.decisions.append((ratio, config.promote_per_epoch))

    # -- latency signal (fixed DRd latency, Colloid's default) -------------------

    def tier_latencies(self) -> Tuple[float, float]:
        """(local, CXL) mean DRd latency from the epoch's PMU delta."""
        delta = self._epoch_delta()
        local_sum = local_count = cxl_sum = cxl_count = 0.0
        for cid in core_ids(delta):
            view = CorePMUView(delta, cid)
            mean, count = view.latency_sample("local_DRAM")
            local_sum += mean * count
            local_count += count
            mean, count = view.latency_sample("CXL_DRAM")
            cxl_sum += mean * count
            cxl_count += count
        local = local_sum / local_count if local_count else 0.0
        cxl = cxl_sum / cxl_count if cxl_count else 0.0
        return local, cxl

    def _epoch_delta(self) -> Mapping:
        current = self.machine.pmu.snapshot(self.machine.now)
        previous, self._last_counters = self._last_counters, current
        return {
            key: current.get(key, 0.0) - previous.get(key, 0.0)
            for key in set(current) | set(previous)
        }


class DynamicColloid(Colloid):
    """PathFinder-assisted Colloid: pick the dominant request type's latency.

    Uses PFBuilder-style CHA miss ratios to find the most frequent request
    type (DRd / RFO / HWPF) in the current phase, then drives the control
    law with that type's per-tier latency instead of the fixed DRd signal.
    The paper reports a further 1.1x GUPS improvement from this (5.8).
    """

    LATENCY_BY_FAMILY = {
        "DRd": ("local_DRAM", "CXL_DRAM"),
        "RFO": ("local_DRAM", "CXL_DRAM"),
        "HWPF": ("local_DRAM", "CXL_DRAM"),
    }

    def __init__(self, machine: Machine, tpp: TPP, config=None, socket: int = 0):
        self.socket = socket
        self.chosen_family: list = []
        super().__init__(machine, tpp, config)

    def control(self) -> None:
        delta = self._epoch_delta()
        cha = CHAPMUView(delta, self.socket)
        # Most frequently missing request type this phase.
        miss_by_family = {
            family: cha.tor_inserts(family, "miss")
            for family in ("DRd", "RFO", "HWPF")
        }
        family = max(miss_by_family, key=miss_by_family.get)
        self.chosen_family.append(family)
        local_sum = local_count = cxl_sum = cxl_count = 0.0
        ocr_scenario = {"DRd": "DRd", "RFO": "RFO", "HWPF": "HWPF"}[family]
        for cid in core_ids(delta):
            view = CorePMUView(delta, cid)
            weight = max(1.0, view.ocr(ocr_scenario, "any_response"))
            mean, count = view.latency_sample("local_DRAM")
            local_sum += mean * count * weight
            local_count += count * weight
            mean, count = view.latency_sample("CXL_DRAM")
            cxl_sum += mean * count * weight
            cxl_count += count * weight
        local = local_sum / local_count if local_count else 0.0
        cxl = cxl_sum / cxl_count if cxl_count else 0.0
        self._apply(local, cxl)
