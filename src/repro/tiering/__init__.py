"""Memory-tiering engines for the performance-optimisation case study.

Case 7 (section 5.8) uses PathFinder to analyse and then improve page
placement: TPP (transparent page placement) is the baseline migrator,
Colloid balances per-tier access latency, and DynamicColloid is the
paper's PathFinder-assisted variant that picks the control signal from the
dominant request type.
"""

from .colloid import Colloid, ColloidConfig, DynamicColloid
from .temperature import PageTemperature
from .tpp import TPP, TPPConfig, TPPStats

__all__ = [
    "Colloid",
    "ColloidConfig",
    "DynamicColloid",
    "PageTemperature",
    "TPP",
    "TPPConfig",
    "TPPStats",
]
