"""Page-temperature tracking.

TPP-style tiering engines need to know which pages are hot.  The kernel
uses NUMA hint faults and LRU scans; our stand-in samples the virtual
access stream through the cores' ``access_probe`` hook and keeps an
exponentially-decayed access count per virtual page.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sim.address import PAGE_SIZE
from ..sim.machine import Machine


class PageTemperature:
    """Decayed per-page access counts over the whole machine."""

    def __init__(self, machine: Machine, sample_rate: int = 1) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        self.machine = machine
        self.sample_rate = sample_rate
        self._heat: Dict[int, float] = {}
        self._tick = 0
        self.samples = 0
        for core in machine.cores:
            core.access_probe = self._probe

    def _probe(self, core_id: int, virtual_address: int, is_store: bool) -> None:
        self._tick += 1
        if self._tick % self.sample_rate:
            return
        vpn = virtual_address // PAGE_SIZE
        self._heat[vpn] = self._heat.get(vpn, 0.0) + 1.0
        self.samples += 1

    def decay(self, factor: float = 0.5) -> None:
        """Age all counters (run once per tiering epoch)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        self._heat = {
            vpn: heat * factor for vpn, heat in self._heat.items() if heat * factor > 0.01
        }

    def heat(self, vpn: int) -> float:
        return self._heat.get(vpn, 0.0)

    def hottest(self, n: int) -> List[Tuple[int, float]]:
        """Top-n (vpn, heat) pairs."""
        return sorted(self._heat.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def coldest(self, n: int, vpns: List[int]) -> List[Tuple[int, float]]:
        """The n coldest pages among ``vpns`` (candidates for demotion)."""
        scored = [(vpn, self._heat.get(vpn, 0.0)) for vpn in vpns]
        return sorted(scored, key=lambda kv: kv[1])[:n]

    def tracked_pages(self) -> int:
        return len(self._heat)

    def detach(self) -> None:
        for core in self.machine.cores:
            if core.access_probe == self._probe:
                core.access_probe = None
