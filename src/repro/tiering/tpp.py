"""TPP: Transparent Page Placement (Maruf et al., ASPLOS'23).

The memory-tiering baseline of the paper's Case 7 (section 5.8).  TPP
promotes pages that are accessed while resident on the slow CXL tier into
local DDR, and demotes cold local pages to CXL when local memory is under
pressure.  We reproduce the policy skeleton: an epoch task that

1. samples page temperature (``PageTemperature``),
2. promotes the hottest CXL-resident pages (rate-limited per epoch),
3. demotes the coldest local pages when local free space drops below a
   headroom watermark,
4. decays temperatures.

Migrations remap virtual pages in the machine's address space, so the next
access naturally lands on the new tier - the same observable effect the
kernel's migration has on the PMU counters.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

from ..sim.address import PAGE_SIZE, NodeKind
from ..sim.machine import Machine
from .temperature import PageTemperature

logger = logging.getLogger(__name__)


@dataclass
class TPPConfig:
    epoch_cycles: float = 20_000.0
    promote_per_epoch: int = 64
    demote_per_epoch: int = 64
    hot_threshold: float = 2.0       # min heat to qualify for promotion
    local_headroom_pages: int = 128  # demote when free local pages drop below
    decay: float = 0.5
    sample_rate: int = 1


@dataclass
class TPPStats:
    promotions: int = 0
    demotions: int = 0
    epochs: int = 0


class TPP:
    """Epoch-driven page promotion/demotion between local DDR and CXL."""

    def __init__(
        self,
        machine: Machine,
        config: Optional[TPPConfig] = None,
        enabled: bool = True,
    ) -> None:
        self.machine = machine
        self.config = config or TPPConfig()
        self.enabled = enabled
        self.stats = TPPStats()
        self.temperature = PageTemperature(
            machine, sample_rate=self.config.sample_rate
        )
        self.local_node = machine.local_node.node_id
        self.cxl_node = machine.cxl_node.node_id
        if enabled:
            self._schedule()

    # -- epoch task ------------------------------------------------------

    def _schedule(self) -> None:
        self.machine.engine.after(self.config.epoch_cycles, self._epoch)

    def _epoch(self) -> None:
        if self.enabled:
            self.run_epoch()
        if not self.machine.all_idle:
            self._schedule()

    def run_epoch(self) -> None:
        self.stats.epochs += 1
        before = (self.stats.promotions, self.stats.demotions)
        self._promote()
        self._demote()
        self.temperature.decay(self.config.decay)
        # Publish migration activity as PMU counters so profiling
        # snapshots (and therefore persisted/cached sessions) carry it.
        promoted = self.stats.promotions - before[0]
        demoted = self.stats.demotions - before[1]
        if promoted:
            self.machine.pmu.add("tpp", "pages_promoted", promoted)
        if demoted:
            self.machine.pmu.add("tpp", "pages_demoted", demoted)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "tpp epoch %d: +%d promotions, +%d demotions",
                self.stats.epochs,
                self.stats.promotions - before[0],
                self.stats.demotions - before[1],
            )

    # -- promotion (CXL -> local) ------------------------------------------

    def _promote(self) -> None:
        space = self.machine.address_space
        budget = self.config.promote_per_epoch
        candidates = self.temperature.hottest(4 * budget)
        for vpn, heat in candidates:
            if budget <= 0:
                break
            if heat < self.config.hot_threshold:
                break
            node = space.page_node(vpn)
            if node is None or node.kind is not NodeKind.CXL:
                continue
            if space.free_bytes(self.local_node) < PAGE_SIZE:
                break
            space.migrate_page(vpn, self.local_node)
            self.stats.promotions += 1
            budget -= 1

    # -- demotion (local -> CXL) -------------------------------------------------

    def _demote(self) -> None:
        space = self.machine.address_space
        free_pages = space.free_bytes(self.local_node) // PAGE_SIZE
        if free_pages >= self.config.local_headroom_pages:
            return
        local_vpns = [
            vpn
            for vpn, frame in space.mapped_pages().items()
            if space.node_of(frame).node_id == self.local_node
        ]
        budget = self.config.demote_per_epoch
        for vpn, _heat in self.temperature.coldest(budget, local_vpns):
            if space.free_bytes(self.cxl_node) < PAGE_SIZE:
                break
            space.migrate_page(vpn, self.cxl_node)
            self.stats.demotions += 1
