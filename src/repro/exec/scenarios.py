"""Scenario-matrix campaigns over switched CXL fabrics.

Builders that expand a (workload x topology) grid into tagged
:class:`~repro.exec.runner.CampaignJob` lists, ready for
:func:`repro.api.run_many`, :mod:`repro.serve` submission or
:func:`repro.api.fleet_run_many` sharding.  Jobs are fully declarative
(config-embedded :class:`~repro.sim.fabric.FabricSpec`), so they cache,
serialise over HTTP and shard across a fleet like any other campaign.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..core.spec import AppSpec, ProfileSpec
from ..sim.dram import DRAMTiming
from ..sim.fabric import FABRIC_PRESETS, FabricSpec, apply_fabric
from ..sim.topology import MachineConfig, spr_config
from ..workloads.suites import build_app
from .hashing import cxl_node_id
from .runner import CampaignJob

__all__ = ["fabric_matrix_jobs", "congestion_ab_jobs"]


def _spec_for(app: str, config: MachineConfig, ops: int, seed: int,
              epoch_cycles: float) -> ProfileSpec:
    workload = build_app(app, num_ops=ops, seed=seed)
    return ProfileSpec(
        apps=[AppSpec(workload=workload, core=0,
                      membind=cxl_node_id(config))],
        epoch_cycles=epoch_cycles,
    )


def fabric_matrix_jobs(
    apps: Sequence[str],
    topologies: Optional[Sequence[Union[str, FabricSpec]]] = None,
    *,
    config: Optional[MachineConfig] = None,
    ops: int = 6000,
    seed: int = 1,
    epoch_cycles: float = 50_000.0,
) -> List[CampaignJob]:
    """The topology x workload scenario matrix.

    Every app from the Table 6 catalog runs CXL-bound once per topology
    (preset name or full :class:`FabricSpec`; ``None`` in the list =
    direct attach).  Tags read ``app@fabric:<name>``.
    """
    base = config if config is not None else spr_config(num_cores=2)
    if topologies is None:
        topologies = [None] + list(FABRIC_PRESETS)
    jobs: List[CampaignJob] = []
    for app in apps:
        for topology in topologies:
            cfg = apply_fabric(base, topology)
            if isinstance(topology, FabricSpec):
                label = f"{len(topology.hosts)}h{len(topology.switches)}s"
            else:
                label = topology or "direct"
            jobs.append(
                CampaignJob(
                    spec=_spec_for(app, cfg, ops, seed, epoch_cycles),
                    config=cfg,
                    tag=f"{app}@fabric:{label}",
                )
            )
    return jobs


def congestion_ab_jobs(
    app: str,
    *,
    ops: int = 6000,
    seed: int = 1,
    epoch_cycles: float = 25_000.0,
) -> List[CampaignJob]:
    """The acceptance A/B pair: one workload, two failure modes.

    Job A ("fabric-congested") puts the pooled devices behind an
    undersized switch port; job B ("device-bound") keeps the fabric
    healthy but slows the CXL DIMM and shrinks its MC queue.  The
    analyzer's :meth:`~repro.core.analyzer.AnalyzerReport.fabric_diagnosis`
    should name a different side for each.
    """
    from ..sim.fabric import preset_fabric

    congested = apply_fabric(
        spr_config(num_cores=2),
        preset_fabric("undersized", inject_ops=20_000),
    )
    device_bound = apply_fabric(
        spr_config(
            num_cores=2,
            cxl_dram=DRAMTiming(
                access_latency=1400.0, bytes_per_cycle=2.0, channels=1
            ),
            cxl_mc_queue_depth=8,
        ),
        # Few injected ops: the pool stays healthy, the DIMM does not.
        preset_fabric("pooled", inject_ops=2_000),
    )
    return [
        CampaignJob(
            spec=_spec_for(app, congested, ops, seed, epoch_cycles),
            config=congested,
            tag="fabric-congested",
        ),
        CampaignJob(
            spec=_spec_for(app, device_bound, ops, seed, epoch_cycles),
            config=device_bound,
            tag="device-bound",
        ),
    ]
