"""Warm worker pool: persistent profiling workers, recycled not respawned.

The campaign runner and the serve daemon historically paid one
``Process.start()`` per job.  That is robust - a crashed or hung job can
never poison the parent - but for short jobs the spawn dominates: a
fresh interpreter (spawn) or a fork of a large parent re-pays import
and setup cost on every single job.  :class:`WorkerPool` keeps a fixed
set of worker processes alive across jobs and feeds them over a pipe,
preserving the per-job isolation properties that matter:

* **forkserver start method** - workers are forked from a clean,
  single-threaded server process, never from the (multi-threaded,
  asyncio-running) daemon itself, so the pool is safe to own from
  threaded parents; falls back to the platform default where
  forkserver is unavailable.
* **length-prefixed frames** - every message on the pipe is
  ``<u64 little-endian length><pickle payload>``.  A worker killed
  mid-write leaves a truncated frame; the explicit length turns that
  into a detected :class:`PoolProtocolError` (-> the job is reported
  ``crashed``) instead of an arbitrary unpickling error.
* **recycling** - after ``max_jobs_per_worker`` jobs a worker is
  retired and a fresh one spawned lazily, bounding any slow leak a
  long-lived simulation process might accumulate.
* **timeout-kill-respawn** - a job exceeding its wall-clock budget gets
  its worker killed (the only way to stop a stuck simulation); the
  pool replaces the worker on the next dispatch.

Two driving styles, one pool:

* :meth:`WorkerPool.dispatch` / :meth:`WorkerPool.poll` - non-blocking,
  for the campaign scheduler's single-threaded drain loop;
* :meth:`WorkerPool.run_job` - blocking and thread-safe, for the serve
  daemon's worker threads (each call leases one worker for the whole
  conversation).

Use one style per pool instance; interleaving them on the same pool is
not supported.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import pickle
import struct
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

_LENGTH = struct.Struct("<Q")

#: Default recycling horizon: one worker serves this many jobs.
DEFAULT_MAX_JOBS_PER_WORKER = 32


class PoolProtocolError(Exception):
    """A frame on the worker pipe was truncated or malformed."""


class PoolSpawnError(OSError):
    """A worker process could not be started (fd/process limits, ...).

    Subclasses :class:`OSError` so call sites that already degrade on
    spawn failure (campaign drain, serve executor) catch it unchanged.
    """


def _send_frame(conn, message: Any) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(_LENGTH.pack(len(payload)) + payload)


def _recv_frame(conn) -> Any:
    blob = conn.recv_bytes()
    if len(blob) < _LENGTH.size:
        raise PoolProtocolError(f"short frame: {len(blob)} bytes")
    (length,) = _LENGTH.unpack_from(blob)
    payload = blob[_LENGTH.size:]
    if len(payload) != length:
        raise PoolProtocolError(
            f"truncated frame: header says {length}, got {len(payload)}"
        )
    return pickle.loads(payload)


def _pool_worker_main(conn, max_jobs: Optional[int]) -> None:
    """Entry point of one persistent worker: serve jobs until retired."""
    from ..sim.engine import SimulationBudgetExceeded
    from .runner import _execute_job

    served = 0
    while True:
        try:
            message = _recv_frame(conn)
        except (EOFError, OSError, PoolProtocolError):
            break
        if not isinstance(message, dict) or message.get("op") != "job":
            break  # "exit" or anything unexpected: retire quietly
        progress = None
        if message.get("live"):

            def progress(digest, _conn=conn):
                try:
                    _send_frame(_conn, {"live": digest})
                except (OSError, ValueError):
                    pass  # parent went away; keep simulating for the cache

        try:
            outcome = _execute_job(
                message["spec"],
                message["config"],
                message.get("max_events"),
                message.get("setup"),
                live=message.get("live"),
                progress=progress,
                fidelity=message.get("fidelity"),
            )
        except SimulationBudgetExceeded as exc:
            outcome = {
                "ok": False,
                "kind": "budget_exceeded",
                "error": str(exc),
                "events_executed": exc.events_executed,
                "total_cycles": exc.now,
            }
        except Exception:
            outcome = {
                "ok": False,
                "kind": "error",
                "error": traceback.format_exc(limit=20),
            }
        try:
            _send_frame(conn, outcome)
        except (OSError, ValueError):
            break
        served += 1
        if max_jobs is not None and served >= max_jobs:
            break
    conn.close()


class _Worker:
    """Parent-side handle for one pool worker process."""

    __slots__ = ("proc", "conn", "jobs_done", "ticket", "began", "deadline",
                 "on_progress")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.jobs_done = 0
        self.ticket: Any = None          # None = idle
        self.began = 0.0
        self.deadline: Optional[float] = None
        self.on_progress: Optional[Callable[[Dict[str, Any]], None]] = None

    @property
    def busy(self) -> bool:
        return self.ticket is not None


def _pool_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # platform without forkserver
        return multiprocessing.get_context()


class WorkerPool:
    """A fixed-size pool of warm, recyclable profiling workers."""

    def __init__(
        self,
        workers: int = 2,
        *,
        max_jobs_per_worker: Optional[int] = DEFAULT_MAX_JOBS_PER_WORKER,
        start_method: Optional[str] = None,
        metrics_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ValueError("max_jobs_per_worker must be >= 1 or None")
        self.workers = workers
        self.max_jobs_per_worker = max_jobs_per_worker
        self._ctx = _pool_context(start_method)
        self._lock = threading.RLock()
        self._idle_cv = threading.Condition(self._lock)
        self._pool: List[_Worker] = []
        self._closed = False
        #: Worker processes that failed to start (process/fd limits);
        #: surfaced in campaign summaries and the daemon's /metricsz.
        self.spawn_failures = 0
        #: Workers retired after serving max_jobs_per_worker jobs.
        self.recycled = 0
        #: Worker processes started over the pool's lifetime.
        self.spawned = 0
        self._metrics_hook = metrics_hook

    # -- lifecycle -------------------------------------------------------

    def _note(self, event: str) -> None:
        if self._metrics_hook is not None:
            try:
                self._metrics_hook(event)
            except Exception:  # noqa: BLE001 - metrics must never break jobs
                logger.exception("pool metrics hook failed")

    def _spawn_locked(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            proc = self._ctx.Process(
                target=_pool_worker_main,
                args=(child_conn, self.max_jobs_per_worker),
                daemon=True,
            )
            proc.start()
        except OSError as exc:
            parent_conn.close()
            child_conn.close()
            self.spawn_failures += 1
            self._note("spawn_failure")
            raise PoolSpawnError(f"could not start pool worker: {exc}") from exc
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        self._pool.append(worker)
        self.spawned += 1
        self._note("spawned")
        return worker

    def _acquire_locked(self) -> Optional[_Worker]:
        """An idle live worker, spawning up to ``workers``; None if full."""
        for worker in self._pool:
            if not worker.busy and not worker.proc.is_alive():
                self._retire_locked(worker, kill=True)
        for worker in self._pool:
            if not worker.busy:
                return worker
        if len(self._pool) < self.workers:
            return self._spawn_locked()
        return None

    def _retire_locked(self, worker: _Worker, kill: bool) -> None:
        if worker in self._pool:
            self._pool.remove(worker)
        if kill:
            if worker.proc.is_alive():
                worker.proc.kill()
        else:
            try:
                _send_frame(worker.conn, {"op": "exit"})
            except (OSError, ValueError):
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=2.0)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=2.0)

    def _release_locked(self, worker: _Worker) -> None:
        """Return a worker after a completed job; recycle when due."""
        worker.ticket = None
        worker.on_progress = None
        worker.deadline = None
        worker.jobs_done += 1
        if (self.max_jobs_per_worker is not None
                and worker.jobs_done >= self.max_jobs_per_worker):
            self._retire_locked(worker, kill=False)
            self.recycled += 1
            self._note("recycled")
        self._idle_cv.notify_all()

    def close(self) -> None:
        """Retire every worker; the pool is unusable afterwards."""
        with self._lock:
            self._closed = True
            for worker in list(self._pool):
                self._retire_locked(worker, kill=worker.busy)
            self._idle_cv.notify_all()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- non-blocking API (campaign drain loop) --------------------------

    @property
    def busy_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._pool if w.busy)

    @property
    def has_capacity(self) -> bool:
        with self._lock:
            return sum(1 for w in self._pool if w.busy) < self.workers

    def dispatch(
        self,
        ticket: Any,
        spec,
        config,
        *,
        max_events: Optional[int] = None,
        setup: Optional[Callable] = None,
        fidelity: Any = None,
        timeout: Optional[float] = None,
        live: Any = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        """Hand one job to an idle worker (spawning one if below size).

        Raises :class:`PoolSpawnError` when no worker can be started and
        :class:`RuntimeError` when called with every worker busy (check
        :attr:`has_capacity` first).  The outcome arrives via
        :meth:`poll`, tagged with ``ticket``.
        """
        message = {
            "op": "job",
            "spec": spec,
            "config": config,
            "max_events": max_events,
            "setup": setup,
            "fidelity": fidelity,
            "live": live,
        }
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            for _ in range(2):  # one retry if a leased worker died stale
                worker = self._acquire_locked()
                if worker is None:
                    raise RuntimeError("dispatch with no idle worker")
                worker.ticket = ticket
                worker.began = time.monotonic()
                worker.deadline = (worker.began + timeout) if timeout else None
                worker.on_progress = on_progress
                try:
                    _send_frame(worker.conn, message)
                    return
                except (OSError, ValueError):
                    self._retire_locked(worker, kill=True)
            raise PoolSpawnError("pool worker died before accepting a job")

    def poll(self, timeout: float = 0.0) -> List[Tuple[Any, Dict[str, Any]]]:
        """Completed ``(ticket, outcome)`` pairs; waits up to ``timeout``.

        Covers all three terminal paths: a worker's outcome frame, a
        worker dead without one (``crashed``), and a job past its
        deadline (``timeout``, worker killed).  Every outcome carries
        ``wall_time``.
        """
        with self._lock:
            busy = [w for w in self._pool if w.busy]
        if not busy:
            if timeout:
                time.sleep(timeout)
            return []
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], timeout
        )
        ready_set = set(ready)
        completed: List[Tuple[Any, Dict[str, Any]]] = []
        now = time.monotonic()
        with self._lock:
            for worker in busy:
                if not worker.busy:
                    continue  # raced with close()
                outcome: Optional[Dict[str, Any]] = None
                crashed = False
                if worker.conn in ready_set:
                    outcome, crashed = self._drain_worker_locked(worker)
                if outcome is None and not crashed:
                    if worker.deadline is not None and now > worker.deadline:
                        wall = now - worker.began
                        outcome = {
                            "ok": False,
                            "kind": "timeout",
                            "error": f"job exceeded its {wall:.1f}s "
                                     "wall-clock budget",
                        }
                        ticket = worker.ticket
                        self._retire_locked(worker, kill=True)
                        worker.ticket = None
                        self._idle_cv.notify_all()
                        outcome["wall_time"] = wall
                        completed.append((ticket, outcome))
                        continue
                    if not worker.proc.is_alive():
                        crashed = True
                if crashed and outcome is None:
                    outcome = {
                        "ok": False,
                        "kind": "crashed",
                        "error": f"pool worker exited with code "
                                 f"{worker.proc.exitcode} before reporting "
                                 "a result",
                    }
                if outcome is None:
                    continue  # still running
                wall = time.monotonic() - worker.began
                ticket = worker.ticket
                if crashed:
                    self._retire_locked(worker, kill=True)
                    worker.ticket = None
                    self._idle_cv.notify_all()
                else:
                    self._release_locked(worker)
                outcome["wall_time"] = wall
                completed.append((ticket, outcome))
        return completed

    def _drain_worker_locked(
        self, worker: _Worker
    ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Read buffered frames; returns ``(outcome, crashed)``."""
        while True:
            try:
                message = _recv_frame(worker.conn)
            except (EOFError, OSError, PoolProtocolError,
                    pickle.UnpicklingError):
                return None, True
            if isinstance(message, dict) and "ok" not in message:
                if worker.on_progress is not None and "live" in message:
                    try:
                        worker.on_progress(message["live"])
                    except Exception:  # noqa: BLE001
                        logger.exception("live progress callback failed")
                if worker.conn.poll(0):
                    continue
                return None, False
            return message, False

    # -- blocking API (serve worker threads) -----------------------------

    def run_job(
        self,
        spec,
        config,
        *,
        max_events: Optional[int] = None,
        setup: Optional[Callable] = None,
        timeout: Optional[float] = None,
        live: Any = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        fidelity: Any = None,
    ) -> Dict[str, Any]:
        """Execute one job on a leased pool worker; blocks until done.

        Drop-in for :func:`repro.exec.runner.run_single_job`: same
        outcome dicts, same wall-clock enforcement (the leased worker is
        killed and replaced on timeout), but without the per-job spawn.
        Thread-safe: callers beyond the pool size queue for an idle
        worker.  Raises :class:`PoolSpawnError` when no worker can be
        started at all.
        """
        began = time.monotonic()
        lease = object()
        with self._idle_cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is closed")
                worker = self._acquire_locked()
                if worker is not None:
                    worker.ticket = lease
                    worker.began = began
                    worker.deadline = (began + timeout) if timeout else None
                    break
                self._idle_cv.wait(0.1)
        message = {
            "op": "job",
            "spec": spec,
            "config": config,
            "max_events": max_events,
            "setup": setup,
            "fidelity": fidelity,
            "live": live,
        }
        outcome = self._converse(worker, message, timeout, on_progress)
        outcome["wall_time"] = time.monotonic() - began
        return outcome

    def _converse(self, worker, message, timeout, on_progress):
        """The leased conversation: send the job, await its outcome."""
        try:
            _send_frame(worker.conn, message)
        except (OSError, ValueError):
            with self._idle_cv:
                self._retire_locked(worker, kill=True)
                worker.ticket = None
                self._idle_cv.notify_all()
            return {
                "ok": False,
                "kind": "crashed",
                "error": "pool worker died before accepting the job",
            }
        deadline = worker.deadline
        while True:
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                with self._idle_cv:
                    self._retire_locked(worker, kill=True)
                    worker.ticket = None
                    self._idle_cv.notify_all()
                return {
                    "ok": False,
                    "kind": "timeout",
                    "error": f"job exceeded its {timeout:.1f}s wall-clock "
                             "budget",
                }
            wait = 0.1 if remaining is None else min(0.1, remaining)
            if worker.conn.poll(wait):
                try:
                    received = _recv_frame(worker.conn)
                except (EOFError, OSError, PoolProtocolError,
                        pickle.UnpicklingError):
                    received = None
                if received is None:
                    with self._idle_cv:
                        self._retire_locked(worker, kill=True)
                        worker.ticket = None
                        self._idle_cv.notify_all()
                    return {
                        "ok": False,
                        "kind": "crashed",
                        "error": f"pool worker exited with code "
                                 f"{worker.proc.exitcode} before reporting "
                                 "a result",
                    }
                if isinstance(received, dict) and "ok" not in received:
                    if on_progress is not None and "live" in received:
                        on_progress(received["live"])
                    continue
                with self._idle_cv:
                    self._release_locked(worker)
                return received
            if not worker.proc.is_alive() and not worker.conn.poll(0):
                with self._idle_cv:
                    self._retire_locked(worker, kill=True)
                    worker.ticket = None
                    self._idle_cv.notify_all()
                return {
                    "ok": False,
                    "kind": "crashed",
                    "error": f"pool worker exited with code "
                             f"{worker.proc.exitcode} before reporting "
                             "a result",
                }
