"""Stable content-addressed keys for profiling jobs.

A campaign job is fully described by (profiling spec, machine config,
code version).  This module canonicalizes that triple into a
deterministic JSON document and hashes it, so identical jobs - across
processes, interpreter restarts and spec construction order - map to the
same cache key, while any change to the workload parameters, the machine
or the simulator source invalidates it.

Canonicalization deliberately excludes per-process identity:

* ``AppSpec.pid`` (a global counter);
* ``Workload.vpn_base`` when auto-assigned (a global region counter) and
  the live ``rng`` state - physical frames are bump-allocated in install
  order, so two workloads differing only in virtual base produce
  identical PMU activity;
* anything callable.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..sim.topology import MachineConfig
from ..core.spec import ProfileSpec
from ..workloads.base import Workload

KEY_FORMAT = 1

#: Workload attributes that are per-process identity, not content.
_WORKLOAD_IDENTITY_ATTRS = {"rng", "vpn_base"}


def _canon(value: Any, memo: Optional[set] = None) -> Any:
    """Reduce ``value`` to a deterministic JSON-able structure."""
    if memo is None:
        memo = set()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, enum.Enum):
        return [type(value).__name__, _canon(value.value, memo)]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
        return ["ndarray", list(value.shape), str(value.dtype),
                digest.hexdigest()]
    if isinstance(value, dict):
        return [
            "map",
            sorted(
                ([_canon(k, memo), _canon(v, memo)] for k, v in value.items()),
                key=json.dumps,
            ),
        ]
    if isinstance(value, (list, tuple)):
        return [_canon(v, memo) for v in value]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted((_canon(v, memo) for v in value), key=json.dumps)]
    if isinstance(value, functools.partial):
        return [
            "partial",
            _callable_id(value.func),
            [_canon(v, memo) for v in value.args],
            _canon(dict(value.keywords), memo),
        ]
    if callable(value):
        return ["callable", _callable_id(value)]
    # Generic object: class identity + public, non-callable state.
    if id(value) in memo:
        return ["cycle", type(value).__qualname__]
    memo.add(id(value))
    try:
        state = getattr(value, "__dict__", None)
        if state is None:
            if callable(value):
                return ["callable", _callable_id(value)]
            return ["repr", type(value).__qualname__, str(value)]
        skip = _WORKLOAD_IDENTITY_ATTRS if isinstance(value, Workload) else set()
        attrs = {
            name: _canon(attr, memo)
            for name, attr in sorted(state.items())
            if name not in skip and not callable(attr)
        }
        return ["obj", f"{type(value).__module__}.{type(value).__qualname__}",
                attrs]
    finally:
        memo.discard(id(value))


def _callable_id(fn: Any) -> str:
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    return f"{module}.{qualname}"


def canonical_spec(spec: ProfileSpec) -> Dict[str, Any]:
    """Declarative form of a profiling spec, stripped of process identity."""
    return {
        "apps": [
            {
                "workload": _canon(app.workload),
                "core": app.core,
                "membind": app.membind,
                "interleave": _canon(app.interleave),
                "preinstalled": _canon(
                    list(app.preinstalled) if app.preinstalled is not None
                    else None
                ),
                "start_at": app.start_at,
            }
            for app in spec.apps
        ],
        "epoch_cycles": spec.epoch_cycles,
        "mode": spec.mode.value,
        "max_epochs": spec.max_epochs,
        "report": _canon(spec.report),
        # Tracing changes what a session records (trace artifacts live in
        # the cached document), so traced and untraced runs cache apart.
        "trace": _canon(spec.trace),
    }


def canonical_config(config: MachineConfig) -> Dict[str, Any]:
    if is_dataclass(config):
        return _canon(asdict(config))
    return _canon(config)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file: reruns after a code change miss.

    Computed once per process; a campaign parent computes it before
    forking workers, so a single campaign always sees one value.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def job_key(
    spec: ProfileSpec,
    config: MachineConfig,
    *,
    max_events: Optional[int] = None,
    extra: Any = None,
    code_version: Optional[str] = None,
) -> str:
    """Content-addressed key of one profiling job (40 hex chars)."""
    document = {
        "format": KEY_FORMAT,
        "code": code_version if code_version is not None else code_fingerprint(),
        "config": canonical_config(config),
        "spec": canonical_spec(spec),
        "max_events": max_events,
        "extra": _canon(extra),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


def local_node_id(config: MachineConfig) -> int:
    """Node id of the first socket-local DDR node for ``config``."""
    return 0


def cxl_node_id(config: MachineConfig, index: int = 0) -> int:
    """Node id of the ``index``-th CXL node, without building a Machine.

    Mirrors :func:`repro.sim.machine._build_nodes`: local DDR first, an
    optional remote-socket DDR node, then one node per CXL device.
    """
    if index >= config.num_cxl_devices:
        raise IndexError(
            f"config has {config.num_cxl_devices} CXL devices, asked for "
            f"index {index}"
        )
    return 1 + (1 if config.remote_mem_bytes else 0) + index
