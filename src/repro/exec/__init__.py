"""Campaign execution: parallel fan-out with content-addressed caching.

``repro.exec`` turns one-off profiling runs into repeatable campaigns:

* :mod:`~repro.exec.hashing` - stable job keys from (spec, machine
  config, code version);
* :mod:`~repro.exec.cache` - a ``results/cache/`` store of session
  digests keyed by those hashes;
* :mod:`~repro.exec.runner` - the scheduler: worker-pool fan-out,
  per-job timeout, bounded retries, structured per-job records;
* :mod:`~repro.exec.pool` - the warm :class:`WorkerPool` behind it:
  persistent forkserver workers, length-prefixed pipe protocol,
  per-worker job quotas and timeout-kill-respawn.

Most users want :func:`repro.api.run_many`, which wraps all of this.
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_DISABLE_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    coerce_cache,
    default_cache,
)
from .hashing import (
    canonical_config,
    canonical_spec,
    code_fingerprint,
    cxl_node_id,
    job_key,
    local_node_id,
)
from .pool import PoolSpawnError, WorkerPool
from .runner import (
    CampaignJob,
    CampaignResult,
    JobRecord,
    expand_duplicates,
    run_campaign,
    run_single_job,
)
from .scenarios import congestion_ab_jobs, fabric_matrix_jobs

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "DEFAULT_CACHE_DIR",
    "CampaignJob",
    "CampaignResult",
    "JobRecord",
    "PoolSpawnError",
    "ResultCache",
    "WorkerPool",
    "canonical_config",
    "canonical_spec",
    "code_fingerprint",
    "coerce_cache",
    "congestion_ab_jobs",
    "cxl_node_id",
    "default_cache",
    "expand_duplicates",
    "fabric_matrix_jobs",
    "job_key",
    "local_node_id",
    "run_campaign",
    "run_single_job",
]
