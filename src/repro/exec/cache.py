"""Content-addressed result store under ``results/cache/``.

Entries are one JSON file per job key holding the session digest
(:func:`repro.core.persistence.result_to_document`) plus job metadata.
Reads verify the recorded key and fall back to recompute on any decode
or reconstruction error, deleting the corrupt entry; writes go through a
temp file + hard link so a killed worker can never leave a torn entry
behind and concurrent writers racing on one key resolve deterministically
(first writer wins; the losers' recomputed-but-identical entries are
discarded, so a ``get`` after any ``put`` always reads one stable entry).

Long-lived daemons (``repro.serve``) keep a cache open indefinitely:
:meth:`ResultCache.stats` sizes it and :meth:`ResultCache.prune` evicts
least-recently-used entries (reads touch the entry mtime) down to a byte
budget.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.persistence import result_from_document, result_to_document
from ..core.profiler import ProfileResult

logger = logging.getLogger(__name__)

ENTRY_FORMAT = 1

#: Environment overrides honoured by :func:`default_cache`.
CACHE_DIR_ENV = "PATHFINDER_CACHE_DIR"
CACHE_DISABLE_ENV = "PATHFINDER_NO_CACHE"

DEFAULT_CACHE_DIR = Path("results") / "cache"


class ResultCache:
    """A directory of content-addressed :class:`ProfileResult` digests."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- plumbing --------------------------------------------------------

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key: {key!r}")
        return self.root / f"{key}.json"

    def entry_path(self, key: str) -> Path:
        """Where ``key``'s entry lives (whether or not it exists yet).

        Public so tiered stores (:class:`repro.durable.PullThroughCache`)
        can hydrate and publish entries as whole files.
        """
        return self._path(key)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    # -- read ------------------------------------------------------------

    def get(self, key: str) -> Optional[ProfileResult]:
        """Return the cached result, or None on miss/corruption."""
        entry = self.get_entry(key)
        if entry is None:
            return None
        try:
            return result_from_document(entry["session"])
        except Exception as exc:  # corrupt entry: recompute, don't crash
            path = self._path(key)
            logger.warning("dropping corrupt cache entry %s: %s", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            self.hits -= 1
            self.misses += 1
            return None

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified raw entry (``session`` digest + ``meta``) or None.

        What a long-lived server wants on the idempotent-resubmission
        path: hit detection and counter totals straight off the stored
        document, without paying :func:`result_from_document`'s analysis
        replay.  Counts a hit/miss and refreshes LRU recency exactly like
        :meth:`get`.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except (OSError, FileNotFoundError):
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("entry_format") != ENTRY_FORMAT:
                raise ValueError(
                    f"unsupported cache entry format: {entry.get('entry_format')}"
                )
            if entry.get("key") != key:
                raise ValueError("cache entry key mismatch")
        except Exception as exc:  # corrupt entry: recompute, don't crash
            logger.warning("dropping corrupt cache entry %s: %s", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)
        return entry

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The metadata stored next to an entry (tag, timings, ...)."""
        path = self._path(key)
        try:
            return json.loads(path.read_text()).get("meta", {})
        except Exception:
            return None

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime (LRU recency for :meth:`prune`)."""
        try:
            os.utime(path)
        except OSError:
            pass

    # -- write -----------------------------------------------------------

    def put(
        self,
        key: str,
        result: ProfileResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store ``result`` under ``key`` atomically; first writer wins."""
        return self.put_document(key, result_to_document(result), meta)

    def put_document(
        self,
        key: str,
        session_document: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store an already-digested session (what workers ship back).

        Writes go to a temp file that is hard-linked into place, which is
        atomic *and* exclusive: when two writers race on one key, exactly
        one entry survives and later ``get`` calls deterministically read
        that entry (instead of whichever loser renamed last).  Entries
        for one key are content-equal by construction - the key hashes
        the whole job - so losing the race costs nothing.
        """
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "entry_format": ENTRY_FORMAT,
            "key": key,
            "meta": meta or {},
            "session": session_document,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                pass  # a concurrent writer won; keep its entry
            except OSError:
                # Filesystem without hard links: fall back to the (last-
                # writer-wins, still atomic) rename.
                os.replace(tmp_name, path)
                return path
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        return path

    # -- maintenance -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Size and traffic counters for this store."""
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries += 1
                total_bytes += stat.st_size
                mtime = stat.st_mtime
                oldest = mtime if oldest is None else min(oldest, mtime)
                newest = mtime if newest is None else max(newest, mtime)
        lookups = self.hits + self.misses
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hits / lookups if lookups else 0.0,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """Evict least-recently-used entries until <= ``max_bytes`` remain.

        Recency is entry mtime, which :meth:`get` refreshes on every hit,
        so a long-lived daemon keeps its warm entries and sheds the cold
        tail.  Returns ``{"removed": n, "freed_bytes": b,
        "remaining_bytes": r}``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = []
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": total - freed,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def link_or_copy(src: Union[str, Path], dst: Union[str, Path]) -> None:
    """Materialize ``src`` at ``dst``: hard link, else atomic copy.

    First writer wins (an existing ``dst`` is kept untouched), matching
    :meth:`ResultCache.put_document`'s race discipline; entries for one
    key are content-equal so losing costs nothing.  Raises ``OSError``
    only when ``dst`` could not be produced at all.
    """
    src = Path(src)
    dst = Path(dst)
    dst.parent.mkdir(parents=True, exist_ok=True)
    try:
        os.link(src, dst)
        return
    except FileExistsError:
        return
    except OSError:
        pass  # cross-device or no-hard-link fs: copy below
    fd, tmp_name = tempfile.mkstemp(dir=str(dst.parent),
                                    prefix=f".{dst.stem[:12]}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(src.read_bytes())
        try:
            os.link(tmp_name, dst)
        except FileExistsError:
            pass
        except OSError:
            os.replace(tmp_name, dst)
            return
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


def coerce_cache(
    cache: Union[None, bool, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Normalize the many ways callers spell 'use a cache'."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def default_cache() -> Optional[ResultCache]:
    """The process-default cache, honouring the env overrides."""
    if os.environ.get(CACHE_DISABLE_ENV, "") not in ("", "0"):
        return None
    return ResultCache(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))
