"""Content-addressed result store under ``results/cache/``.

Entries are one JSON file per job key holding the session digest
(:func:`repro.core.persistence.result_to_document`) plus job metadata.
Reads verify the recorded key and fall back to recompute on any decode
or reconstruction error, deleting the corrupt entry; writes go through a
temp file + rename so a killed worker can never leave a torn entry
behind.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.persistence import result_from_document, result_to_document
from ..core.profiler import ProfileResult

logger = logging.getLogger(__name__)

ENTRY_FORMAT = 1

#: Environment overrides honoured by :func:`default_cache`.
CACHE_DIR_ENV = "PATHFINDER_CACHE_DIR"
CACHE_DISABLE_ENV = "PATHFINDER_NO_CACHE"

DEFAULT_CACHE_DIR = Path("results") / "cache"


class ResultCache:
    """A directory of content-addressed :class:`ProfileResult` digests."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- plumbing --------------------------------------------------------

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key: {key!r}")
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    # -- read ------------------------------------------------------------

    def get(self, key: str) -> Optional[ProfileResult]:
        """Return the cached result, or None on miss/corruption."""
        path = self._path(key)
        try:
            raw = path.read_text()
        except (OSError, FileNotFoundError):
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("entry_format") != ENTRY_FORMAT:
                raise ValueError(
                    f"unsupported cache entry format: {entry.get('entry_format')}"
                )
            if entry.get("key") != key:
                raise ValueError("cache entry key mismatch")
            result = result_from_document(entry["session"])
        except Exception as exc:  # corrupt entry: recompute, don't crash
            logger.warning("dropping corrupt cache entry %s: %s", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The metadata stored next to an entry (tag, timings, ...)."""
        path = self._path(key)
        try:
            return json.loads(path.read_text()).get("meta", {})
        except Exception:
            return None

    # -- write -----------------------------------------------------------

    def put(
        self,
        key: str,
        result: ProfileResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Store ``result`` under ``key`` atomically."""
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "entry_format": ENTRY_FORMAT,
            "key": key,
            "meta": meta or {},
            "session": result_to_document(result),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def coerce_cache(
    cache: Union[None, bool, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Normalize the many ways callers spell 'use a cache'."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def default_cache() -> Optional[ResultCache]:
    """The process-default cache, honouring the env overrides."""
    if os.environ.get(CACHE_DISABLE_ENV, "") not in ("", "0"):
        return None
    return ResultCache(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))
