"""Parallel campaign runner: fan profiling jobs over a worker pool.

The paper's evaluation is dozens of independent ``PathFinder`` sessions
(figure sweeps, app x node grids, load sweeps).  A :class:`CampaignJob`
describes one such session declaratively - spec + machine config (+ an
optional picklable ``setup`` hook for stateful extras like tiering
engines or pre-installed regions) - and :func:`run_campaign` executes a
batch of them with:

* **content-addressed caching** - each job's canonical hash keys a
  ``results/cache/`` store, so reruns and overlapping sweeps are
  near-free (see :mod:`repro.exec.hashing` / :mod:`repro.exec.cache`);
* **process parallelism** - cache misses fan out over ``workers``
  single-job processes; results travel back as JSON session digests, so
  a worker crash can never poison the parent;
* **robustness** - per-job wall-clock timeout (enforced by terminating
  the worker), bounded retry with exponential backoff, and graceful
  degradation: a failed job yields a structured :class:`JobRecord`
  instead of crashing the sweep;
* **observability** - per-job timing / event-count / cache-hit metrics
  and a campaign summary, rendered by
  :func:`repro.core.report.render_campaign`.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.persistence import result_from_document, result_to_document
from ..core.profiler import PathFinder, ProfileResult
from ..core.spec import ProfileSpec
from ..sim.engine import SimulationBudgetExceeded
from ..sim.machine import Machine
from ..sim.topology import MachineConfig, spr_config
from ..sim.warp import fidelity_token
from .cache import ResultCache, coerce_cache
from .hashing import job_key
from .pool import PoolSpawnError, WorkerPool

logger = logging.getLogger(__name__)

#: Poll interval of the parent scheduling loop (seconds).
_POLL_S = 0.02


@dataclass
class CampaignJob:
    """One declarative profiling job within a campaign."""

    spec: ProfileSpec
    config: MachineConfig = field(default_factory=spr_config)
    tag: str = ""
    #: Per-job wall-clock limit (seconds); falls back to the campaign's.
    timeout: Optional[float] = None
    #: Simulation event budget; exceeding it is a retryable failure.
    max_events: Optional[int] = None
    #: Optional picklable hook ``setup(machine, spec)`` run before the
    #: profiler starts - attach tiering engines, pre-install regions, ...
    setup: Optional[Callable[[Machine, ProfileSpec], None]] = None
    #: Extra data folded into the cache key (parameters the setup hook
    #: applies that the spec itself does not capture).
    key_extra: Any = None
    #: Set False to always recompute this job (e.g. non-deterministic
    #: setup hooks).
    cacheable: bool = True
    #: Streaming profiling: ``True`` or a :class:`repro.live.LiveSpec`.
    #: Deliberately NOT part of the cache key - live mode changes what is
    #: streamed while the job runs, not the profiling result document.
    live: Any = None
    #: ``"exact"`` | ``"adaptive"`` | :class:`repro.sim.warp.WarpSpec`.
    #: Non-exact fidelity IS part of the cache key: warped counters are
    #: extrapolations and must never shadow exact results (the default
    #: leaves existing keys untouched).
    fidelity: Any = "exact"

    def key(self) -> str:
        # The setup hook is part of the job's content: a partial's bound
        # arguments (e.g. tiering on/off) must key distinct entries.
        extra = self.key_extra if self.setup is None else [self.setup,
                                                           self.key_extra]
        token = fidelity_token(self.fidelity)
        if token is not None:
            extra = ["fidelity", token, extra]
        return job_key(
            self.spec, self.config, max_events=self.max_events, extra=extra
        )


@dataclass
class JobRecord:
    """Structured per-job outcome: status, metrics, and error context."""

    index: int
    tag: str
    key: str
    status: str = "pending"          # ok | cache_hit | failed
    failure: Optional[str] = None    # timeout | budget_exceeded | error | crashed
    error: Optional[str] = None
    attempts: int = 0
    wall_time: float = 0.0
    events_executed: int = 0
    total_cycles: float = 0.0
    num_epochs: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cache_hit")

    @property
    def cache_hit(self) -> bool:
        return self.status == "cache_hit"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "tag": self.tag,
            "key": self.key,
            "status": self.status,
            "failure": self.failure,
            "error": self.error,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
            "events_executed": self.events_executed,
            "total_cycles": self.total_cycles,
            "num_epochs": self.num_epochs,
        }


@dataclass
class CampaignResult:
    """Everything a campaign produced, in input order."""

    jobs: List[JobRecord]
    results: List[Optional[ProfileResult]]
    wall_time: float = 0.0
    workers: int = 1
    #: Pool workers that failed to start (process/fd limits); those jobs
    #: degraded to in-process execution instead of being lost.
    spawn_failures: int = 0
    #: Pool workers retired after serving their per-worker job quota.
    workers_recycled: int = 0

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(zip(self.jobs, self.results))

    @property
    def ok(self) -> List[JobRecord]:
        return [j for j in self.jobs if j.ok]

    @property
    def failed(self) -> List[JobRecord]:
        return [j for j in self.jobs if not j.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for j in self.jobs if j.cache_hit)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.jobs) if self.jobs else 0.0

    def result_for(self, tag: str) -> ProfileResult:
        for job, result in zip(self.jobs, self.results):
            if job.tag == tag:
                if result is None:
                    raise KeyError(f"job {tag!r} failed: {job.failure}")
                return result
        raise KeyError(f"no job tagged {tag!r}")

    def summary(self) -> Dict[str, Any]:
        return {
            "jobs": len(self.jobs),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "workers": self.workers,
            "wall_time": self.wall_time,
            "total_events": sum(j.events_executed for j in self.jobs),
            "total_sim_cycles": sum(j.total_cycles for j in self.jobs),
            "spawn_failures": self.spawn_failures,
            "workers_recycled": self.workers_recycled,
        }


# -- job execution (runs in the worker, and in-process when serial) ---------


def _execute_job(
    spec: ProfileSpec,
    config: MachineConfig,
    max_events: Optional[int],
    setup: Optional[Callable[[Machine, ProfileSpec], None]],
    live: Any = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    fidelity: Any = None,
) -> Dict[str, Any]:
    """Run one profiling session; returns a transportable outcome dict.

    With ``live`` set, the profiler streams per-epoch digests to
    ``progress`` while the simulation runs (the serve daemon's
    ``/v1/live`` feed); the outcome dict is unchanged either way.
    """
    machine = Machine(config)
    for app in spec.apps:
        reseed = getattr(app.workload, "reseed", None)
        if reseed is not None:
            reseed()
    if setup is not None:
        setup(machine, spec)
    profiler = PathFinder(machine, spec, live=live, on_epoch=progress,
                          fidelity=fidelity)
    if max_events is not None:
        # Bound the whole session, not each epoch: the engine's persistent
        # budget composes across the profiler's per-epoch run() calls and
        # surfaces as a typed, retryable job failure when exhausted.
        machine.engine.set_event_budget(max_events)
    result = profiler.run()
    return {
        "ok": True,
        "document": result_to_document(result),
        "events_executed": machine.engine.events_executed,
        "total_cycles": result.total_cycles,
        "num_epochs": result.num_epochs,
    }


def _worker_main(conn, spec, config, max_events, setup, live=None,
                 fidelity=None) -> None:
    """Entry point of a single-job worker process.

    With ``live``, per-epoch digests are interleaved on the pipe as
    ``{"live": digest}`` messages ahead of the final outcome dict (which
    always carries an ``"ok"`` key, so the parent can tell them apart).
    """
    progress = None
    if live is not None and live is not False:

        def progress(digest, _conn=conn):
            try:
                _conn.send({"live": digest})
            except (OSError, ValueError):
                pass  # parent went away; keep simulating for the cache

    try:
        try:
            outcome = _execute_job(
                spec, config, max_events, setup, live=live, progress=progress,
                fidelity=fidelity,
            )
        except SimulationBudgetExceeded as exc:
            outcome = {
                "ok": False,
                "kind": "budget_exceeded",
                "error": str(exc),
                "events_executed": exc.events_executed,
                "total_cycles": exc.now,
            }
        except Exception:
            outcome = {
                "ok": False,
                "kind": "error",
                "error": traceback.format_exc(limit=20),
            }
        conn.send(outcome)
    finally:
        conn.close()


def run_single_job(
    spec: ProfileSpec,
    config: MachineConfig,
    *,
    max_events: Optional[int] = None,
    setup: Optional[Callable[[Machine, ProfileSpec], None]] = None,
    timeout: Optional[float] = None,
    live: Any = None,
    on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    fidelity: Any = None,
) -> Dict[str, Any]:
    """Execute one job in a dedicated worker process; returns its outcome.

    The single-job building block ``repro.serve`` drains its queue with:
    same worker entry point as the campaign pool, same transportable
    outcome dicts (``{"ok": True, "document": ...}`` on success,
    ``{"ok": False, "kind": "timeout" | "budget_exceeded" | "error" |
    "crashed", ...}`` otherwise), with the wall-clock ``timeout``
    enforced by terminating the worker.  Always adds ``wall_time``.

    With ``live``, the worker streams per-epoch digests over the pipe
    and each one is handed to ``on_progress`` as it arrives - the final
    outcome is still the return value.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker_main,
        args=(child_conn, spec, config, max_events, setup, live, fidelity),
        daemon=True,
    )
    began = time.monotonic()
    try:
        proc.start()
    except OSError:
        # Process limit or similar: degrade to in-process execution
        # (no wall-clock enforcement, as in the campaign pool).
        parent_conn.close()
        child_conn.close()
        try:
            outcome = _execute_job(
                spec, config, max_events, setup, live=live,
                progress=on_progress, fidelity=fidelity,
            )
        except SimulationBudgetExceeded as exc:
            outcome = {
                "ok": False, "kind": "budget_exceeded", "error": str(exc),
                "events_executed": exc.events_executed, "total_cycles": exc.now,
            }
        except Exception:
            outcome = {
                "ok": False, "kind": "error",
                "error": traceback.format_exc(limit=20),
            }
        outcome["wall_time"] = time.monotonic() - began
        return outcome
    child_conn.close()
    deadline = began + timeout if timeout is not None else None
    outcome: Optional[Dict[str, Any]] = None
    try:
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                proc.terminate()
                outcome = {
                    "ok": False,
                    "kind": "timeout",
                    "error": (
                        f"job exceeded its {timeout:.1f}s wall-clock budget"
                    ),
                }
                break
            if parent_conn.poll(min(_POLL_S * 5, remaining)
                                if remaining is not None else _POLL_S * 5):
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    outcome = None
                    break
                # Live progress interleaves ahead of the final outcome;
                # only a dict carrying "ok" ends the job.
                if isinstance(message, dict) and "ok" not in message:
                    if on_progress is not None and "live" in message:
                        on_progress(message["live"])
                    continue
                outcome = message
                break
            if not proc.is_alive():
                # Drain anything that landed between poll() and exit.
                while parent_conn.poll(0):
                    try:
                        message = parent_conn.recv()
                    except (EOFError, OSError):
                        break
                    if isinstance(message, dict) and "ok" not in message:
                        if on_progress is not None and "live" in message:
                            on_progress(message["live"])
                        continue
                    outcome = message
                    break
                break
    finally:
        parent_conn.close()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
    if outcome is None:
        outcome = {
            "ok": False,
            "kind": "crashed",
            "error": f"worker exited with code {proc.exitcode} before "
                     "reporting a result",
        }
    outcome["wall_time"] = time.monotonic() - began
    return outcome


# -- the campaign scheduler -------------------------------------------------


def run_campaign(
    jobs: Sequence[CampaignJob],
    *,
    workers: Optional[int] = None,
    parallel: bool = True,
    cache: Union[None, bool, str, ResultCache] = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
    pool: Optional[WorkerPool] = None,
) -> CampaignResult:
    """Execute ``jobs``, returning per-job results and records.

    ``workers`` defaults to ``min(4, cpu_count)``.  ``retries`` is the
    number of *additional* attempts granted to a job that times out,
    exceeds its event budget, raises, or crashes its worker; attempts are
    spaced by ``backoff * 2**(attempt-1)`` seconds.  A job that exhausts
    its attempts contributes a failed :class:`JobRecord` (with the last
    failure kind and message) while every other job still completes.

    Cache misses run on a warm :class:`~repro.exec.pool.WorkerPool`
    (workers persist across jobs); pass ``pool`` to reuse one across
    campaigns - the caller then owns its lifetime.
    """
    jobs = list(jobs)
    cache_obj = coerce_cache(cache)
    started = time.monotonic()
    if workers is None:
        workers = min(4, multiprocessing.cpu_count() or 1)
    workers = max(1, workers)

    records = [
        JobRecord(index=i, tag=job.tag or f"job{i}", key=job.key())
        for i, job in enumerate(jobs)
    ]
    results: List[Optional[ProfileResult]] = [None] * len(jobs)

    # Cache probe first: hits never enter the pool.
    pending: deque = deque()
    resolved_keys: Dict[str, int] = {}
    for i, (job, record) in enumerate(zip(jobs, records)):
        cached = (
            cache_obj.get(record.key)
            if cache_obj is not None and job.cacheable
            else None
        )
        if cached is not None:
            results[i] = cached
            record.status = "cache_hit"
            meta = cache_obj.meta(record.key) or {}
            record.events_executed = int(meta.get("events_executed", 0))
            record.total_cycles = float(meta.get("total_cycles",
                                                 cached.total_cycles))
            record.num_epochs = cached.num_epochs
            logger.debug("campaign job %s: cache hit (%s)", record.tag,
                         record.key[:12])
        elif record.key in resolved_keys and job.cacheable:
            # Duplicate spec within one campaign: compute once, share.
            pending.append(("dup", i, resolved_keys[record.key]))
        else:
            resolved_keys[record.key] = i
            pending.append(("run", i, 0))

    def finalize_ok(i: int, outcome: Dict[str, Any], wall: float) -> None:
        job, record = jobs[i], records[i]
        results[i] = result_from_document(outcome["document"])
        record.status = "ok"
        record.failure = record.error = None
        record.wall_time += wall
        record.events_executed = int(outcome.get("events_executed", 0))
        record.total_cycles = float(outcome.get("total_cycles", 0.0))
        record.num_epochs = int(outcome.get("num_epochs", 0))
        if cache_obj is not None and job.cacheable:
            try:
                cache_obj.put(
                    record.key,
                    results[i],
                    meta={
                        "tag": record.tag,
                        "wall_time": record.wall_time,
                        "events_executed": record.events_executed,
                        "total_cycles": record.total_cycles,
                    },
                )
            except OSError as exc:
                logger.warning("could not persist %s: %s", record.key, exc)

    def note_failure(i: int, kind: str, message: Optional[str],
                     outcome: Optional[Dict[str, Any]], wall: float) -> bool:
        """Record one failed attempt; True if the job may retry."""
        record = records[i]
        record.wall_time += wall
        record.failure = kind
        record.error = message
        if outcome:
            record.events_executed = int(outcome.get("events_executed", 0))
            record.total_cycles = float(outcome.get("total_cycles", 0.0))
        retryable = record.attempts <= retries
        logger.warning(
            "campaign job %s attempt %d failed (%s)%s",
            record.tag, record.attempts, kind,
            ": retrying" if retryable else ": giving up",
        )
        if not retryable:
            record.status = "failed"
        return retryable

    # Timeout enforcement needs a worker process to terminate, so any
    # requested wall-clock budget forces the pool path even for a single
    # job or a single-core pool.
    wants_timeout = timeout is not None or any(
        job.timeout is not None for job in jobs
    )
    run_parallel = parallel and len(pending) > 0 and (
        (workers > 1 and len(pending) > 1) or wants_timeout
    )
    pool_stats: Dict[str, int] = {}
    if run_parallel:
        pool_stats = _drain_parallel(jobs, records, pending, workers, timeout,
                                     finalize_ok, note_failure, backoff,
                                     pool=pool)
    else:
        _drain_serial(jobs, records, pending, finalize_ok, note_failure,
                      backoff)

    # Resolve intra-campaign duplicates against their computed twin.
    for record, result in zip(records, results):
        if record.status == "pending":
            record.status = "failed"
            record.failure = record.failure or "error"
            record.error = record.error or "job was never scheduled"
    campaign = CampaignResult(
        jobs=records,
        results=results,
        wall_time=time.monotonic() - started,
        workers=workers if run_parallel else 1,
        spawn_failures=pool_stats.get("spawn_failures", 0),
        workers_recycled=pool_stats.get("workers_recycled", 0),
    )
    return campaign


def _drain_serial(jobs, records, pending, finalize_ok, note_failure,
                  backoff) -> None:
    """In-process execution path (``parallel=False`` or a single job).

    Timeouts are not enforced here: there is no worker to terminate.
    """
    while pending:
        kind, i, extra = pending.popleft()
        if kind == "dup":
            _resolve_duplicate(jobs, records, pending, i, extra)
            continue
        job, record = jobs[i], records[i]
        record.attempts += 1
        began = time.monotonic()
        try:
            outcome = _execute_job(job.spec, job.config, job.max_events,
                                   job.setup, fidelity=job.fidelity)
        except SimulationBudgetExceeded as exc:
            failed = {"events_executed": exc.events_executed,
                      "total_cycles": exc.now}
            if note_failure(i, "budget_exceeded", str(exc), failed,
                            time.monotonic() - began):
                time.sleep(backoff * (2 ** (record.attempts - 1)))
                pending.append(("run", i, 0))
            continue
        except Exception:
            if note_failure(i, "error", traceback.format_exc(limit=20), None,
                            time.monotonic() - began):
                time.sleep(backoff * (2 ** (record.attempts - 1)))
                pending.append(("run", i, 0))
            continue
        finalize_ok(i, outcome, time.monotonic() - began)


def _drain_parallel(jobs, records, pending, workers, timeout, finalize_ok,
                    note_failure, backoff,
                    pool: Optional[WorkerPool] = None) -> Dict[str, int]:
    """Fan pending jobs over the warm worker pool.

    Workers persist across jobs (see :mod:`repro.exec.pool`); the pool
    enforces per-job deadlines by killing and replacing the worker, and
    recycles workers after their job quota.  Returns the pool's spawn /
    recycle statistics for the campaign summary.
    """
    own_pool = pool is None
    if pool is None:
        pool = WorkerPool(workers=workers)
    not_before: Dict[int, float] = {}

    def retry_or_fail(i: int, kind: str, message, outcome, wall) -> None:
        if note_failure(i, kind, message, outcome, wall):
            not_before[i] = time.monotonic() + backoff * (
                2 ** (records[i].attempts - 1)
            )
            pending.append(("run", i, 0))

    try:
        while pending or pool.busy_count:
            # Launch as many ready jobs as there are free workers.
            deferred = []
            while pending and pool.has_capacity:
                kind, i, extra = pending.popleft()
                if kind == "dup":
                    if records[extra].status == "pending":
                        deferred.append((kind, i, extra))  # twin not done yet
                    else:
                        _resolve_duplicate(jobs, records, pending, i, extra)
                    continue
                if not_before.get(i, 0.0) > time.monotonic():
                    deferred.append((kind, i, extra))
                    continue
                job, record = jobs[i], records[i]
                record.attempts += 1
                limit = job.timeout if job.timeout is not None else timeout
                try:
                    pool.dispatch(
                        i, job.spec, job.config, max_events=job.max_events,
                        setup=job.setup, fidelity=job.fidelity, timeout=limit,
                    )
                except PoolSpawnError as exc:  # process limit: go serial
                    logger.warning("pool worker spawn failed (%s); running "
                                   "%s in-process", exc, record.tag)
                    record.attempts -= 1  # the serial path re-counts it
                    deferred.append((kind, i, extra))
                    if not pool.busy_count:
                        _drain_serial(jobs, records,
                                      deque(deferred + list(pending)),
                                      finalize_ok, note_failure, backoff)
                        pending.clear()
                        deferred = []
                    break
            pending.extendleft(reversed(deferred))

            if not pool.busy_count:
                if pending:
                    time.sleep(_POLL_S)
                continue

            for i, outcome in pool.poll(_POLL_S):
                wall = float(outcome.get("wall_time", 0.0))
                if outcome.get("ok"):
                    finalize_ok(i, outcome, wall)
                else:
                    retry_or_fail(i, outcome.get("kind", "error"),
                                  outcome.get("error"), outcome, wall)
    finally:
        stats = {
            "spawn_failures": pool.spawn_failures,
            "workers_recycled": pool.recycled,
            "workers_spawned": pool.spawned,
        }
        if own_pool:
            pool.close()
    return stats


def _resolve_duplicate(jobs, records, pending, i: int, twin: int) -> None:
    """Share a twin job's outcome with a duplicate-spec job.

    A successful twin is shared as a free ``cache_hit``.  A twin that is
    still retrying defers the duplicate.  A twin that *failed* promotes
    the duplicate to run on its own attempt budget - a transient failure
    (timeout, crashed worker) must not cascade through every duplicate -
    and re-points any later duplicates of the same key at the promoted
    job, so at most one execution is in flight per key at a time.
    """
    twin_record = records[twin]
    record = records[i]
    if twin_record.status == "pending":
        pending.append(("dup", i, twin))  # twin still retrying: wait
        return
    if twin_record.status in ("ok", "cache_hit"):
        record.status = "cache_hit"
        record.events_executed = twin_record.events_executed
        record.total_cycles = twin_record.total_cycles
        record.num_epochs = twin_record.num_epochs
        # The result object is shared via the results list by the caller.
    else:
        for idx, entry in enumerate(pending):
            if entry[0] == "dup" and entry[2] == twin:
                pending[idx] = ("dup", entry[1], i)
        logger.warning(
            "campaign job %s: twin %s failed (%s); promoting the "
            "duplicate to its own run", record.tag, twin_record.tag,
            twin_record.failure,
        )
        pending.append(("run", i, 0))


def expand_duplicates(campaign: CampaignResult) -> None:
    """Fill duplicate jobs' result slots from their computed twin."""
    by_key: Dict[str, ProfileResult] = {}
    for record, result in zip(campaign.jobs, campaign.results):
        if result is not None:
            by_key.setdefault(record.key, result)
    for idx, record in enumerate(campaign.jobs):
        if campaign.results[idx] is None and record.ok:
            campaign.results[idx] = by_key.get(record.key)
