"""Memory-trace record and replay.

The paper's substitution for proprietary production traces is synthetic
generation, but a real deployment of a profiler is often driven by
recorded traces (e.g. PIN/DynamoRIO memory traces).  This module closes
that loop: any workload's op stream can be recorded to a compact text
format and replayed later - byte-identical - so experiments are portable
across machines and repository users can ship trace files instead of
generator code.

Format: one op per line, ``<address_hex> <flags> <gap>`` where flags is a
combination of ``s`` (store), ``d`` (dependent), ``p`` (software
prefetch), or ``-`` for a plain load.  Lines starting with ``#`` are
comments; the header records the working-set size.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..sim.request import MemOp
from .base import Workload

_FORMAT_HEADER = "# repro-memtrace v1"


def record_trace(
    ops: Iterable[MemOp], path: Union[str, Path],
    working_set_bytes: int = 0,
    base_address: int = 0,
) -> int:
    """Write an op stream to ``path``; returns the number of ops written.

    Addresses are stored relative to ``base_address`` so replays can be
    re-based onto any region.
    """
    count = 0
    with open(path, "w") as handle:
        handle.write(f"{_FORMAT_HEADER}\n")
        handle.write(f"# working_set_bytes={working_set_bytes}\n")
        for op in ops:
            flags = ""
            if op.is_store:
                flags += "s"
            if op.dependent:
                flags += "d"
            if op.software_prefetch:
                flags += "p"
            handle.write(
                f"{op.address - base_address:x} {flags or '-'} {op.gap!r}\n"
            )
            count += 1
    return count


def record_workload(workload: Workload, path: Union[str, Path]) -> int:
    """Record a workload's full op stream (relative addresses)."""
    return record_trace(
        workload.ops(), path,
        working_set_bytes=workload.working_set_bytes,
        base_address=workload.base_address,
    )


class TraceWorkload(Workload):
    """Replay a recorded trace as a workload.

    The trace's relative addresses are re-based onto this workload's own
    virtual region, so a replay can be bound to any NUMA node like any
    generated workload.
    """

    def __init__(self, path: Union[str, Path], name: str = "", seed: int = 1,
                 **kwargs) -> None:
        self.path = Path(path)
        ops, working_set = self._parse()
        if not ops:
            raise ValueError(f"{self.path}: empty trace")
        inferred_ws = working_set or (
            max(op[0] for op in ops) + 64
        )
        super().__init__(
            name or self.path.stem,
            max(inferred_ws, 64),
            len(ops),
            seed,
            **kwargs,
        )
        self._ops = ops

    def _parse(self) -> "tuple[List[tuple], int]":
        ops: List[tuple] = []
        working_set = 0
        with open(self.path) as handle:
            first = handle.readline()
            if not first.startswith(_FORMAT_HEADER):
                raise ValueError(f"{self.path}: not a repro-memtrace file")
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if "working_set_bytes=" in line:
                        working_set = int(line.split("=", 1)[1])
                    continue
                addr_hex, flags, gap = line.split()
                ops.append(
                    (
                        int(addr_hex, 16),
                        "s" in flags,
                        "d" in flags,
                        "p" in flags,
                        float(gap),
                    )
                )
        return ops, working_set

    def ops(self) -> Iterator[MemOp]:
        base = self.base_address
        for offset, is_store, dependent, swpf, gap in self._ops:
            yield MemOp(
                address=base + offset,
                is_store=is_store,
                dependent=dependent,
                software_prefetch=swpf,
                gap=gap,
            )
