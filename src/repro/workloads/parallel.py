"""Multi-threaded workloads.

The paper's PARSEC/SPLASH-2x/GAP applications run 1-64 threads (Table 6);
threads share the working set, which is what makes the coherence paths -
core-to-core snoops, HitM forwards, RFO invalidations - light up in the
CHA PMU.  :func:`split_workload` shards one catalog workload across N
cores over a *single shared region*: each thread owns a private slice and
touches a configurable fraction of shared lines, so the directory sees
both private and contended traffic.
"""

from __future__ import annotations

from typing import Iterator, List

from ..sim.request import CACHELINE, MemOp
from .base import Workload


class ThreadShard(Workload):
    """One thread of a parallel workload: private slice + shared lines."""

    def __init__(
        self,
        parent_name: str,
        thread_id: int,
        num_threads: int,
        working_set_bytes: int,
        num_ops: int,
        read_ratio: float,
        shared_fraction: float,
        gap: float,
        seed: int,
        vpn_base: int,
    ) -> None:
        super().__init__(
            f"{parent_name}.t{thread_id}",
            working_set_bytes,
            num_ops,
            seed + thread_id * 7919,
            vpn_base=vpn_base,
        )
        self.thread_id = thread_id
        self.num_threads = num_threads
        self.read_ratio = read_ratio
        self.shared_fraction = shared_fraction
        self.gap = gap

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        lines = max(self.num_threads * 2, self.working_set_bytes // CACHELINE)
        # The shared pool is the first slice of the region; private slices
        # partition the rest.
        shared_lines = max(1, int(lines * 0.1))
        private_lines = max(1, (lines - shared_lines) // self.num_threads)
        private_base = shared_lines + self.thread_id * private_lines
        n = self.num_ops
        is_shared = self.rng.random(n) < self.shared_fraction
        shared_picks = self.rng.integers(0, shared_lines, n)
        private_picks = private_base + self.rng.integers(0, private_lines, n)
        stores = self.rng.random(n) >= self.read_ratio
        for i in range(n):
            line = int(shared_picks[i]) if is_shared[i] else int(private_picks[i])
            yield MemOp(
                address=self._addr(line * CACHELINE),
                is_store=bool(stores[i]),
                gap=self.gap,
            )


def split_workload(
    name: str,
    num_threads: int,
    working_set_bytes: int,
    num_ops_per_thread: int = 4000,
    read_ratio: float = 0.8,
    shared_fraction: float = 0.2,
    gap: float = 3.0,
    seed: int = 1,
) -> List[ThreadShard]:
    """Build N thread shards over one shared region.

    All shards report the same ``vpn_base``, so installing *any one* of
    them places the whole region; install exactly one and pin each shard
    to its own core.
    """
    if num_threads < 1:
        raise ValueError("need at least one thread")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must be in [0, 1]")
    first = ThreadShard(
        name, 0, num_threads, working_set_bytes, num_ops_per_thread,
        read_ratio, shared_fraction, gap, seed, vpn_base=None,
    )
    shards = [first]
    for thread_id in range(1, num_threads):
        shards.append(
            ThreadShard(
                name, thread_id, num_threads, working_set_bytes,
                num_ops_per_thread, read_ratio, shared_fraction, gap, seed,
                vpn_base=first.vpn_base,
            )
        )
    return shards
