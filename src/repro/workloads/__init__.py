"""Synthetic workload generators standing in for the paper's 77 applications.

The profiler observes memory-access streams, not binaries, so each
application from Table 6 is represented by a deterministic generator of
the same locality class and working-set size (scaled).  The catalog lives
in :mod:`repro.workloads.suites`; the pattern primitives in
:mod:`repro.workloads.synthetic`.
"""

from .base import Workload
from .graph import BFSWorkload, CSRGraph, GraphWorkload, PageRankWorkload
from .kv import KVClient, KVConfig, KVStore, KVWorkload
from .parallel import ThreadShard, split_workload
from .trace import TraceWorkload, record_trace, record_workload
from .serde import workload_from_document, workload_to_document
from .suites import APPLICATIONS, AppSpec, SCALE, build_app, suite_names
from .synthetic import (
    GUPS,
    InterleavedFlows,
    MBW,
    HotColdAccess,
    PhasedWorkload,
    PointerChase,
    RandomAccess,
    SequentialStream,
    SoftwarePrefetchStream,
    StridedStream,
    ZipfAccess,
    throttled,
)

__all__ = [
    "APPLICATIONS",
    "AppSpec",
    "BFSWorkload",
    "CSRGraph",
    "GUPS",
    "GraphWorkload",
    "HotColdAccess",
    "KVClient",
    "KVConfig",
    "KVStore",
    "KVWorkload",
    "InterleavedFlows",
    "MBW",
    "PageRankWorkload",
    "PhasedWorkload",
    "PointerChase",
    "RandomAccess",
    "SCALE",
    "SequentialStream",
    "TraceWorkload",
    "SoftwarePrefetchStream",
    "StridedStream",
    "ThreadShard",
    "Workload",
    "ZipfAccess",
    "build_app",
    "record_trace",
    "split_workload",
    "record_workload",
    "suite_names",
    "throttled",
    "workload_from_document",
    "workload_to_document",
]
