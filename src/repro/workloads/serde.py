"""Workload (de)serialization for over-the-wire profiling specs.

``repro.serve`` accepts :class:`~repro.core.spec.ProfileSpec` submissions
as JSON, which needs the one piece of a spec that is a live Python
object - the workload - to have a declarative form.  Two forms are
accepted:

* ``{"kind": "catalog", "app": "519.lbm_r", ...}`` - an application from
  the Table 6 catalog, rebuilt through
  :func:`repro.workloads.suites.build_app`.  This is what remote clients
  that do not construct workloads locally (the ``pathfinder submit``
  CLI) send.
* ``{"kind": "synthetic", "type": "RandomAccess", "params": {...}}`` - a
  synthetic generator, captured parameter-by-parameter from a registry
  of known classes.  :func:`workload_to_document` always emits this
  form.

Reconstruction is exact with respect to the content-addressed job key:
``job_key(spec) == job_key(spec_from_document(spec_to_document(spec)))``
because every attribute the key canonicalization sees (everything except
the per-process ``rng`` / ``vpn_base`` identity) round-trips.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Type

from .base import Workload
from .suites import SCALE, build_app
from .synthetic import (
    GUPS,
    MBW,
    HotColdAccess,
    InterleavedFlows,
    PhasedWorkload,
    PointerChase,
    RandomAccess,
    SequentialStream,
    SoftwarePrefetchStream,
    StridedStream,
    ZipfAccess,
)

WORKLOAD_FORMAT = 1

#: Attributes every workload carries (positional on ``Workload``).
_COMMON_PARAMS: Tuple[str, ...] = ("name", "working_set_bytes", "num_ops",
                                   "seed")

#: class -> extra constructor parameters, each also an instance attribute.
#: Classes that hardcode a parameter (PointerChase pins ``dependent``)
#: list only the ones their constructor still accepts.
_REGISTRY: Dict[str, Tuple[Type[Workload], Tuple[str, ...]]] = {
    "SequentialStream": (
        SequentialStream, ("read_ratio", "gap", "stride", "accesses_per_line")
    ),
    "StridedStream": (
        StridedStream, ("read_ratio", "gap", "stride", "accesses_per_line")
    ),
    "MBW": (MBW, ("read_ratio", "gap", "stride", "accesses_per_line")),
    "RandomAccess": (RandomAccess, ("read_ratio", "gap", "dependent")),
    "GUPS": (GUPS, ("read_ratio", "gap", "dependent")),
    "PointerChase": (PointerChase, ("read_ratio", "gap")),
    "ZipfAccess": (ZipfAccess, ("theta", "read_ratio", "gap")),
    "HotColdAccess": (
        HotColdAccess,
        ("hot_fraction", "hot_probability", "read_ratio", "gap"),
    ),
    "SoftwarePrefetchStream": (
        SoftwarePrefetchStream, ("prefetch_distance_ops", "gap")
    ),
}

_BY_CLASS: Dict[Type[Workload], Tuple[str, Tuple[str, ...]]] = {
    cls: (type_name, params) for type_name, (cls, params) in _REGISTRY.items()
}


def workload_to_document(workload: Workload) -> Dict[str, Any]:
    """Declarative JSON-able form of a workload; inverse of
    :func:`workload_from_document`."""
    if type(workload) is PhasedWorkload:
        return {
            "kind": "synthetic",
            "type": "PhasedWorkload",
            "name": workload.name,
            "seed": workload.seed,
            "phases": [workload_to_document(p) for p in workload.phases],
        }
    if type(workload) is InterleavedFlows:
        return {
            "kind": "synthetic",
            "type": "InterleavedFlows",
            "name": workload.name,
            "secondary_fraction": workload.secondary_fraction,
            "primary": workload_to_document(workload.primary),
            "secondary": workload_to_document(workload.secondary),
        }
    entry = _BY_CLASS.get(type(workload))
    if entry is None:
        raise ValueError(
            f"workload type {type(workload).__qualname__} has no declarative "
            f"form; supported: {sorted(_REGISTRY)} + PhasedWorkload, "
            "InterleavedFlows, or a catalog document"
        )
    type_name, params = entry
    return {
        "kind": "synthetic",
        "type": type_name,
        "params": {
            name: getattr(workload, name)
            for name in _COMMON_PARAMS + params
        },
    }


def workload_from_document(document: Dict[str, Any]) -> Workload:
    """Rebuild a workload from its declarative document."""
    kind = document.get("kind")
    if kind == "catalog":
        return build_app(
            document["app"],
            num_ops=int(document.get("num_ops", 20000)),
            seed=int(document.get("seed", 1)),
            scale=int(document.get("scale", SCALE)),
        )
    if kind != "synthetic":
        raise ValueError(f"unknown workload document kind: {kind!r}")
    type_name = document.get("type")
    if type_name == "PhasedWorkload":
        return PhasedWorkload(
            document["name"],
            [workload_from_document(p) for p in document["phases"]],
            seed=int(document.get("seed", 1)),
        )
    if type_name == "InterleavedFlows":
        return InterleavedFlows(
            workload_from_document(document["primary"]),
            workload_from_document(document["secondary"]),
            float(document["secondary_fraction"]),
            name=document.get("name", "mixed"),
        )
    entry = _REGISTRY.get(type_name or "")
    if entry is None:
        raise ValueError(f"unknown workload type: {type_name!r}")
    cls, params = entry
    known = set(_COMMON_PARAMS + params)
    given = dict(document.get("params", {}))
    unknown = set(given) - known
    if unknown:
        raise ValueError(
            f"{type_name}: unknown parameters {sorted(unknown)}; "
            f"accepted: {sorted(known)}"
        )
    return cls(**given)
