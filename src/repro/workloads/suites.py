"""Benchmark-suite catalog (paper Table 6).

The evaluation drives 77 applications from SPEC CPU2017, PARSEC,
SPLASH-2x, GAPBS and Redis/YCSB.  We obviously cannot run the binaries,
but the profiler only observes their *memory behaviour*, so each entry
maps an application to (a) its Table 6 working-set size, scaled by
``SCALE`` so simulations finish in seconds, and (b) the synthetic access
pattern that reproduces its locality class:

* ``stream``   - dense sequential sweeps (lbm, bwaves, fotonik3d, ...)
* ``strided``  - large-stride array walks (roms, cactuBSSN, wrf, ...)
* ``random``   - scattered accesses (gups-like kernels, canneal)
* ``chase``    - dependency-serialised pointer chasing (mcf, omnetpp, ...)
* ``zipf``     - skewed key-value lookups (redis/ycsb, deepsjeng, xalancbmk)
* ``swpf``     - irregular + software prefetch (GAP graph kernels)
* ``mixed``    - phase-alternating programs (gcc, perlbench, x264)

Pattern assignments follow the applications' published memory
characterisation (streaming vs latency-bound vs irregular); they are a
modelling choice, recorded here in one place so they can be refined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import Workload
from .synthetic import (
    PhasedWorkload,
    PointerChase,
    RandomAccess,
    SequentialStream,
    SoftwarePrefetchStream,
    StridedStream,
    ZipfAccess,
)

#: Working sets from Table 6 are divided by this factor; cache sizes in the
#: default machine configs are scaled similarly, preserving the ratio of
#: working set to cache capacity that drives locality behaviour.
SCALE = 256


@dataclass(frozen=True)
class AppSpec:
    name: str
    suite: str
    working_set_mb: float
    pattern: str
    read_ratio: float = 0.85
    gap: float = 4.0

    def working_set_bytes(self, scale: int = SCALE) -> int:
        return max(1 << 16, int(self.working_set_mb * (1 << 20) / scale))


def _spec_cpu(name: str, ws: float, pattern: str, **kw) -> AppSpec:
    return AppSpec(name, "SPEC CPU2017", ws, pattern, **kw)


def _parsec(name: str, ws: float, pattern: str, **kw) -> AppSpec:
    return AppSpec(name, "PARSEC", ws, pattern, **kw)


def _splash(name: str, ws: float, pattern: str, **kw) -> AppSpec:
    return AppSpec(name, "SPLASH2X", ws, pattern, **kw)


def _gap(name: str, ws: float, pattern: str, **kw) -> AppSpec:
    return AppSpec(name, "GAPBS", ws, pattern, **kw)


APPLICATIONS: Dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        # -- SPEC CPU2017 rate (working sets in MB from Table 6) -------------
        _spec_cpu("500.perlbench_r", 202.5, "mixed"),
        _spec_cpu("502.gcc_r", 1366.9, "mixed"),
        _spec_cpu("503.bwaves_r", 822.3, "stream", read_ratio=0.9),
        _spec_cpu("505.mcf_r", 609.1, "chase", read_ratio=0.95),
        _spec_cpu("507.cactuBSSN_r", 789.5, "strided"),
        _spec_cpu("508.namd_r", 162.5, "strided"),
        _spec_cpu("510.parest_r", 419.4, "strided"),
        _spec_cpu("511.povray_r", 7.0, "random", gap=8.0),
        _spec_cpu("519.lbm_r", 410.5, "stream", read_ratio=0.67),
        _spec_cpu("520.omnetpp_r", 242.0, "chase"),
        _spec_cpu("521.wrf_r", 178.8, "strided"),
        _spec_cpu("523.xalancbmk_r", 481.0, "zipf"),
        _spec_cpu("525.x264_r", 156.0, "mixed"),
        _spec_cpu("526.blender_r", 633.7, "random"),
        _spec_cpu("527.cam4_r", 856.0, "strided"),
        _spec_cpu("531.deepsjeng_r", 699.5, "zipf"),
        _spec_cpu("538.imagick_r", 286.5, "stream"),
        _spec_cpu("541.leela_r", 24.7, "zipf", gap=8.0),
        _spec_cpu("544.nab_r", 146.3, "strided"),
        _spec_cpu("548.exchange2_r", 2.5, "random", gap=10.0),
        _spec_cpu("549.fotonik3d_r", 848.4, "stream", read_ratio=0.8),
        _spec_cpu("554.roms_r", 841.6, "strided", read_ratio=0.8),
        _spec_cpu("557.xz_r", 775.4, "random"),
        # -- SPEC CPU2017 speed ---------------------------------------------
        _spec_cpu("600.perlbench_s", 202.5, "mixed"),
        _spec_cpu("602.gcc_s", 7620.2, "mixed"),
        _spec_cpu("603.bwaves_s", 11467.1, "stream", read_ratio=0.9),
        _spec_cpu("605.mcf_s", 3960.8, "chase", read_ratio=0.95),
        _spec_cpu("607.cactuBSSN_s", 6724.0, "strided"),
        _spec_cpu("619.lbm_s", 3224.5, "stream", read_ratio=0.67),
        _spec_cpu("620.omnetpp_s", 242.3, "chase"),
        _spec_cpu("621.wrf_s", 177.8, "strided"),
        _spec_cpu("623.xalancbmk_s", 481.8, "zipf"),
        _spec_cpu("625.x264_s", 156.0, "mixed"),
        _spec_cpu("627.cam4_s", 873.6, "strided"),
        _spec_cpu("628.pop2_s", 1434.3, "strided"),
        _spec_cpu("631.deepsjeng_s", 6879.5, "zipf"),
        _spec_cpu("638.imagick_s", 7007.8, "stream"),
        _spec_cpu("641.leela_s", 25.0, "zipf", gap=8.0),
        _spec_cpu("644.nab_s", 561.3, "strided"),
        _spec_cpu("648.exchange2_s", 2.5, "random", gap=10.0),
        _spec_cpu("649.fotonik3d_s", 9642.8, "stream", read_ratio=0.8),
        _spec_cpu("654.roms_s", 10386.9, "strided", read_ratio=0.8),
        _spec_cpu("657.xz_s", 15344.0, "random"),
        # -- PARSEC ---------------------------------------------------------
        _parsec("blackscholes", 612.0, "stream"),
        _parsec("bodytrack", 32.9, "random"),
        _parsec("facesim", 304.3, "strided"),
        _parsec("ferret", 97.9, "zipf"),
        _parsec("fluidanimate", 519.5, "strided"),
        _parsec("freqmine", 631.9, "chase"),
        _parsec("raytrace", 1282.7, "chase", read_ratio=0.98),
        _parsec("swaptions", 5.5, "random", gap=10.0),
        _parsec("vips", 37.5, "stream"),
        _parsec("x264", 80.0, "mixed"),
        _parsec("canneal", 850.5, "random", read_ratio=0.9),
        _parsec("dedup", 1443.0, "zipf"),
        _parsec("streamcluster", 109.0, "stream"),
        # -- SPLASH-2x ----------------------------------------------------------
        _splash("barnes", 1584.0, "chase", read_ratio=0.8),
        _splash("ocean_cp", 3546.5, "strided"),
        _splash("radiosity", 1442.5, "random"),
        _splash("raytrace_splash", 22.5, "chase"),
        _splash("volrend", 54.0, "random"),
        _splash("water_nsquared", 28.5, "strided"),
        _splash("water_spatial", 669.5, "strided"),
        _splash("fft", 12291.0, "strided", read_ratio=0.75),
        _splash("lu_cb", 502.0, "strided"),
        _splash("lu_ncb", 501.5, "strided"),
        _splash("radix", 4097.5, "random", read_ratio=0.6),
        # -- GAPBS ----------------------------------------------------------
        _gap("bfs", 15778.0, "swpf", read_ratio=0.9),
        _gap("sssp", 36456.3, "swpf", read_ratio=0.9),
        _gap("pr", 12616.1, "stream", read_ratio=0.9),
        _gap("cc", 12381.1, "random", read_ratio=0.9),
        _gap("bc", 13394.5, "swpf", read_ratio=0.9),
        _gap("tc", 21027.0, "random", read_ratio=0.98),
        # -- Redis / YCSB -------------------------------------------------------
        AppSpec("redis", "YCSB", 1024.0, "zipf", read_ratio=0.9, gap=6.0),
        AppSpec("ycsb_a", "YCSB", 1024.0, "zipf", read_ratio=0.5, gap=6.0),
        AppSpec("ycsb_b", "YCSB", 1024.0, "zipf", read_ratio=0.95, gap=6.0),
        AppSpec("ycsb_c", "YCSB", 1024.0, "zipf", read_ratio=1.0, gap=6.0),
    ]
}


def build_app(
    name: str,
    num_ops: int = 20000,
    seed: int = 1,
    scale: int = SCALE,
) -> Workload:
    """Instantiate the synthetic stand-in for one catalog application."""
    spec = APPLICATIONS[name]
    ws = spec.working_set_bytes(scale)
    common = dict(
        name=spec.name,
        working_set_bytes=ws,
        num_ops=num_ops,
        seed=seed,
    )
    if spec.pattern == "stream":
        # Dense kernels touch several words per line: real L1 locality.
        return SequentialStream(
            read_ratio=spec.read_ratio, gap=spec.gap, accesses_per_line=4,
            **common,
        )
    if spec.pattern == "strided":
        return StridedStream(
            read_ratio=spec.read_ratio, gap=spec.gap, accesses_per_line=2,
            **common,
        )
    if spec.pattern == "random":
        return RandomAccess(read_ratio=spec.read_ratio, gap=spec.gap, **common)
    if spec.pattern == "chase":
        return PointerChase(gap=spec.gap, **common)
    if spec.pattern == "zipf":
        return ZipfAccess(read_ratio=spec.read_ratio, gap=spec.gap, **common)
    if spec.pattern == "swpf":
        return SoftwarePrefetchStream(gap=spec.gap, **common)
    if spec.pattern == "mixed":
        third = max(1, num_ops // 3)
        phases = [
            SequentialStream(
                name=f"{name}.p0", working_set_bytes=ws, num_ops=third,
                read_ratio=spec.read_ratio, gap=spec.gap, seed=seed,
            ),
            ZipfAccess(
                name=f"{name}.p1", working_set_bytes=ws, num_ops=third,
                read_ratio=spec.read_ratio, gap=spec.gap, seed=seed + 1,
            ),
            RandomAccess(
                name=f"{name}.p2", working_set_bytes=ws,
                num_ops=num_ops - 2 * third, read_ratio=max(0.3, spec.read_ratio - 0.4),
                gap=spec.gap, seed=seed + 2,
            ),
        ]
        return PhasedWorkload(spec.name, phases)
    raise ValueError(f"unknown pattern {spec.pattern!r} for {name}")


def suite_names(suite: Optional[str] = None) -> List[str]:
    if suite is None:
        return sorted(APPLICATIONS)
    return sorted(n for n, s in APPLICATIONS.items() if s.suite == suite)
