"""Synthetic access-pattern generators.

Each generator reproduces the locality class of one family of evaluation
workloads (Table 6): streaming (lbm/bwaves/MBW), random (GUPS),
pointer-chasing (mcf/omnetpp), zipf-skewed key-value (YCSB on Redis),
hot/cold sets (the TPP GUPS configuration), strided scientific kernels
(fotonik3d/roms) and phase-changing programs (gcc).  Batched numpy RNG
keeps generation cheap; streams are fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..sim.request import CACHELINE, MemOp
from .base import Workload

_BATCH = 4096

# MemOp is built positionally in the chunk builders below:
#   MemOp(address, is_store, gap, dependent, software_prefetch)


class SequentialStream(Workload):
    """Linear sweep over the working set - prefetcher heaven (MBW, lbm)."""

    def __init__(
        self,
        name: str = "stream",
        working_set_bytes: int = 1 << 22,
        num_ops: int = 20000,
        read_ratio: float = 1.0,
        gap: float = 2.0,
        stride: int = CACHELINE,
        accesses_per_line: int = 1,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(name, working_set_bytes, num_ops, seed, **kwargs)
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if stride <= 0:
            raise ValueError("stride must be positive")
        if accesses_per_line < 1:
            raise ValueError("accesses_per_line must be >= 1")
        self.read_ratio = read_ratio
        self.gap = gap
        self.stride = stride
        # Dense code touches several words of each line (8B words in a
        # 64B line); values > 1 reproduce that intra-line L1 locality.
        self.accesses_per_line = accesses_per_line

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        offset = 0
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            stores = self.rng.random(n) >= self.read_ratio
            for i in range(n):
                k = emitted + i
                yield MemOp(
                    address=self._addr(offset + (k % self.accesses_per_line) * 8),
                    is_store=bool(stores[i]),
                    gap=self.gap,
                )
                if (k + 1) % self.accesses_per_line == 0:
                    offset += self.stride
            emitted += n

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        # Op k reads offset stride*(k//apl) + (k%apl)*8, so the whole
        # address vector of a chunk is one closed-form numpy expression.
        self.reseed()
        base = self.base_address
        ws = self.working_set_bytes
        apl = self.accesses_per_line
        stride = self.stride
        gap = self.gap
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            stores = (self.rng.random(n) >= self.read_ratio).tolist()
            k = np.arange(emitted, emitted + n, dtype=np.int64)
            offsets = (k // apl) * stride + (k % apl) * 8
            addrs = (base + (offsets % ws)).tolist()
            yield [MemOp(addrs[i], stores[i], gap) for i in range(n)]
            emitted += n


class StridedStream(SequentialStream):
    """Fixed large-stride sweep (matrix column walks: roms, fotonik3d)."""

    def __init__(self, name: str = "strided", stride: int = 4 * CACHELINE, **kwargs):
        super().__init__(name=name, stride=stride, **kwargs)


class RandomAccess(Workload):
    """Uniform random cacheline access - GUPS / pointer-free mcf phases."""

    def __init__(
        self,
        name: str = "random",
        working_set_bytes: int = 1 << 24,
        num_ops: int = 20000,
        read_ratio: float = 1.0,
        gap: float = 4.0,
        dependent: bool = False,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(name, working_set_bytes, num_ops, seed, **kwargs)
        self.read_ratio = read_ratio
        self.gap = gap
        self.dependent = dependent

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        lines = max(1, self.working_set_bytes // CACHELINE)
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            offsets = self.rng.integers(0, lines, n) * CACHELINE
            stores = self.rng.random(n) >= self.read_ratio
            for i in range(n):
                yield MemOp(
                    address=self._addr(int(offsets[i])),
                    is_store=bool(stores[i]),
                    gap=self.gap,
                    dependent=self.dependent and not stores[i],
                )
            emitted += n

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        self.reseed()
        base = self.base_address
        ws = self.working_set_bytes
        lines = max(1, ws // CACHELINE)
        gap = self.gap
        dep = self.dependent
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            offsets = self.rng.integers(0, lines, n) * CACHELINE
            stores = (self.rng.random(n) >= self.read_ratio).tolist()
            addrs = (base + (offsets % ws)).tolist()
            if dep:
                yield [
                    MemOp(addrs[i], stores[i], gap, not stores[i])
                    for i in range(n)
                ]
            else:
                yield [MemOp(addrs[i], stores[i], gap) for i in range(n)]
            emitted += n


class PointerChase(RandomAccess):
    """Serialised dependent loads (linked-list traversal: mcf, omnetpp)."""

    def __init__(self, name: str = "chase", **kwargs):
        kwargs.setdefault("read_ratio", 1.0)
        super().__init__(name=name, dependent=True, **kwargs)


class ZipfAccess(Workload):
    """Zipf-skewed accesses over cachelines (YCSB-C on Redis)."""

    def __init__(
        self,
        name: str = "zipf",
        working_set_bytes: int = 1 << 24,
        num_ops: int = 20000,
        theta: float = 0.99,
        read_ratio: float = 1.0,
        gap: float = 6.0,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(name, working_set_bytes, num_ops, seed, **kwargs)
        if theta <= 0:
            raise ValueError("zipf theta must be positive")
        self.theta = theta
        self.read_ratio = read_ratio
        self.gap = gap

    def _zipf_lines(self, n: int, lines: int) -> np.ndarray:
        # Bounded zipf via inverse-CDF over a truncated harmonic series.
        ranks = np.arange(1, min(lines, 1 << 17) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.theta)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        draws = self.rng.random(n)
        hot_ranks = np.searchsorted(cdf, draws)
        # Scatter the hot ranks across the working set deterministically so
        # hot lines are not physically adjacent (realistic key hashing).
        return (hot_ranks * 2654435761) % lines

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        lines = max(1, self.working_set_bytes // CACHELINE)
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            chosen = self._zipf_lines(n, lines)
            stores = self.rng.random(n) >= self.read_ratio
            for i in range(n):
                yield MemOp(
                    address=self._addr(int(chosen[i]) * CACHELINE),
                    is_store=bool(stores[i]),
                    gap=self.gap,
                )
            emitted += n

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        self.reseed()
        base = self.base_address
        ws = self.working_set_bytes
        lines = max(1, ws // CACHELINE)
        gap = self.gap
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            chosen = self._zipf_lines(n, lines)
            stores = (self.rng.random(n) >= self.read_ratio).tolist()
            addrs = (base + ((chosen * CACHELINE) % ws)).tolist()
            yield [MemOp(addrs[i], stores[i], gap) for i in range(n)]
            emitted += n


class HotColdAccess(Workload):
    """Hot-set/cold-set mix: the paper's TPP GUPS configuration.

    ``hot_fraction`` of the working set absorbs ``hot_probability`` of the
    accesses (24 GiB hot of 72 GiB total at 90% in section 5.8, scaled
    down here by the machine config).
    """

    def __init__(
        self,
        name: str = "hotcold",
        working_set_bytes: int = 3 << 22,
        num_ops: int = 20000,
        hot_fraction: float = 1.0 / 3.0,
        hot_probability: float = 0.9,
        read_ratio: float = 0.5,
        gap: float = 4.0,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(name, working_set_bytes, num_ops, seed, **kwargs)
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.read_ratio = read_ratio
        self.gap = gap

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        lines = max(1, self.working_set_bytes // CACHELINE)
        hot_lines = max(1, int(lines * self.hot_fraction))
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            hot = self.rng.random(n) < self.hot_probability
            hot_offsets = self.rng.integers(0, hot_lines, n)
            cold_offsets = self.rng.integers(hot_lines, max(lines, hot_lines + 1), n)
            stores = self.rng.random(n) >= self.read_ratio
            for i in range(n):
                line = int(hot_offsets[i]) if hot[i] else int(cold_offsets[i])
                yield MemOp(
                    address=self._addr(line * CACHELINE),
                    is_store=bool(stores[i]),
                    gap=self.gap,
                )
            emitted += n

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        self.reseed()
        base = self.base_address
        ws = self.working_set_bytes
        lines = max(1, ws // CACHELINE)
        hot_lines = max(1, int(lines * self.hot_fraction))
        gap = self.gap
        emitted = 0
        while emitted < self.num_ops:
            n = min(_BATCH, self.num_ops - emitted)
            hot = self.rng.random(n) < self.hot_probability
            hot_offsets = self.rng.integers(0, hot_lines, n)
            cold_offsets = self.rng.integers(hot_lines, max(lines, hot_lines + 1), n)
            stores = (self.rng.random(n) >= self.read_ratio).tolist()
            chosen = np.where(hot, hot_offsets, cold_offsets)
            addrs = (base + ((chosen * CACHELINE) % ws)).tolist()
            yield [MemOp(addrs[i], stores[i], gap) for i in range(n)]
            emitted += n


class SoftwarePrefetchStream(Workload):
    """Irregular traversal with explicit SW prefetch ahead of each load.

    Models the prefetch-annotated graph kernels (GAP BFS/SSSP) that
    exercise the SW PF -> DRd merge (section 2.2 path #4).
    """

    def __init__(
        self,
        name: str = "swpf",
        working_set_bytes: int = 1 << 24,
        num_ops: int = 20000,
        prefetch_distance_ops: int = 8,
        gap: float = 3.0,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(name, working_set_bytes, num_ops, seed, **kwargs)
        self.prefetch_distance_ops = prefetch_distance_ops
        self.gap = gap

    def ops(self) -> Iterator[MemOp]:
        self.reseed()
        lines = max(1, self.working_set_bytes // CACHELINE)
        sequence = self.rng.integers(0, lines, self.num_ops)
        for i in range(self.num_ops):
            ahead = i + self.prefetch_distance_ops
            if ahead < self.num_ops:
                yield MemOp(
                    address=self._addr(int(sequence[ahead]) * CACHELINE),
                    software_prefetch=True,
                    gap=0.0,
                )
            yield MemOp(address=self._addr(int(sequence[i]) * CACHELINE), gap=self.gap)

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        self.reseed()
        base = self.base_address
        ws = self.working_set_bytes
        lines = max(1, ws // CACHELINE)
        num_ops = self.num_ops
        sequence = self.rng.integers(0, lines, num_ops)
        addrs = (base + ((sequence * CACHELINE) % ws)).tolist()
        gap = self.gap
        dist = self.prefetch_distance_ops
        chunk: List[MemOp] = []
        append = chunk.append
        for i in range(num_ops):
            ahead = i + dist
            if ahead < num_ops:
                append(MemOp(addrs[ahead], False, 0.0, False, True))
            append(MemOp(addrs[i], False, gap))
            if len(chunk) >= _BATCH:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk


class PhasedWorkload(Workload):
    """Concatenation of phases with different patterns (gcc_s snapshots).

    ``phases`` is a list of fully-built workloads; their op streams run
    back-to-back over this workload's single shared region.
    """

    def __init__(self, name: str, phases: Sequence[Workload], **kwargs) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        total_ops = sum(p.num_ops for p in phases)
        ws = max(p.working_set_bytes for p in phases)
        super().__init__(name, ws, total_ops, **kwargs)
        self.phases = list(phases)
        for phase in self.phases:
            phase.vpn_base = self.vpn_base  # share one region

    def ops(self) -> Iterator[MemOp]:
        for phase in self.phases:
            yield from phase.ops()


class MBW(SequentialStream):
    """Memory-bandwidth microbenchmark: copy loop (read + write streams)."""

    def __init__(self, name: str = "mbw", rate_gap: float = 0.0, **kwargs):
        kwargs.setdefault("read_ratio", 0.5)
        kwargs.setdefault("gap", rate_gap)
        super().__init__(name=name, **kwargs)


class GUPS(RandomAccess):
    """Giga-updates-per-second: random read-modify-write."""

    def __init__(self, name: str = "gups", **kwargs):
        kwargs.setdefault("read_ratio", 0.5)
        super().__init__(name=name, **kwargs)


class InterleavedFlows(Workload):
    """Two mFlows from one core: ops from two workloads, interleaved.

    The interference cases (sections 5.4-5.5) co-locate a local mFlow and
    a CXL mFlow on the same core and sweep the CXL traffic load.  This
    combinator deterministically interleaves the two op streams so that a
    ``cxl_fraction`` share of the issued accesses belongs to the second
    workload.  Each inner workload keeps its own region, so the regions
    can be bound to different NUMA nodes.
    """

    def __init__(
        self, primary: Workload, secondary: Workload, secondary_fraction: float,
        name: str = "mixed",
    ) -> None:
        if not 0.0 <= secondary_fraction <= 1.0:
            raise ValueError("secondary_fraction must be in [0, 1]")
        total = primary.num_ops + secondary.num_ops
        super().__init__(
            name, max(primary.working_set_bytes, secondary.working_set_bytes),
            total, primary.seed,
        )
        self.primary = primary
        self.secondary = secondary
        self.secondary_fraction = secondary_fraction

    def install_split(
        self, machine, primary_node: int, secondary_node: int
    ) -> "InterleavedFlows":
        self.primary.install(machine, primary_node)
        self.secondary.install(machine, secondary_node)
        return self

    def ops(self) -> Iterator[MemOp]:
        primary_iter = self.primary.ops()
        secondary_iter = self.secondary.ops()
        credit = 0.0
        while True:
            credit += self.secondary_fraction
            take_secondary = credit >= 1.0
            if take_secondary:
                credit -= 1.0
                op = next(secondary_iter, None)
                if op is not None:
                    yield op
                    continue
                take_secondary = False
            op = next(primary_iter, None)
            if op is None:
                # Primary exhausted: drain whatever secondary ops remain.
                for rest in secondary_iter:
                    yield rest
                return
            yield op


def throttled(workload: Workload, load_fraction: float) -> Workload:
    """Scale a workload's offered load to ``load_fraction`` of full speed.

    Implemented by stretching compute gaps; this is how the interference
    cases sweep "CXL traffic load from 20% to 100%" (sections 5.4-5.5).
    """
    if not 0.0 < load_fraction <= 1.0:
        raise ValueError("load_fraction must be in (0, 1]")

    class _Throttled(Workload):
        def __init__(self, inner: Workload) -> None:
            super().__init__(
                f"{inner.name}@{int(load_fraction * 100)}%",
                inner.working_set_bytes,
                inner.num_ops,
                inner.seed,
                vpn_base=inner.vpn_base,
            )
            self._inner = inner

        def ops(self) -> Iterator[MemOp]:
            # An op at full load takes (gap + ~service); padding the gap by
            # the inverse load fraction thins the offered request rate.
            for op in self._inner.ops():
                extra = (op.gap + 8.0) * (1.0 / load_fraction - 1.0)
                yield MemOp(
                    address=op.address,
                    is_store=op.is_store,
                    gap=op.gap + extra,
                    dependent=op.dependent,
                    software_prefetch=op.software_prefetch,
                )

    return _Throttled(workload)
