"""Key-value store model (Redis + YCSB, section 5.1's service workload).

The suite catalog's ``ycsb_*`` entries model the *memory stream* of a KV
service; this module models the *service* itself, closely enough to
report what YCSB reports - per-request latency percentiles:

* a hash index (open addressing over an index array) and a value heap
  live in one memory region that can be bound to any tier;
* a GET is a dependent chain - index probe(s), then the value lines -
  exactly the pointer-chase structure that makes KV latency track memory
  latency;
* a PUT walks the same chain and writes the value lines;
* the closed-loop client issues one request at a time and records its
  wall-clock cycles, yielding p50/p95/p99 like a YCSB run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..sim.engine import SimulationBudgetExceeded
from ..sim.machine import Machine
from ..sim.request import CACHELINE, MemOp
from .base import Workload

_INDEX_ENTRY_BYTES = 16


@dataclass
class KVConfig:
    num_keys: int = 16384
    value_bytes: int = 256
    read_ratio: float = 0.95
    zipf_theta: float = 0.99
    probe_depth: int = 2          # mean index probes per lookup
    compute_gap: float = 4.0      # service CPU work between accesses


class KVStore:
    """Address-space layout of the store: index array + value heap."""

    def __init__(self, config: KVConfig, seed: int = 1) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.index_bytes = config.num_keys * _INDEX_ENTRY_BYTES
        self.heap_bytes = config.num_keys * config.value_bytes
        self.total_bytes = self.index_bytes + self.heap_bytes
        # Value placement: a fixed random permutation (heap allocation).
        self.value_slot = self.rng.permutation(config.num_keys)
        # Zipf CDF over keys.
        ranks = np.arange(
            1, min(config.num_keys, 1 << 17) + 1, dtype=np.float64
        )
        weights = 1.0 / np.power(ranks, config.zipf_theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample_key(self) -> int:
        rank = int(np.searchsorted(self._cdf, self.rng.random()))
        # Scatter ranks so hot keys are not index-adjacent.
        return (rank * 2654435761) % self.config.num_keys

    def request_ops(self, base_address: int, key: int, is_get: bool) -> List[MemOp]:
        """The memory accesses of one GET/PUT, as a dependent chain."""
        config = self.config
        ops: List[MemOp] = []
        # Index probes: open-addressing walk from the key's home slot.
        probes = 1 + int(self.rng.geometric(1.0 / config.probe_depth) - 1)
        for p in range(probes):
            slot = (key + p) % config.num_keys
            ops.append(
                MemOp(
                    address=base_address + slot * _INDEX_ENTRY_BYTES,
                    gap=config.compute_gap if p == 0 else 1.0,
                    dependent=p > 0,
                )
            )
        # Value lines: the first is dependent on the index lookup.
        value_base = (
            base_address
            + self.index_bytes
            + int(self.value_slot[key]) * config.value_bytes
        )
        lines = max(1, config.value_bytes // CACHELINE)
        for i in range(lines):
            ops.append(
                MemOp(
                    address=value_base + i * CACHELINE,
                    is_store=not is_get,
                    gap=1.0,
                    dependent=(i == 0) and is_get,
                )
            )
        return ops


class KVWorkload(Workload):
    """Open-loop stream of KV requests (for co-location scenarios)."""

    def __init__(
        self,
        config: Optional[KVConfig] = None,
        num_requests: int = 2000,
        name: str = "kv",
        seed: int = 1,
        **kwargs,
    ) -> None:
        self.config = config or KVConfig()
        self.store = KVStore(self.config, seed)
        # num_ops is approximate (probes vary); report the mean shape.
        ops_per_request = self.config.probe_depth + max(
            1, self.config.value_bytes // CACHELINE
        )
        super().__init__(
            name, self.store.total_bytes, num_requests * ops_per_request,
            seed, **kwargs,
        )
        self.num_requests = num_requests

    def ops(self) -> Iterator[MemOp]:
        self.store.rng = np.random.default_rng(self.seed)
        for _ in range(self.num_requests):
            key = self.store.sample_key()
            is_get = self.store.rng.random() < self.config.read_ratio
            yield from self.store.request_ops(self.base_address, key, is_get)


class KVClient:
    """Closed-loop client: one request at a time, latency recorded."""

    def __init__(
        self,
        machine: Machine,
        core: int,
        node_id: int,
        config: Optional[KVConfig] = None,
        seed: int = 1,
    ) -> None:
        self.machine = machine
        self.core = core
        self.config = config or KVConfig()
        self.store = KVStore(self.config, seed)
        self.region = Workload("kv-region", self.store.total_bytes, 1, seed)
        self.region.install(machine, node_id)
        self.latencies: List[float] = []

    def run(self, num_requests: int, max_events: int = 100_000_000) -> List[float]:
        """Issue requests back to back; returns per-request cycles.

        Requests chain inside the event loop (each completion pins the
        next), so the machine never goes idle mid-session and concurrent
        epoch tasks (TPP, QoS controllers) keep running.
        """
        base = self.region.base_address
        state = {"issued": 0, "start": 0.0}

        def issue_next() -> None:
            if state["issued"] >= num_requests:
                return
            state["issued"] += 1
            key = self.store.sample_key()
            is_get = self.store.rng.random() < self.config.read_ratio
            ops = self.store.request_ops(base, key, is_get)
            state["start"] = self.machine.now
            self.machine.pin(self.core, iter(ops), on_done=finish)

        def finish() -> None:
            self.latencies.append(self.machine.now - state["start"])
            issue_next()

        issue_next()
        try:
            self.machine.run(max_events=max_events)
        except SimulationBudgetExceeded:
            pass  # report the shortfall in request terms below
        if len(self.latencies) < num_requests:
            raise RuntimeError(
                f"only {len(self.latencies)}/{num_requests} requests completed"
            )
        return self.latencies

    def percentiles(self, *points: float) -> Tuple[float, ...]:
        if not self.latencies:
            raise ValueError("run() first")
        arr = np.sort(np.asarray(self.latencies))
        return tuple(
            float(np.percentile(arr, p)) for p in (points or (50, 95, 99))
        )

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            raise ValueError("run() first")
        return float(np.mean(self.latencies))
