"""Graph-processing workloads over a real CSR layout (GAP suite).

The GAP benchmarks (BFS, PageRank, ...) are the paper's irregular,
large-footprint applications.  Instead of approximating them with plain
random access, this module lays out an actual graph in CSR form -
``row_offsets``, ``column_indices`` and a per-vertex property array - in
the workload's region, generates a skewed-degree graph, and emits the
true access streams of the kernels:

* **BFS**: frontier pops read ``row_offsets[v]`` (sequential-ish), then
  the edge slice (sequential within a vertex), then scattered
  ``properties[neighbor]`` probes - optionally preceded by software
  prefetches, the pattern GAP's optimised kernels use;
* **PageRank**: per-iteration sweep of all vertices - streaming over
  offsets+edges with scattered property gathers.

Degrees follow a discrete power law, so a few hub vertices dominate edge
traffic exactly like the paper's twitter/web inputs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..sim.request import MemOp
from .base import Workload

_OFFSET_BYTES = 8
_EDGE_BYTES = 8
_PROPERTY_BYTES = 8


class CSRGraph:
    """A synthetic power-law graph in CSR form."""

    def __init__(self, num_vertices: int = 4096, avg_degree: float = 8.0,
                 skew: float = 1.8, seed: int = 1) -> None:
        if num_vertices < 2:
            raise ValueError("need at least two vertices")
        rng = np.random.default_rng(seed)
        # Power-law-ish degrees via Pareto, clamped.
        raw = rng.pareto(skew, num_vertices) + 1.0
        degrees = np.minimum(
            (raw / raw.mean() * avg_degree).astype(np.int64),
            num_vertices - 1,
        )
        degrees = np.maximum(degrees, 1)
        self.num_vertices = num_vertices
        self.row_offsets = np.concatenate(
            ([0], np.cumsum(degrees))
        ).astype(np.int64)
        self.num_edges = int(self.row_offsets[-1])
        # Preferential-attachment-ish endpoints: hubs attract edges.
        hub_bias = rng.permutation(num_vertices)[
            (rng.pareto(skew, self.num_edges).astype(np.int64))
            % num_vertices
        ]
        self.column_indices = hub_bias.astype(np.int64)

    @property
    def offsets_bytes(self) -> int:
        return (self.num_vertices + 1) * _OFFSET_BYTES

    @property
    def edges_bytes(self) -> int:
        return self.num_edges * _EDGE_BYTES

    @property
    def properties_bytes(self) -> int:
        return self.num_vertices * _PROPERTY_BYTES

    @property
    def total_bytes(self) -> int:
        return self.offsets_bytes + self.edges_bytes + self.properties_bytes

    def neighbors(self, vertex: int) -> np.ndarray:
        lo, hi = self.row_offsets[vertex], self.row_offsets[vertex + 1]
        return self.column_indices[lo:hi]


class GraphWorkload(Workload):
    """Base: owns a CSR graph laid out in this workload's region."""

    def __init__(self, name: str, graph: Optional[CSRGraph], num_ops: int,
                 gap: float, seed: int, **kwargs) -> None:
        self.graph = graph or CSRGraph(seed=seed)
        super().__init__(
            name, self.graph.total_bytes, num_ops, seed, **kwargs
        )
        self.gap = gap
        g = self.graph
        self._offsets_base = 0
        self._edges_base = g.offsets_bytes
        self._properties_base = g.offsets_bytes + g.edges_bytes

    # address helpers -----------------------------------------------------

    def _offset_addr(self, vertex: int) -> int:
        return self.base_address + self._offsets_base + vertex * _OFFSET_BYTES

    def _edge_addr(self, edge_index: int) -> int:
        return self.base_address + self._edges_base + edge_index * _EDGE_BYTES

    def _property_addr(self, vertex: int) -> int:
        return (
            self.base_address + self._properties_base
            + vertex * _PROPERTY_BYTES
        )


class BFSWorkload(GraphWorkload):
    """Breadth-first search access stream with optional SW prefetch."""

    def __init__(self, graph: Optional[CSRGraph] = None, num_ops: int = 20000,
                 gap: float = 2.0, software_prefetch: bool = True,
                 seed: int = 1, name: str = "bfs", **kwargs) -> None:
        super().__init__(name, graph, num_ops, gap, seed, **kwargs)
        self.software_prefetch = software_prefetch

    def ops(self) -> Iterator[MemOp]:
        graph = self.graph
        visited = np.zeros(graph.num_vertices, dtype=bool)
        frontier: List[int] = [0]
        visited[0] = True
        emitted = 0
        rng = np.random.default_rng(self.seed)
        while emitted < self.num_ops:
            if not frontier:
                # Restart from a random unvisited vertex (new component).
                start = int(rng.integers(0, graph.num_vertices))
                visited[:] = False
                visited[start] = True
                frontier = [start]
            next_frontier: List[int] = []
            for vertex in frontier:
                if emitted >= self.num_ops:
                    break
                # Read row_offsets[v] and [v+1] (same/adjacent line).
                yield MemOp(address=self._offset_addr(vertex), gap=self.gap)
                emitted += 1
                lo = int(graph.row_offsets[vertex])
                neighbors = graph.neighbors(vertex)
                for j, neighbor in enumerate(neighbors):
                    if emitted >= self.num_ops:
                        break
                    # Edge slice: sequential reads.
                    yield MemOp(address=self._edge_addr(lo + j), gap=1.0)
                    emitted += 1
                    neighbor = int(neighbor)
                    if self.software_prefetch and j + 4 < len(neighbors):
                        yield MemOp(
                            address=self._property_addr(int(neighbors[j + 4])),
                            software_prefetch=True,
                        )
                    if emitted >= self.num_ops:
                        break
                    # Scattered visited/property probe + update.
                    yield MemOp(
                        address=self._property_addr(neighbor),
                        is_store=not visited[neighbor],
                        gap=1.0,
                    )
                    emitted += 1
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        next_frontier.append(neighbor)
            frontier = next_frontier


class PageRankWorkload(GraphWorkload):
    """Per-iteration full sweep: stream offsets/edges, gather properties."""

    def __init__(self, graph: Optional[CSRGraph] = None, num_ops: int = 20000,
                 gap: float = 2.0, seed: int = 1, name: str = "pagerank",
                 **kwargs) -> None:
        super().__init__(name, graph, num_ops, gap, seed, **kwargs)

    def ops(self) -> Iterator[MemOp]:
        graph = self.graph
        emitted = 0
        while emitted < self.num_ops:
            for vertex in range(graph.num_vertices):
                if emitted >= self.num_ops:
                    return
                yield MemOp(address=self._offset_addr(vertex), gap=self.gap)
                emitted += 1
                lo = int(graph.row_offsets[vertex])
                for j, neighbor in enumerate(graph.neighbors(vertex)):
                    if emitted >= self.num_ops:
                        return
                    yield MemOp(address=self._edge_addr(lo + j), gap=1.0)
                    emitted += 1
                    if emitted >= self.num_ops:
                        return
                    yield MemOp(
                        address=self._property_addr(int(neighbor)), gap=1.0
                    )
                    emitted += 1
                # New rank write for the swept vertex.
                if emitted < self.num_ops:
                    yield MemOp(
                        address=self._property_addr(vertex),
                        is_store=True, gap=1.0,
                    )
                    emitted += 1
