"""Workload abstraction.

A workload is a deterministic generator of :class:`~repro.sim.MemOp`
items over a virtual region.  It corresponds to one pinned application
thread in the paper's profiling specification (Figure 5-a): PathFinder
never sees the generator, only the PMU activity it induces.

Workloads address *virtual* bytes starting at ``vpn_base * PAGE_SIZE``;
:meth:`install` backs the region on a NUMA node (local DDR or the CXL
node), which is the simulator's ``numactl --membind``.  Interleaved
placement (a local:CXL ratio, used by the TPP case study) is supported
via ``install_interleaved``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

import numpy as np

from ..sim.address import PAGE_SIZE
from ..sim.machine import Machine
from ..sim.request import MemOp

# Virtual regions for distinct workload instances are spaced far apart so
# two co-located applications never share pages by accident.
_REGION_STRIDE_PAGES = 1 << 22
_region_counter = itertools.count(1)

#: Ops per chunk yielded by :meth:`Workload.ops_chunks`.
CHUNK_OPS = 4096


class Workload:
    """Base class: a named, seeded, bounded stream of memory operations."""

    def __init__(
        self,
        name: str,
        working_set_bytes: int,
        num_ops: int,
        seed: int = 1,
        vpn_base: Optional[int] = None,
    ) -> None:
        if working_set_bytes <= 0:
            raise ValueError(f"{name}: working set must be positive")
        if num_ops <= 0:
            raise ValueError(f"{name}: num_ops must be positive")
        self.name = name
        self.working_set_bytes = working_set_bytes
        self.num_ops = num_ops
        self.seed = seed
        self.vpn_base = (
            vpn_base
            if vpn_base is not None
            else next(_region_counter) * _REGION_STRIDE_PAGES
        )
        self.rng = np.random.default_rng(seed)

    # -- placement -------------------------------------------------------

    @property
    def base_address(self) -> int:
        return self.vpn_base * PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return (self.working_set_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def install(self, machine: Machine, node_id: int) -> "Workload":
        """Back the whole working set on one NUMA node."""
        machine.address_space.alloc_pages(node_id, self.num_pages, self.vpn_base)
        return self

    def install_interleaved(
        self, machine: Machine, local_node: int, cxl_node: int, local_ratio: float
    ) -> "Workload":
        """Back pages round-robin with ``local_ratio`` fraction on local DDR.

        A 4:1 local/CXL split (the paper's TPP YCSB-C configuration) is
        ``local_ratio=0.8``.
        """
        if not 0.0 <= local_ratio <= 1.0:
            raise ValueError("local_ratio must be in [0, 1]")
        period = 10
        local_slots = round(local_ratio * period)
        for i in range(self.num_pages):
            node = local_node if (i % period) < local_slots else cxl_node
            machine.address_space.alloc_pages(node, 1, self.vpn_base + i)
        return self

    def install_striped(self, machine: Machine, node_ids) -> "Workload":
        """Back pages round-robin across several nodes (numactl
        --interleave over a CXL memory pool)."""
        nodes = list(node_ids)
        if not nodes:
            raise ValueError("need at least one node to stripe across")
        for i in range(self.num_pages):
            machine.address_space.alloc_pages(
                nodes[i % len(nodes)], 1, self.vpn_base + i
            )
        return self

    # -- op stream ---------------------------------------------------------

    def ops(self) -> Iterator[MemOp]:
        """Yield the operation stream.  Subclasses implement this."""
        raise NotImplementedError

    def ops_chunks(self) -> Iterator[List[MemOp]]:
        """Yield the same stream as :meth:`ops`, in lists of ops.

        Consumers iterating a workload pull from these chunks, so the
        per-op cost is a C-level list-iterator step rather than a
        generator resume.  The default implementation slices :meth:`ops`;
        generators with precomputable address vectors override this to
        build each chunk in one pass.
        """
        ops = self.ops()
        while True:
            chunk = list(itertools.islice(ops, CHUNK_OPS))
            if not chunk:
                return
            yield chunk

    def __iter__(self) -> Iterator[MemOp]:
        return itertools.chain.from_iterable(self.ops_chunks())

    def _addr(self, offset: int) -> int:
        """Turn a byte offset within the working set into a virtual address."""
        return self.base_address + (offset % self.working_set_bytes)

    def reseed(self) -> None:
        """Reset the RNG so the stream replays identically."""
        self.rng = np.random.default_rng(self.seed)
