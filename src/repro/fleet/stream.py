"""Merged NDJSON progress: N member streams -> one iterator.

Every job driver in a sharded campaign streams its member's NDJSON
events concurrently; :class:`EventMux` funnels them into a single
ordered-by-arrival iterator, which is what ``pathfinder fleet run
--stream`` and :meth:`FleetCampaign.events` hand to callers.  Producers
attach before they start and detach (in a ``finally``) when done, so
the consumer knows exactly when the merged stream is complete: events
are enqueued before their producer's detach sentinel, hence once every
sentinel has been drained no event can still be in flight.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, Iterator, Optional

#: Detach sentinel (identity-compared; never leaves the module).
_DETACH = object()


class EventMux:
    """A many-producer, single-consumer merge of event dicts."""

    def __init__(self) -> None:
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self._open_producers = 0
        self._total_events = 0

    # -- producer side ---------------------------------------------------

    def attach(self) -> None:
        """Register one producer; must precede its first :meth:`publish`."""
        with self._lock:
            self._open_producers += 1

    def publish(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._total_events += 1
        self._queue.put(event)

    def detach(self) -> None:
        """Signal one producer is finished (call from a ``finally``)."""
        self._queue.put(_DETACH)

    # -- consumer side ---------------------------------------------------

    @property
    def open_producers(self) -> int:
        with self._lock:
            return self._open_producers

    @property
    def total_events(self) -> int:
        with self._lock:
            return self._total_events

    def drain(self, *, timeout: Optional[float] = None
              ) -> Iterator[Dict[str, Any]]:
        """Yield merged events until every attached producer detached.

        Single consumer.  With a ``timeout``, stops yielding (without
        error) once the deadline passes - the campaign result is the
        authoritative record; the stream is progress reporting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._open_producers == 0:
                    # All producers detached and every sentinel consumed:
                    # the queue can only be empty (events precede their
                    # sentinel in FIFO order).
                    return
            if deadline is None:
                item = self._queue.get()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    return
            if item is _DETACH:
                with self._lock:
                    self._open_producers -= 1
                continue
            yield item

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.drain()
