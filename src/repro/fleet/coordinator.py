"""The fleet coordinator: N ``repro.serve`` daemons as one profiler.

:class:`FleetCoordinator` holds the member table (one
:class:`FleetMember` per daemon: a reusable :class:`ServeClient`, a
:class:`CircuitBreaker`, a coordinator-side submit-latency
:class:`~repro.obs.histogram.LogHistogram`) and routes every campaign
job by consistent hashing on its exec-layer cache key - the member that
computed a result holds it warm, so resubmitted and overlapping sweeps
resolve as member-local cache hits instead of recomputes.

:meth:`FleetCoordinator.shard_campaign` fans a ``run_many``-style job
list out over the members and returns a :class:`FleetCampaign` handle:
one driver thread per job submits, streams NDJSON progress into a
merged :class:`~repro.fleet.stream.EventMux`, and on member death or a
5xx answer reroutes to the next ring node with bounded retries - a
daemon killed mid-campaign loses no jobs, its share is recomputed (or
cache-hit) on its ring successors.  The completed campaign is a
:class:`FleetResult`, a :class:`~repro.exec.runner.CampaignResult`
subclass, so every existing campaign consumer (``render_campaign``,
``summary()``, ``result_for``) works unchanged.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.persistence import result_from_document
from ..exec.runner import CampaignJob, CampaignResult, JobRecord
from ..obs.histogram import LogHistogram
from ..serve.client import ServeClient, ServeError
from .health import CircuitBreaker, HealthMonitor
from .ring import DEFAULT_REPLICAS, HashRing
from .stream import EventMux

logger = logging.getLogger(__name__)

#: Member addresses accepted by the coordinator.
MemberAddress = Union[str, Tuple[str, int], "FleetMember"]

#: Errors that mean "this member, not this job, is the problem".
_MEMBER_ERRORS = (ConnectionError, OSError, TimeoutError)


class NoMemberAvailable(RuntimeError):
    """Every candidate member was excluded or unreachable."""


@dataclass
class FleetMember:
    """One daemon in the member table."""

    member_id: str
    host: str
    port: int
    client: ServeClient = field(repr=False, default=None)  # type: ignore[assignment]
    breaker: CircuitBreaker = field(repr=False, default=None)  # type: ignore[assignment]
    #: Coordinator-side submit latency (milliseconds, log2 buckets).
    submit_latency_ms: LogHistogram = field(
        repr=False, default_factory=LogHistogram
    )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class FleetJobRecord(JobRecord):
    """A :class:`JobRecord` plus where the fleet ran it."""

    #: Ring-primary member the job was first routed to.
    routed_to: Optional[str] = None
    #: Member that actually completed (or terminally failed) the job.
    member_id: Optional[str] = None
    #: Times the job was rerouted to a ring successor.
    failovers: int = 0
    #: The job id on the completing member.
    remote_job_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        status = super().as_dict()
        status.update(
            routed_to=self.routed_to,
            member_id=self.member_id,
            failovers=self.failovers,
            remote_job_id=self.remote_job_id,
        )
        return status


@dataclass
class FleetResult(CampaignResult):
    """A campaign outcome annotated with fleet placement."""

    members: List[str] = field(default_factory=list)

    @property
    def rerouted_jobs(self) -> int:
        return sum(1 for j in self.jobs if getattr(j, "failovers", 0) > 0)

    @property
    def locality(self) -> float:
        """Fraction of jobs served as a cache hit by the member the
        ring routed them to - the resubmission affinity the consistent
        hashing exists to maximise (a hit can only come from the member
        that cached the entry)."""
        if not self.jobs:
            return 0.0
        return sum(1 for j in self.jobs if j.cache_hit) / len(self.jobs)

    def by_member(self) -> Dict[str, Dict[str, int]]:
        """Per-member tallies: jobs completed, cache hits, failures."""
        table: Dict[str, Dict[str, int]] = {}
        for job in self.jobs:
            member = getattr(job, "member_id", None) or "?"
            row = table.setdefault(
                member, {"jobs": 0, "ok": 0, "cache_hits": 0, "failed": 0}
            )
            row["jobs"] += 1
            if job.ok:
                row["ok"] += 1
            if job.cache_hit:
                row["cache_hits"] += 1
            if not job.ok:
                row["failed"] += 1
        return table

    def summary(self) -> Dict[str, Any]:
        summary = super().summary()
        summary.update(
            members=len(self.members),
            rerouted_jobs=self.rerouted_jobs,
            locality=self.locality,
        )
        return summary


class FleetCoordinator:
    """Routes campaign jobs across a health-checked daemon fleet."""

    def __init__(
        self,
        members: Sequence[MemberAddress] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
        failure_threshold: int = 2,
        cooldown_s: float = 30.0,
        client_timeout: float = 30.0,
        tenant: Optional[str] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.client_timeout = client_timeout
        #: Tenant identity stamped on every member client this
        #: coordinator builds (prebuilt FleetMember clients are kept
        #: as-is).
        self.tenant = tenant
        self.ring = HashRing(replicas=replicas)
        self._members: Dict[str, FleetMember] = {}
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._monitor: Optional[HealthMonitor] = None
        for member in members:
            self.add_member(member)

    # -- membership ------------------------------------------------------

    def add_member(self, member: MemberAddress) -> FleetMember:
        """Add one daemon (``"host:port"``, ``(host, port)`` or a
        prebuilt :class:`FleetMember`) to the table and the ring."""
        if isinstance(member, FleetMember):
            record = member
        else:
            if isinstance(member, str):
                host, _, port = member.rpartition(":")
                if not host or not port.isdigit():
                    raise ValueError(
                        f"member address must be host:port, got {member!r}"
                    )
                host, port = host, int(port)
            else:
                host, port = member
            record = FleetMember(member_id=f"{host}:{port}",
                                 host=host, port=int(port))
        if record.client is None:
            record.client = ServeClient(host=record.host, port=record.port,
                                        timeout=self.client_timeout,
                                        tenant=self.tenant)
        if record.breaker is None:
            record.breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
            )
        with self._lock:
            if record.member_id in self._members:
                return self._members[record.member_id]
            self._members[record.member_id] = record
        self.ring.add(record.member_id)
        return record

    def remove_member(self, member_id: str) -> None:
        self.ring.remove(member_id)
        with self._lock:
            self._members.pop(member_id, None)

    def members(self) -> List[FleetMember]:
        with self._lock:
            return [self._members[m] for m in sorted(self._members)]

    def member(self, member_id: str) -> FleetMember:
        with self._lock:
            return self._members[member_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # -- counters --------------------------------------------------------

    def _inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    # -- routing ---------------------------------------------------------

    def route(self, key: str,
              exclude: Sequence[str] = ()) -> Optional[FleetMember]:
        """The member that should run ``key`` right now.

        Walks the ring from the key's primary, skipping excluded members
        and open circuits.  If *every* non-excluded member is
        circuit-open, the first one is returned anyway (trying a
        probably-dead member beats failing a job outright and doubles as
        the half-open trial).
        """
        excluded = set(exclude)
        fallback: Optional[FleetMember] = None
        for member_id in self.ring.successors(key):
            if member_id in excluded:
                continue
            with self._lock:
                member = self._members.get(member_id)
            if member is None:
                continue
            if fallback is None:
                fallback = member
            if member.breaker.allow():
                return member
        return fallback

    # -- health ----------------------------------------------------------

    def check_health(self) -> Dict[str, Dict[str, Any]]:
        """Probe every member's ``/readyz`` once; feed the breakers."""
        report: Dict[str, Dict[str, Any]] = {}
        for member in self.members():
            ready = False
            error: Optional[str] = None
            try:
                ready = member.client.ready()
            except Exception as exc:  # noqa: BLE001 - any probe failure
                error = f"{type(exc).__name__}: {exc}"
            if ready:
                member.breaker.record_success()
            else:
                member.breaker.record_failure()
            report[member.member_id] = {
                "ready": ready,
                "error": error,
                "breaker": member.breaker.snapshot(),
            }
        return report

    def start_monitor(self, interval_s: float = 2.0) -> HealthMonitor:
        """Start (or return) the background ``/readyz`` prober."""
        if self._monitor is None or not self._monitor.is_alive():
            self._monitor = HealthMonitor(self, interval_s=interval_s)
            self._monitor.start()
        return self._monitor

    def stop_monitor(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None

    # -- campaigns -------------------------------------------------------

    def shard_campaign(
        self,
        jobs: Sequence[CampaignJob],
        *,
        priority: int = 10,
        max_failovers: Optional[int] = None,
        concurrency: Optional[int] = None,
        admission_wait: float = 300.0,
        job_timeout: float = 600.0,
    ) -> "FleetCampaign":
        """Fan ``jobs`` out over the fleet; returns a live campaign handle.

        ``max_failovers`` bounds reroutes per job (default: every other
        member once).  ``concurrency`` bounds driver threads (default:
        4 per member).  Jobs must be declarative - a ``setup`` hook or
        ``key_extra`` cannot travel over HTTP and would desynchronise
        the routing key from the member's cache key.
        """
        if not len(self):
            raise NoMemberAvailable("fleet has no members")
        jobs = list(jobs)
        for job in jobs:
            if job.setup is not None or job.key_extra is not None:
                raise ValueError(
                    f"fleet jobs must be declarative (tag={job.tag!r} has "
                    "a setup hook / key_extra, which cannot travel over "
                    "HTTP)"
                )
        return FleetCampaign(
            self, jobs,
            priority=priority,
            max_failovers=max_failovers,
            concurrency=concurrency,
            admission_wait=admission_wait,
            job_timeout=job_timeout,
        )

    def run_many(
        self,
        jobs: Sequence[CampaignJob],
        *,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        **options: Any,
    ) -> FleetResult:
        """Shard, stream (optionally into ``on_event``) and wait."""
        campaign = self.shard_campaign(jobs, **options)
        if on_event is not None:
            for event in campaign.events():
                on_event(event)
        return campaign.wait()

    # -- live streaming --------------------------------------------------

    def live_events(
        self,
        *,
        max_events: Optional[int] = None,
        timeout: Optional[float] = None,
        member_timeout: float = 600.0,
    ) -> Iterator[Dict[str, Any]]:
        """Merged ``/v1/live`` firehose across every fleet member.

        One follower thread per member streams that daemon's live NDJSON
        endpoint; events are funnelled through an
        :class:`~repro.fleet.stream.EventMux` and stamped with the
        originating ``member`` id.  An unreachable member contributes a
        single ``live_stream_error`` event instead of killing the merge.
        ``max_events`` bounds each *member's* stream (the daemon closes
        it after that many events); ``timeout`` bounds the merged
        iterator as a whole.
        """
        mux = EventMux()
        threads: List[threading.Thread] = []

        def follow(member: FleetMember) -> None:
            try:
                for event in member.client.live(max_events=max_events,
                                                timeout=member_timeout):
                    event["member"] = member.member_id
                    mux.publish(event)
            except Exception as exc:  # noqa: BLE001 - keep merge alive
                mux.publish({
                    "event": "live_stream_error",
                    "member": member.member_id,
                    "error": f"{type(exc).__name__}: {exc}",
                })
            finally:
                mux.detach()

        for member in self.members():
            mux.attach()
            thread = threading.Thread(
                target=follow, args=(member,), daemon=True,
                name=f"fleet-live-{member.member_id}",
            )
            threads.append(thread)
            thread.start()
        yield from mux.drain(timeout=timeout)

    # -- fleet-wide metrics ---------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Roll every member's ``/metricsz`` up into one document.

        Unreachable members are reported, not fatal: the rollup is an
        ops surface and must answer during partial outages.
        """
        members_doc: Dict[str, Any] = {}
        totals = {
            "queue_depth": 0,
            "queue_capacity": 0,
            "in_flight": 0,
            "workers": 0,
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_cache_hit": 0,
            "jobs_failed": 0,
            "jobs_rejected": 0,
            "cache_entries": 0,
            "cache_bytes": 0,
        }
        reachable = 0
        tenant_rollup: Dict[str, Dict[str, int]] = {}
        for member in self.members():
            try:
                doc = member.client.metrics()
            except Exception as exc:  # noqa: BLE001
                members_doc[member.member_id] = {
                    "reachable": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "breaker": member.breaker.snapshot(),
                }
                continue
            reachable += 1
            queue_doc = doc.get("queue", {})
            counters = doc.get("counters", {})
            cache = doc.get("cache") or {}
            totals["queue_depth"] += int(queue_doc.get("depth", 0))
            totals["queue_capacity"] += int(queue_doc.get("capacity", 0))
            totals["in_flight"] += int(queue_doc.get("in_flight", 0))
            totals["workers"] += int(queue_doc.get("workers", 0))
            for name in ("jobs_submitted", "jobs_completed",
                         "jobs_cache_hit", "jobs_failed", "jobs_rejected"):
                totals[name] += int(counters.get(name, 0))
            totals["cache_entries"] += int(cache.get("entries", 0))
            totals["cache_bytes"] += int(cache.get("total_bytes", 0))
            for tenant, usage in (doc.get("tenants") or {}).items():
                row = tenant_rollup.setdefault(tenant, {
                    "queued": 0, "in_flight": 0, "submitted": 0,
                    "completed": 0, "failed": 0, "rejected": 0,
                })
                row["queued"] += int(usage.get("queued", 0))
                row["in_flight"] += int(usage.get("in_flight", 0))
                tenant_counters = usage.get("counters", {})
                for name in ("submitted", "completed", "failed",
                             "rejected"):
                    row[name] += int(tenant_counters.get(name, 0))
            hist = member.submit_latency_ms
            members_doc[member.member_id] = {
                "reachable": True,
                "breaker": member.breaker.snapshot(),
                "queue": queue_doc,
                "jobs_by_state": doc.get("jobs_by_state", {}),
                "counters": counters,
                "cache": cache,
                "submit_latency_ms": {
                    "count": hist.count,
                    "mean": hist.mean,
                    "p50": hist.percentile(50.0),
                    "p95": hist.percentile(95.0),
                    "p99": hist.percentile(99.0),
                    "max": hist.max,
                },
            }
        with self._lock:
            routing = dict(self._counters)
        submitted = routing.get("jobs_routed", 0)
        local_hits = routing.get("jobs_cache_hit", 0)
        return {
            "members_total": len(self),
            "members_reachable": reachable,
            "fleet": totals,
            "tenants": tenant_rollup,
            "routing": routing,
            "cache_hit_locality": (local_hits / submitted) if submitted
            else 0.0,
            "members": members_doc,
        }

    def drain(self) -> Dict[str, Any]:
        """Ask every member to drain-then-exit; reports who answered."""
        report: Dict[str, Any] = {}
        for member in self.members():
            try:
                member.client.shutdown()
                report[member.member_id] = {"draining": True}
            except Exception as exc:  # noqa: BLE001
                report[member.member_id] = {
                    "draining": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
        return report


class FleetCampaign:
    """A sharded campaign in flight: merged stream + result collection."""

    def __init__(
        self,
        coordinator: FleetCoordinator,
        jobs: List[CampaignJob],
        *,
        priority: int,
        max_failovers: Optional[int],
        concurrency: Optional[int],
        admission_wait: float,
        job_timeout: float,
    ) -> None:
        self.coordinator = coordinator
        self.jobs = jobs
        self.priority = priority
        self.admission_wait = admission_wait
        self.job_timeout = job_timeout
        self.max_failovers = (
            max_failovers if max_failovers is not None
            else max(0, len(coordinator) - 1)
        )
        self.records: List[FleetJobRecord] = [
            FleetJobRecord(index=i, tag=job.tag or f"job{i}", key=job.key())
            for i, job in enumerate(jobs)
        ]
        self.results: List[Optional[Any]] = [None] * len(jobs)
        self._mux = EventMux()
        self._started = time.monotonic()
        workers = concurrency or max(2, 4 * len(coordinator))
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, min(workers, max(1, len(jobs)))),
            thread_name_prefix="fleet-job",
        )
        for _ in jobs:
            self._mux.attach()
        self._futures = [
            self._pool.submit(self._drive, i) for i in range(len(jobs))
        ]
        self._pool.shutdown(wait=False)

    # -- public surface --------------------------------------------------

    def events(self, *, timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """The merged NDJSON progress stream, annotated per member."""
        return self._mux.drain(timeout=timeout)

    def wait(self, timeout: Optional[float] = None) -> FleetResult:
        """Block until every driver finished; returns the result."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for future in self._futures:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            future.result(timeout=remaining)
        return FleetResult(
            jobs=list(self.records),
            results=list(self.results),
            wall_time=time.monotonic() - self._started,
            workers=len(self.coordinator),
            members=[m.member_id for m in self.coordinator.members()],
        )

    @property
    def done(self) -> bool:
        return all(future.done() for future in self._futures)

    # -- the per-job driver ---------------------------------------------

    def _publish(self, i: int, member: Optional[FleetMember],
                 event: str, **data: Any) -> None:
        record = {
            "event": event,
            "tag": self.records[i].tag,
            "index": i,
            "member": member.member_id if member is not None else None,
            "ts": time.time(),
        }
        record.update(data)
        self._mux.publish(record)

    def _fail(self, i: int, member: Optional[FleetMember], kind: str,
              message: str) -> None:
        record = self.records[i]
        record.status = "failed"
        record.failure = record.failure or kind
        record.error = message
        if member is not None:
            record.member_id = member.member_id
        self.coordinator._inc("jobs_failed")
        self._publish(i, member, "job_failed", failure=record.failure,
                      error=message, failovers=record.failovers)

    def _drive(self, i: int) -> None:
        try:
            self._drive_inner(i)
        except Exception as exc:  # noqa: BLE001 - a driver must not vanish
            logger.exception("fleet job %s driver crashed",
                             self.records[i].tag)
            if self.records[i].status == "pending":
                self._fail(i, None, "error",
                           f"driver crashed: {type(exc).__name__}: {exc}")
        finally:
            self._mux.detach()

    def _drive_inner(self, i: int) -> None:
        job, record = self.jobs[i], self.records[i]
        coordinator = self.coordinator
        tried: List[str] = []
        while True:
            member = coordinator.route(record.key, exclude=tried)
            if member is None:
                self._fail(
                    i, None, "no_member",
                    f"no fleet member available after trying {tried}",
                )
                return
            if record.routed_to is None:
                record.routed_to = member.member_id

            def reroute(reason: str) -> bool:
                """Mark the member bad; True if another may be tried."""
                member.breaker.record_failure()
                tried.append(member.member_id)
                record.failovers = len(tried)
                coordinator._inc("jobs_failed_over")
                self._publish(i, member, "member_failed", reason=reason,
                              failovers=record.failovers)
                if len(tried) > self.max_failovers:
                    self._fail(
                        i, member, "member_lost",
                        f"gave up after {len(tried)} members: {reason}",
                    )
                    return False
                return True

            # -- submit --------------------------------------------------
            began = time.monotonic()
            try:
                remote = member.client.submit_run(
                    job.spec, job.config,
                    tag=record.tag,
                    priority=self.priority,
                    timeout=job.timeout,
                    max_events=job.max_events,
                    cacheable=job.cacheable,
                    retry_on_busy=True,
                    max_wait=self.admission_wait,
                )
            except ServeError as exc:
                if exc.status >= 500 or exc.status == 429:
                    if reroute(f"submit answered {exc.status}"):
                        continue
                    return
                self._fail(i, member, "error",
                           f"member rejected the job: {exc}")
                return
            except _MEMBER_ERRORS as exc:
                if reroute(f"submit failed: {type(exc).__name__}: {exc}"):
                    continue
                return
            member.breaker.record_success()
            member.submit_latency_ms.add(
                max(0.0, (time.monotonic() - began) * 1e3)
            )
            coordinator._inc("jobs_routed")
            record.attempts += 1
            record.remote_job_id = remote["job_id"]
            self._publish(i, member, "routed", remote_job_id=record.remote_job_id,
                          key=record.key, state=remote.get("state"),
                          failovers=record.failovers)

            # -- follow to a terminal state ------------------------------
            try:
                final = self._follow(i, member, remote)
            except _MEMBER_ERRORS as exc:
                if reroute(f"stream lost: {type(exc).__name__}: {exc}"):
                    continue
                return
            if final is None:
                # Stream ended with no terminal event: the daemon died
                # (or force-stopped) with the job in flight.
                if reroute("member died with the job in flight"):
                    continue
                return

            # -- finalize ------------------------------------------------
            if final["state"] == "done":
                try:
                    document = member.client.result(final["job_id"])
                except (ServeError, *_MEMBER_ERRORS) as exc:
                    # Done but unfetchable (daemon died between the
                    # terminal event and our fetch): recompute elsewhere.
                    if reroute(f"result fetch failed: {exc}"):
                        continue
                    return
                self._finalize_done(i, member, final, document)
                return
            # The *job* failed on a healthy member (timeout, budget,
            # simulation error): that is a job outcome, not a member
            # outcome - rerouting would just re-fail elsewhere.
            record.attempts = max(record.attempts,
                                  int(final.get("attempts") or 1))
            record.wall_time += float(final.get("wall_time") or 0.0)
            record.failure = final.get("failure") or "error"
            self._fail(i, member, record.failure,
                       final.get("error") or "job failed on member")
            return

    def _follow(self, i: int, member: FleetMember,
                remote: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Stream the remote job's events; return its final status.

        Returns None when the stream ended without a terminal event
        (member death); raises a member error on connection loss.
        """
        job_id = remote["job_id"]
        if remote.get("state") in ("done", "failed"):
            return remote  # born terminal (admission-time cache hit)
        terminal = None
        for event in member.client.events(job_id,
                                          timeout=self.job_timeout):
            name = event.get("event")
            self._publish(i, member, f"member:{name}",
                          remote_job_id=job_id, seq=event.get("seq"))
            if name in ("done", "failed"):
                terminal = name
        if terminal is None:
            return None
        return member.client.job(job_id)

    def _finalize_done(self, i: int, member: FleetMember,
                       final: Dict[str, Any],
                       document: Dict[str, Any]) -> None:
        record = self.records[i]
        cache_hit = bool(final.get("cache_hit"))
        self.results[i] = result_from_document(document["session"])
        record.status = "cache_hit" if cache_hit else "ok"
        record.failure = record.error = None
        record.member_id = member.member_id
        record.attempts = max(record.attempts,
                              int(final.get("attempts") or 1))
        record.wall_time += float(final.get("wall_time") or 0.0)
        record.events_executed = int(final.get("events_executed") or 0)
        record.total_cycles = float(final.get("total_cycles") or 0.0)
        record.num_epochs = int(final.get("num_epochs") or 0)
        self.coordinator._inc("jobs_completed")
        if cache_hit:
            self.coordinator._inc("jobs_cache_hit")
        self._publish(i, member, "job_done", cache_hit=cache_hit,
                      wall_time=record.wall_time,
                      failovers=record.failovers)
