"""Member health: consecutive-failure circuit breaker + readyz prober.

Every fleet member carries a :class:`CircuitBreaker` fed from two
sources - the periodic :class:`HealthMonitor` ``/readyz`` probes and
the in-band outcome of every routed request.  The breaker is the
classic three-state machine:

* **closed** - healthy; requests flow.  ``failure_threshold``
  *consecutive* failures trip it open (a single flaky probe does not).
* **open** - the member is skipped by routing for ``cooldown_s``
  seconds; its keys fail over to ring successors.
* **half-open** - after the cooldown one trial request is let through;
  success closes the breaker, failure re-opens it (and restarts the
  cooldown), so a still-dead member costs one probe per cooldown, not a
  thundering herd.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, Dict, Optional

logger = logging.getLogger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker with half-open recovery."""

    def __init__(self, *, failure_threshold: int = 3,
                 cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state; lazily promotes open -> half-open on cooldown."""
        with self._lock:
            return self._resolve_state()

    def _resolve_state(self) -> str:
        # Caller holds the lock.
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
            self._trial_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May a request be routed through right now?

        Closed always allows; open never does; half-open allows exactly
        one in-flight trial at a time.
        """
        with self._lock:
            state = self._resolve_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._trial_in_flight:
                self._trial_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._trial_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._resolve_state()
            if state == HALF_OPEN or \
                    self._consecutive_failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._trial_in_flight = False

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._resolve_state(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
            }


class HealthMonitor(threading.Thread):
    """Background ``/readyz`` prober for a :class:`FleetCoordinator`.

    Calls ``coordinator.check_health()`` every ``interval_s`` seconds
    until stopped; each probe round records a success or failure on
    every member's breaker, so a silently dead daemon is circuit-opened
    within ``failure_threshold * interval_s`` even with no traffic.
    """

    def __init__(self, coordinator: Any, *,
                 interval_s: float = 2.0) -> None:
        super().__init__(daemon=True, name="fleet-health")
        self.coordinator = coordinator
        self.interval_s = interval_s
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.coordinator.check_health()
            except Exception:  # noqa: BLE001 - the prober must survive
                logger.exception("fleet health probe round failed")

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)
