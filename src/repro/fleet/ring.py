"""Consistent-hash ring for cache-affinity job routing.

The fleet routes every campaign job by its exec-layer cache key
(:meth:`repro.exec.runner.CampaignJob.key`): the member that computed a
result once is the member that holds it warm, so resubmitted or
overlapping sweeps must deterministically land on the same daemon.  A
consistent-hash ring with virtual nodes gives exactly that mapping, and
keeps it stable under membership churn - adding or removing one member
remaps only the keys adjacent to its ring positions, not the whole
keyspace (the classic Karger construction memcached/Dynamo clients
use).

:meth:`HashRing.successors` yields the failover order: the primary
member for a key first, then every other member in ring order, which is
what the coordinator walks when a member is dead or circuit-open.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, List, Tuple

DEFAULT_REPLICAS = 64


def _hash(token: str) -> int:
    """Stable 64-bit ring position for a token (not security-sensitive)."""
    digest = hashlib.sha1(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring of member ids with virtual nodes."""

    def __init__(self, members: Iterable[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        #: Sorted parallel arrays of (ring position, member id).
        self._points: List[Tuple[int, str]] = []
        self._members: set = set()
        for member in members:
            self.add(member)

    # -- membership ------------------------------------------------------

    def add(self, member_id: str) -> None:
        if member_id in self._members:
            return
        self._members.add(member_id)
        for i in range(self.replicas):
            point = (_hash(f"{member_id}#{i}"), member_id)
            bisect.insort(self._points, point)

    def remove(self, member_id: str) -> None:
        if member_id not in self._members:
            return
        self._members.discard(member_id)
        self._points = [p for p in self._points if p[1] != member_id]

    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._members

    # -- lookup ----------------------------------------------------------

    def primary(self, key: str) -> str:
        """The member that owns ``key`` (first vnode at/after its hash)."""
        for member in self.successors(key):
            return member
        raise LookupError("hash ring has no members")

    def successors(self, key: str) -> Iterator[str]:
        """Distinct members in ring order starting at ``key``'s position.

        The first yielded member is the primary; the rest are the
        failover chain.  Yields each member exactly once.
        """
        if not self._points:
            return
        start = bisect.bisect_left(self._points, (_hash(key), ""))
        seen = set()
        for offset in range(len(self._points)):
            _, member = self._points[(start + offset) % len(self._points)]
            if member not in seen:
                seen.add(member)
                yield member
