"""In-process fleet harness: N real daemons on loopback ports.

:class:`LocalFleet` boots N :class:`~repro.serve.daemon.BackgroundServer`
instances - each with its *own* result-cache directory, mirroring
production where members do not share storage (that separation is what
makes cache-affinity routing observable: a hit can only come from the
member that computed the entry) - and wires a
:class:`~repro.fleet.coordinator.FleetCoordinator` over them.  Used by
the fleet tests, ``scripts/fleet_smoke.py`` and ``pathfinder fleet run
--local N``.

:meth:`LocalFleet.kill` force-stops a member (sockets torn down
mid-request, no drain), which is the failure the coordinator's
failover path exists for.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, List, Optional

from ..serve.daemon import BackgroundServer
from .coordinator import FleetCoordinator

__all__ = ["LocalFleet"]


class LocalFleet:
    """N loopback daemons + one coordinator, as a context manager.

    ::

        with LocalFleet(size=3, workers=1) as fleet:
            result = fleet.coordinator.run_many(jobs)
            fleet.kill(1)            # simulate a member crash
    """

    def __init__(
        self,
        size: int = 3,
        *,
        workers: int = 1,
        queue_depth: int = 64,
        cache_root: Optional[str] = None,
        journal_root: Optional[str] = None,
        shared_cache_root: Optional[str] = None,
        tenants: Any = None,
        failure_threshold: int = 2,
        cooldown_s: float = 60.0,
        **daemon_kwargs: Any,
    ) -> None:
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        self.size = size
        self.workers = workers
        self.queue_depth = queue_depth
        self.daemon_kwargs = daemon_kwargs
        self._own_root = cache_root is None
        self.cache_root = cache_root or tempfile.mkdtemp(prefix="fleet-")
        #: When set, member N journals to ``journal_root/memberN`` -- and
        #: :meth:`restart` replays that directory, so a killed member's
        #: queued jobs survive into its replacement.
        self.journal_root = journal_root
        #: When set, every member's cache becomes a pull-through tier
        #: over this shared store directory.
        self.shared_cache_root = shared_cache_root
        self.tenants = tenants
        self.servers: List[Optional[BackgroundServer]] = [None] * size
        # A long default cooldown: once a killed member's breaker opens,
        # tests want it to STAY out of routing (no half-open probe
        # stealing a resubmitted job from its failover home).
        self.coordinator = FleetCoordinator(
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
        )
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def _boot_member(self, index: int) -> BackgroundServer:
        cache_dir = os.path.join(self.cache_root, f"member{index}")
        os.makedirs(cache_dir, exist_ok=True)
        kwargs = dict(self.daemon_kwargs)
        if self.journal_root is not None:
            kwargs.setdefault(
                "journal_dir",
                os.path.join(self.journal_root, f"member{index}"),
            )
        if self.shared_cache_root is not None:
            kwargs.setdefault("shared_cache", self.shared_cache_root)
        if self.tenants is not None:
            kwargs.setdefault("tenants", self.tenants)
        return BackgroundServer(
            workers=self.workers,
            queue_depth=self.queue_depth,
            cache=cache_dir,
            **kwargs,
        ).start()

    def start(self) -> "LocalFleet":
        if self._started:
            return self
        for index in range(self.size):
            server = self._boot_member(index)
            self.servers[index] = server
            self.coordinator.add_member(("127.0.0.1", server.port))
        self._started = True
        return self

    def stop(self) -> None:
        self.coordinator.stop_monitor()
        for index, server in enumerate(self.servers):
            if server is not None:
                try:
                    server.stop(force=True)
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass
                self.servers[index] = None

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- chaos -----------------------------------------------------------

    def member_id(self, index: int) -> str:
        server = self.servers[index]
        if server is None:
            raise LookupError(f"member {index} is not running")
        return f"127.0.0.1:{server.port}"

    def kill(self, index: int) -> str:
        """Force-stop member ``index`` (abrupt death, no drain).

        The member stays in the coordinator's table and ring - exactly
        like a production crash, it is the breaker's job to take it out
        of routing.  Returns the dead member's id.
        """
        member_id = self.member_id(index)
        server = self.servers[index]
        assert server is not None
        server.stop(force=True)
        self.servers[index] = None
        return member_id

    def restart(self, index: int) -> str:
        """Boot a replacement for a killed member on the same directories.

        The replacement reuses member ``index``'s cache dir and (when the
        fleet has a ``journal_root``) its journal dir, so the daemon's
        recovery replay re-enqueues whatever the killed member still
        owed.  It binds a fresh port, hence joins the coordinator as a
        new member id; the dead id's breaker keeps it out of routing.
        Returns the new member's id.
        """
        if self.servers[index] is not None:
            raise RuntimeError(f"member {index} is still running")
        server = self._boot_member(index)
        self.servers[index] = server
        self.coordinator.add_member(("127.0.0.1", server.port))
        return self.member_id(index)

    def alive(self) -> List[str]:
        return [f"127.0.0.1:{s.port}" for s in self.servers if s is not None]
