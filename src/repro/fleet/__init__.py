"""repro.fleet - N ``repro.serve`` daemons as one logical profiler.

The scale-out layer for campaign workloads: a
:class:`FleetCoordinator` keeps a health-checked member table
(:mod:`~repro.fleet.health`), routes each job by consistent hashing on
its exec-layer cache key (:mod:`~repro.fleet.ring`) so resubmissions
land on the member that holds the cached result, fans ``run_many``-style
job lists over the members, merges their NDJSON progress streams
(:mod:`~repro.fleet.stream`), and reroutes a dead member's in-flight
jobs to its ring successors with bounded retries.  ``LocalFleet``
(:mod:`~repro.fleet.harness`) boots a real N-daemon fleet in-process for
tests and smoke runs.
"""

from .coordinator import (
    FleetCampaign,
    FleetCoordinator,
    FleetJobRecord,
    FleetMember,
    FleetResult,
    NoMemberAvailable,
)
from .harness import LocalFleet
from .health import CircuitBreaker, HealthMonitor
from .ring import HashRing
from .stream import EventMux

__all__ = [
    "CircuitBreaker",
    "EventMux",
    "FleetCampaign",
    "FleetCoordinator",
    "FleetJobRecord",
    "FleetMember",
    "FleetResult",
    "HashRing",
    "HealthMonitor",
    "LocalFleet",
    "NoMemberAvailable",
]
