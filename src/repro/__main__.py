"""``python -m repro`` runs the PathFinder CLI."""

import sys

from .core.cli import main

if __name__ == "__main__":
    sys.exit(main())
