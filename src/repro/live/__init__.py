"""Streaming incremental profiling (``repro.live``).

Turns post-hoc batch analysis into continuous profiling: counter records
append to a retention-tiered TSDB as epochs complete, PFMaterializer
workflows update in O(1) per record via incremental operators, and an
ingestion bus fans per-epoch digests out to live dashboards
(``GET /v1/live`` on serve, fleet-merged streams, the ``pathfinder
live`` CLI verb).  See docs/OBSERVABILITY.md ("Live profiling").
"""

from .bus import IngestionBus, LiveSubscription
from .dashboard import epoch_digest, render_live_event
from .incremental import OnlineHoltWinters, RollingMean, StreamingPearson
from .materializer import LiveMaterializer
from .sampler import LIVE_QUEUES, QueueSampler
from .spec import LiveSpec, coerce_live

__all__ = [
    "IngestionBus",
    "LIVE_QUEUES",
    "LiveMaterializer",
    "LiveSpec",
    "LiveSubscription",
    "OnlineHoltWinters",
    "QueueSampler",
    "RollingMean",
    "StreamingPearson",
    "coerce_live",
    "epoch_digest",
    "render_live_event",
]
