"""Per-epoch sim queue sampling for live dashboards.

The sim maintains :class:`~repro.sim.queues.QueueStats` meters on every
hardware FIFO unconditionally (recorder attached or not), so sampling
queue depth per epoch costs one ``sync`` + four subtractions per FIFO -
no :class:`EngineHooks` recorder attach, which would disable the
request freelist and slow the hot path.

Samples land in the live TSDB as the ``live_queues`` measurement, one
record per (queue, epoch) with the epoch's mean occupancy, insert count
and not-empty fraction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

LIVE_QUEUES = "live_queues"


class QueueSampler:
    """Delta-samples every machine FIFO at epoch boundaries."""

    def __init__(self, machine: Any, db: Any) -> None:
        self._db = db
        self._stats: List[Tuple[str, Any]] = []
        for port in machine.hook_ports():
            for queue in port.queues:
                self._stats.append((queue.name, queue.stats))
            for name, stats in port.watched:
                self._stats.append((name, stats))
        self._last: Dict[str, Tuple[float, float, float]] = {}
        self._last_t = 0.0

    def sample(self, now: float) -> List[Dict[str, float]]:
        """Fold the epoch's meter deltas into TSDB records; returns the
        per-queue digests (for the epoch event)."""
        duration = max(now - self._last_t, 1.0)
        out: List[Dict[str, float]] = []
        for name, stats in self._stats:
            stats.sync(now)
            prev = self._last.get(name, (0.0, 0.0, 0.0))
            inserts = float(stats.inserts)
            occupancy = stats.occupancy_integral
            not_empty = stats.cycles_not_empty
            fields = {
                "inserts": inserts - prev[0],
                "occupancy": (occupancy - prev[1]) / duration,
                "busy": (not_empty - prev[2]) / duration,
            }
            self._last[name] = (inserts, occupancy, not_empty)
            self._db.insert(LIVE_QUEUES, now, tags={"queue": name}, fields=fields)
            out.append({"queue": name, **fields})
        self._last_t = now
        return out

    def hottest(self, samples: List[Dict[str, float]], k: int) -> List[Dict[str, float]]:
        """The k busiest queues of one epoch by mean occupancy."""
        ranked = sorted(samples, key=lambda s: s["occupancy"], reverse=True)
        return [s for s in ranked[:k] if s["occupancy"] > 0.0]
