"""Incremental counterparts of the batch Flux operators.

Each operator consumes one point at a time in O(1) (O(season_length)
once, at seasonal initialisation) and reproduces its batch counterpart
in :mod:`repro.tsdb.operators` exactly - the parity tests in
``tests/test_live.py`` drive both over random series and compare within
float tolerance.  This is what lets PFMaterializer workflows update per
epoch instead of recomputing over the whole history (ISSUE: streaming,
not post-hoc batch, analysis).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional


class RollingMean:
    """Streaming ``movingAverage``: trailing window mean, prefix-averaged.

    ``push(v)`` returns the same value ``moving_average(series, window)``
    emits at that index: the mean of the last ``window`` points (or of
    the whole prefix while shorter than the window).
    """

    __slots__ = ("window", "_buf", "_sum", "_pushes")

    #: Recompute the running sum from the buffer periodically so float
    #: cancellation error cannot accumulate over millions of points.
    _RESYNC_EVERY = 4096

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._buf: Deque[float] = deque(maxlen=window)
        self._sum = 0.0
        self._pushes = 0

    def push(self, value: float) -> float:
        buf = self._buf
        if len(buf) == self.window:
            self._sum -= buf[0]
        buf.append(value)
        self._sum += value
        self._pushes += 1
        if self._pushes % self._RESYNC_EVERY == 0:
            self._sum = math.fsum(buf)
        return self._sum / len(buf)

    @property
    def value(self) -> float:
        return self._sum / len(self._buf) if self._buf else 0.0

    def __len__(self) -> int:
        return len(self._buf)


class OnlineHoltWinters:
    """Streaming ``holtWinters`` with exact batch parity.

    Non-seasonal (double exponential) state updates in O(1) from the
    first point.  With ``season_length=m``, the first ``2m`` points are
    buffered; once the second season completes the batch initialisation
    runs verbatim (seasonal indices from the first two seasons, level /
    trend from their means) and the buffer replays through the seasonal
    recurrence - from then on each push is O(1).  ``forecast`` uses the
    seasonal state iff the batch operator would (``n >= 2m``), so the
    two paths agree at every prefix length.
    """

    __slots__ = (
        "alpha",
        "beta",
        "gamma",
        "season_length",
        "count",
        "_level",
        "_trend",
        "_season",
        "_s_level",
        "_s_trend",
        "_warmup",
    )

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        gamma: float = 0.3,
        season_length: Optional[int] = None,
    ) -> None:
        if season_length is not None and season_length < 1:
            raise ValueError("season_length must be >= 1")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_length = season_length
        self.count = 0
        # Non-seasonal (double exponential) state - always maintained.
        self._level = 0.0
        self._trend = 0.0
        # Seasonal state, live once the warm-up buffer has replayed.
        self._season: Optional[List[float]] = None
        self._s_level = 0.0
        self._s_trend = 0.0
        self._warmup: List[float] = []

    def push(self, value: float) -> None:
        i = self.count
        # Non-seasonal recurrence (batch: level=arr[0], trend=arr[1]-arr[0],
        # then smooth from i=1).
        if i == 0:
            self._level = value
            self._trend = 0.0
        else:
            if i == 1:
                self._trend = value - self._level
            prev = self._level
            self._level = self.alpha * value + (1 - self.alpha) * (
                self._level + self._trend
            )
            self._trend = (
                self.beta * (self._level - prev) + (1 - self.beta) * self._trend
            )
        self.count = i + 1
        m = self.season_length
        if not m:
            return
        if self._season is None:
            self._warmup.append(value)
            if len(self._warmup) == 2 * m:
                self._init_seasonal()
            return
        self._seasonal_step(i, value)

    def _init_seasonal(self) -> None:
        m = self.season_length
        warm = self._warmup
        season = [(warm[i] + warm[m + i]) / 2.0 for i in range(m)]
        mean = sum(season) / m
        season = [s - mean for s in season]
        first = sum(warm[:m]) / m
        second = sum(warm[m:]) / m
        self._season = season
        self._s_level = first
        self._s_trend = (second - first) / m
        for i, value in enumerate(warm):
            self._seasonal_step(i, value)
        self._warmup = []

    def _seasonal_step(self, i: int, value: float) -> None:
        season = self._season
        s_idx = i % self.season_length
        prev = self._s_level
        self._s_level = self.alpha * (value - season[s_idx]) + (
            1 - self.alpha
        ) * (self._s_level + self._s_trend)
        self._s_trend = (
            self.beta * (self._s_level - prev)
            + (1 - self.beta) * self._s_trend
        )
        season[s_idx] = (
            self.gamma * (value - self._s_level)
            + (1 - self.gamma) * season[s_idx]
        )

    @property
    def seasonal_active(self) -> bool:
        return self._season is not None

    def forecast(self, horizon: int = 1) -> List[float]:
        """``horizon`` points past the stream's end; ``[]`` before the
        first point (matching the batch guard)."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        n = self.count
        if n == 0:
            return []
        if self._season is not None:
            m = self.season_length
            return [
                self._s_level
                + (h + 1) * self._s_trend
                + self._season[(n + h) % m]
                for h in range(horizon)
            ]
        return [self._level + (h + 1) * self._trend for h in range(horizon)]


class StreamingPearson:
    """Streaming ``pearsonr`` via Welford-style co-moments.

    Maintains means plus centred second moments (M2x, M2y) and the
    co-moment (Cxy); the correlation is ``Cxy / sqrt(M2x * M2y)`` -
    algebraically identical to the batch population formula, numerically
    stable over millions of updates.  Degenerate input (n < 2, zero
    variance) reads 0.0, matching the guarded batch operator.
    """

    __slots__ = ("n", "_mean_x", "_mean_y", "_m2x", "_m2y", "_cxy")

    def __init__(self) -> None:
        self.n = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2x = 0.0
        self._m2y = 0.0
        self._cxy = 0.0

    def push(self, x: float, y: float) -> None:
        self.n += 1
        n = self.n
        dx = x - self._mean_x
        dy = y - self._mean_y
        self._mean_x += dx / n
        self._mean_y += dy / n
        dy2 = y - self._mean_y
        self._m2x += dx * (x - self._mean_x)
        self._m2y += dy * dy2
        self._cxy += dx * dy2

    @property
    def value(self) -> float:
        if self.n < 2:
            return 0.0
        denom = math.sqrt(self._m2x * self._m2y)
        if denom == 0.0:
            return 0.0
        return self._cxy / denom
