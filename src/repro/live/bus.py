"""Ingestion bus: one producer, many bounded subscribers.

The profiling loop publishes one digest dict per epoch; consumers (the
serve ``/v1/live`` endpoint, the CLI renderer, tests) each get their own
bounded deque so a slow dashboard can never stall the simulator - the
bus drops that subscriber's *oldest* events instead and counts the
drops.

Thread-safe: the sim loop publishes from a worker thread/process driver
while asyncio handlers drain via :meth:`LiveSubscription.drain_nowait`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterator, List, Optional

#: Marks the end of the stream inside a subscriber's deque.
_CLOSE = object()


class LiveSubscription:
    """One consumer's bounded view of the bus."""

    def __init__(self, bus: "IngestionBus", maxlen: int) -> None:
        self._bus = bus
        self._events: deque = deque()
        self._maxlen = maxlen
        self._cond = threading.Condition()
        self._closed = False
        #: Events this subscriber lost to backpressure.
        self.dropped = 0

    def _push(self, event: object) -> None:
        with self._cond:
            if self._closed:
                return
            if event is _CLOSE:
                self._closed = True
            elif len(self._events) >= self._maxlen:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)
            self._cond.notify_all()

    def get(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next event, blocking up to ``timeout``; ``None`` on close or
        timeout."""
        with self._cond:
            if not self._events:
                self._cond.wait(timeout)
            if not self._events:
                return None
            event = self._events.popleft()
            return None if event is _CLOSE else event

    def drain_nowait(self) -> List[Dict]:
        """All queued events without blocking (asyncio poll pattern)."""
        with self._cond:
            out = []
            while self._events:
                event = self._events.popleft()
                if event is _CLOSE:
                    break
                out.append(event)
            return out

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed and not self._events

    def __iter__(self) -> Iterator[Dict]:
        while True:
            event = self.get(timeout=None)
            if event is None:
                return
            yield event

    def close(self) -> None:
        self._bus.unsubscribe(self)


class IngestionBus:
    """Fan-out point between the profiling loop and live consumers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[LiveSubscription] = []
        self._closed = False
        self.published = 0

    def subscribe(self, maxlen: int = 1024) -> LiveSubscription:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        sub = LiveSubscription(self, maxlen)
        with self._lock:
            if self._closed:
                sub._push(_CLOSE)
            else:
                self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: LiveSubscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass
        sub._push(_CLOSE)

    def publish(self, event: Dict) -> None:
        with self._lock:
            if self._closed:
                return
            self.published += 1
            subscribers = list(self._subscribers)
        for sub in subscribers:
            sub._push(event)

    def close(self) -> None:
        """End of stream: wake every subscriber with a close marker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = self._subscribers
            self._subscribers = []
        for sub in subscribers:
            sub._push(_CLOSE)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "published": self.published,
                "subscribers": len(self._subscribers),
                "dropped": sum(s.dropped for s in self._subscribers),
            }
