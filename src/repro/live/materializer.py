"""Incremental PFMaterializer: batch workflows plus O(1) rolling state.

``LiveMaterializer`` is a drop-in :class:`~repro.core.materializer
.PFMaterializer` whose backing TSDB carries the live retention tiers and
which additionally maintains, per tagged series, the incremental
operators from :mod:`repro.live.incremental`:

* per ``(pid, path, dst)`` hit series - rolling mean + online
  Holt-Winters forecast (the streaming half of the section 4.6 locality
  workflow);
* per core - rolling ops-completed mean;
* per co-resident pid pair - streaming Pearson over epoch-aligned
  LLC-hit series (the streaming half of :meth:`correlate`).

The batch workflows (``locality``, ``correlate``, ...) still run against
the same db - within the retention window they agree with the rolling
views, which the parity tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.builder import PathMap
from ..core.materializer import PATH_SET, VERTEX_SET, PFMaterializer
from ..core.snapshot import Snapshot
from ..tsdb import TimeSeriesDB
from .incremental import OnlineHoltWinters, RollingMean, StreamingPearson
from .spec import LiveSpec


class _SeriesState:
    """Rolling state for one tagged value series."""

    __slots__ = ("mean", "forecaster", "last", "scale", "count")

    def __init__(self, window: int) -> None:
        self.mean = RollingMean(window)
        self.forecaster = OnlineHoltWinters()
        self.last = 0.0
        self.scale = 0.0
        self.count = 0

    def push(self, value: float) -> None:
        self.mean.push(value)
        self.forecaster.push(value)
        self.last = value
        self.scale = max(self.scale, abs(value))
        self.count += 1


class LiveMaterializer(PFMaterializer):
    """PFMaterializer that keeps rolling answers warm while ingesting."""

    def __init__(self, spec: Optional[LiveSpec] = None, socket: int = 0) -> None:
        self.spec = spec if spec is not None else LiveSpec()
        super().__init__(
            socket=socket, db=TimeSeriesDB(retention=self.spec.retention())
        )
        self._paths: Dict[Tuple[str, str, str], _SeriesState] = {}
        self._core_ops: Dict[str, _SeriesState] = {}
        self._pearson: Dict[Tuple[str, str], StreamingPearson] = {}
        # Per-epoch scratch: pid -> LLC demand-read hits this epoch.
        self._epoch_hits: Dict[str, float] = {}

    # -- ingestion ------------------------------------------------------

    def _insert(
        self,
        measurement: str,
        timestamp: float,
        tags: Dict[str, str],
        fields: Dict[str, float],
    ) -> None:
        super()._insert(measurement, timestamp, tags=tags, fields=fields)
        window = self.spec.window
        if measurement == PATH_SET:
            key = (tags["pid"], tags["path"], tags["dst"])
            state = self._paths.get(key)
            if state is None:
                state = self._paths[key] = _SeriesState(window)
            hits = fields["hits"]
            state.push(hits)
            if tags["path"] == "DRd" and tags["dst"] == "LLC":
                pid = tags["pid"]
                self._epoch_hits[pid] = self._epoch_hits.get(pid, 0.0) + hits
        elif measurement == VERTEX_SET and tags.get("component") == "core":
            core = tags["core"]
            state = self._core_ops.get(core)
            if state is None:
                state = self._core_ops[core] = _SeriesState(window)
            state.push(fields.get("ops", 0.0))

    def ingest(self, snapshot: Snapshot, path_map: Optional[PathMap] = None) -> None:
        self._epoch_hits = {}
        super().ingest(snapshot, path_map)
        self._flush_epoch()

    def _flush_epoch(self) -> None:
        """Advance pairwise correlations with this epoch's aligned hits."""
        pids = sorted(p for p in self._epoch_hits if p != "-1")
        for i, a in enumerate(pids):
            for b in pids[i + 1 :]:
                pair = self._pearson.get((a, b))
                if pair is None:
                    pair = self._pearson[(a, b)] = StreamingPearson()
                pair.push(self._epoch_hits[a], self._epoch_hits[b])

    # -- rolling workflows ----------------------------------------------

    def rolling_locality(
        self, pid: int, path: str = "DRd", dst: str = "LLC"
    ) -> Dict[str, object]:
        """O(1) streaming view of the locality workflow: current rolling
        mean, next-epoch forecast and the 25%-of-scale predictability
        verdict, without touching the stored series."""
        state = self._paths.get((str(pid), path, dst))
        if state is None:
            return {
                "pid": pid,
                "mean": 0.0,
                "forecast": [],
                "predictable": False,
                "epochs": 0,
            }
        forecast = state.forecaster.forecast(self.spec.horizon)
        scale = state.scale or 1.0
        predictable = bool(
            forecast
            and state.count >= 4
            and abs(forecast[0] - state.last) <= 0.25 * scale
        )
        return {
            "pid": pid,
            "mean": state.mean.value,
            "forecast": forecast,
            "predictable": predictable,
            "epochs": state.count,
        }

    def rolling_correlate(self, pid_a: int, pid_b: int) -> float:
        """Streaming Pearson between two apps' epoch-aligned LLC hits."""
        a, b = sorted((str(pid_a), str(pid_b)))
        pair = self._pearson.get((a, b))
        return pair.value if pair is not None else 0.0

    def rolling_core_ops(self, core: int) -> float:
        state = self._core_ops.get(str(core))
        return state.mean.value if state is not None else 0.0

    def tracked_pids(self) -> List[int]:
        pids = {key[0] for key in self._paths if key[0] != "-1"}
        return sorted(int(p) for p in pids)
