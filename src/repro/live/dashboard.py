"""Per-epoch digests and their terminal rendering.

``epoch_digest`` condenses one :class:`~repro.core.profiler.EpochResult`
plus the live materializer's rolling state into a small JSON-safe dict -
the unit the ingestion bus publishes, ``/v1/live`` streams and the
``pathfinder live`` CLI verb renders.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Digest schema version, bumped when the event shape changes.
DIGEST_VERSION = 1


def epoch_digest(
    epoch_result: Any,
    materializer: Any,
    top_k: int = 5,
    queues: Optional[List[Dict[str, float]]] = None,
) -> Dict[str, Any]:
    """One epoch's worth of live diagnosis, JSON-serialisable."""
    snapshot = epoch_result.snapshot
    culprit = epoch_result.queues.culprit()
    top = sorted(
        ((scope, event, delta) for (scope, event), delta in snapshot.delta.items()
         if delta),
        key=lambda item: abs(item[2]),
        reverse=True,
    )[:top_k]
    rolling: Dict[str, Dict[str, Any]] = {}
    pids = materializer.tracked_pids()
    for pid in pids:
        rolling[str(pid)] = materializer.rolling_locality(pid)
    correlations: Dict[str, float] = {}
    for i, a in enumerate(pids):
        for b in pids[i + 1 :]:
            correlations[f"{a}:{b}"] = materializer.rolling_correlate(a, b)
    doc: Dict[str, Any] = {
        "event": "epoch",
        "v": DIGEST_VERSION,
        "epoch": epoch_result.epoch,
        "t_start": snapshot.t_start,
        "t_end": snapshot.t_end,
        "culprit": f"{culprit.path}@{culprit.component}" if culprit else None,
        "top_counters": [[scope, event, delta] for scope, event, delta in top],
        "rolling": rolling,
        "correlations": correlations,
    }
    if getattr(snapshot, "warped", False):
        doc["warped"] = True
    if queues:
        doc["hot_queues"] = queues
    return doc


def render_live_event(event: Dict[str, Any]) -> str:
    """One-line terminal rendering of a live stream event."""
    kind = event.get("event", "?")
    if kind != "epoch":
        extra = {
            k: v
            for k, v in event.items()
            if k not in ("event", "seq", "ts", "job_id", "v")
        }
        detail = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        return f"[{kind}] {detail}".rstrip()
    parts = [f"epoch {event.get('epoch', '?'):>4}"]
    t_end = event.get("t_end")
    if t_end is not None:
        parts.append(f"t={t_end:.0f}")
    culprit = event.get("culprit")
    parts.append(f"culprit={culprit or '-'}")
    rolling = event.get("rolling") or {}
    for pid, state in sorted(rolling.items()):
        flag = "+" if state.get("predictable") else "-"
        forecast = state.get("forecast") or [0.0]
        parts.append(
            f"pid{pid}[mean={state.get('mean', 0.0):.1f} "
            f"next={forecast[0]:.1f} pred{flag}]"
        )
    correlations = event.get("correlations") or {}
    for pair, r in sorted(correlations.items()):
        parts.append(f"r({pair})={r:+.2f}")
    top = event.get("top_counters") or []
    if top:
        scope, name, delta = top[0]
        parts.append(f"top={scope}.{name}:{delta:.0f}")
    return "  ".join(parts)
