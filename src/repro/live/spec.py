"""Configuration for streaming (live) profiling.

``LiveSpec`` is carried by :class:`repro.options.RunOptions` and by serve
submissions (``{"live": true}``); it controls the incremental
materializer's rolling windows, the TSDB retention tiers that keep
long-running ingestion memory-bounded, and whether sim queue depths are
sampled per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..tsdb.tiers import RetentionPolicy


@dataclass(frozen=True)
class LiveSpec:
    """How a live profiling run streams and retains its series.

    ``window``/``horizon`` parameterise the rolling operators (moving
    average span, Holt-Winters forecast length); ``top_k`` bounds the
    per-epoch top-counter digest; the ``raw_points``/``tier_factors``/
    ``tier_points`` trio becomes the TSDB :class:`RetentionPolicy`.
    """

    window: int = 8
    horizon: int = 1
    top_k: int = 5
    raw_points: int = 100_000
    tier_factors: Tuple[int, ...] = (10, 100)
    tier_points: int = 100_000
    sample_queues: bool = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        object.__setattr__(
            self, "tier_factors", tuple(int(f) for f in self.tier_factors)
        )
        # Validate the tier cascade eagerly, at spec construction time.
        self.retention()

    def retention(self) -> RetentionPolicy:
        return RetentionPolicy(
            raw_points=self.raw_points,
            tier_factors=self.tier_factors,
            tier_points=self.tier_points,
        )


def coerce_live(value: Union[None, bool, LiveSpec]) -> Optional[LiveSpec]:
    """Normalise the user-facing ``live=`` knob.

    ``None``/``False`` -> off; ``True`` -> defaults; a :class:`LiveSpec`
    passes through.  Anything else is a :class:`ValueError` (mirrors
    ``options.apply_trace``).
    """
    if value is None or value is False:
        return None
    if value is True:
        return LiveSpec()
    if isinstance(value, LiveSpec):
        return value
    raise ValueError(
        f"live must be None, a bool, or a LiveSpec, got {value!r}"
    )
