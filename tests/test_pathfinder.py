"""Tests for PathFinder's four techniques over real profiled sessions."""

import pytest

from repro.core import (
    FAMILIES,
    PFBuilder,
    PFEstimator,
    PFAnalyzer,
    STALL_COMPONENTS,
    render_epoch,
    render_session,
)
from repro.core.builder import CORE_COMPONENTS, UNCORE_COMPONENTS


# -- session shape ------------------------------------------------------------


def test_session_produces_epochs_and_flows(cxl_session):
    _machine, _profiler, result = cxl_session
    assert result.num_epochs >= 2
    assert result.final is not None
    assert len(result.flows) == 1
    flow = result.flows[0]
    assert flow.is_cxl
    assert flow.snapshot_ids  # snapshots were attached


def test_snapshot_deltas_are_contiguous(cxl_session):
    _machine, _profiler, result = cxl_session
    times = [(e.snapshot.t_start, e.snapshot.t_end) for e in result.epochs]
    for (s0, e0), (s1, _e1) in zip(times, times[1:]):
        assert e0 == s1
        assert e0 > s0


def test_counter_deltas_sum_to_totals(cxl_session):
    machine, _profiler, result = cxl_session
    total = sum(
        e.snapshot.get("core0", "mem_load_retired.l1_miss")
        for e in result.epochs
    )
    final = machine.pmu.get("core0", "mem_load_retired.l1_miss")
    assert total == pytest.approx(final)


# -- PFBuilder ---------------------------------------------------------------


def test_path_map_shape(cxl_session):
    _m, _p, result = cxl_session
    pm = result.final.path_map
    assert set(pm.per_core[0]) == set(FAMILIES)
    for family in FAMILIES:
        assert set(pm.per_core[0][family]) == set(CORE_COMPONENTS)
        assert set(pm.uncore[family]) == set(UNCORE_COMPONENTS)


def test_path_map_blind_spots_match_paper(cxl_session):
    """Section 5.9: RFO and DWr are not observable at L1D/LFB."""
    _m, _p, result = cxl_session
    pm = result.final.path_map
    assert pm.core_hits(0, "RFO", "L1D") is None
    assert pm.core_hits(0, "RFO", "LFB") is None
    assert pm.core_hits(0, "DWr", "L1D") is None
    assert pm.core_hits(0, "DRd", "L1D") is not None


def test_cxl_bound_app_hits_cxl_memory(cxl_session):
    _m, _p, result = cxl_session
    # Across the whole run, most uncore serves come from CXL.
    total_cxl = sum(e.path_map.cxl_hits() for e in result.epochs)
    total_local = sum(
        e.path_map.uncore_hits(f, "local_DRAM")
        for e in result.epochs
        for f in FAMILIES
    )
    assert total_cxl > 0
    assert total_cxl > total_local


def test_local_bound_app_does_not_hit_cxl(local_session):
    _m, _p, result = local_session
    assert sum(e.path_map.cxl_hits() for e in result.epochs) == 0


def test_family_share_sums_to_one_or_zero(cxl_session):
    _m, _p, result = cxl_session
    for e in result.epochs:
        share = e.path_map.family_share_at_cxl()
        total = sum(share.values())
        assert total == pytest.approx(1.0) or total == 0.0


def test_cxl_traffic_recorded_from_m2pcie(cxl_session):
    _m, _p, result = cxl_session
    loads = sum(
        t["loads"] for e in result.epochs for t in e.path_map.cxl_traffic.values()
    )
    assert loads > 0


def test_hot_path_queries(cxl_session):
    _m, _p, result = cxl_session
    pm = result.final.path_map
    assert pm.hot_path_core(0) in FAMILIES
    assert pm.hot_path_uncore() in FAMILIES


# -- PFEstimator ---------------------------------------------------------------


def test_stall_breakdown_components(cxl_session):
    _m, _p, result = cxl_session
    stalls = result.final.stalls
    agg = stalls.aggregate("DRd")
    assert set(agg) == set(STALL_COMPONENTS)
    assert all(v >= 0 for v in agg.values())


def test_stall_shares_normalised(cxl_session):
    _m, _p, result = cxl_session
    for e in result.epochs:
        for family in FAMILIES:
            shares = e.stalls.shares(family)
            total = sum(shares.values())
            assert total == pytest.approx(1.0) or total == 0.0


def test_cxl_run_attributes_stalls_somewhere(cxl_session):
    _m, _p, result = cxl_session
    total = sum(
        sum(e.stalls.aggregate("DRd").values()) for e in result.epochs
    )
    assert total > 0


def test_local_run_attributes_no_cxl_stalls(local_session):
    _m, _p, result = local_session
    for e in result.epochs:
        for family in FAMILIES:
            assert sum(e.stalls.aggregate(family).values()) == pytest.approx(
                0.0, abs=1e-6
            )


def test_uncore_dominates_cxl_stalls(cxl_session):
    """Figure 6's shape: FlexBus+MC and the DIMM carry the bulk of the
    CXL-induced DRd stall, and stalls diminish toward the core."""
    _m, _p, result = cxl_session
    agg = {c: 0.0 for c in STALL_COMPONENTS}
    for e in result.epochs:
        for c, v in e.stalls.aggregate("DRd").items():
            agg[c] += v
    uncore = agg["FlexBus+MC"] + agg["CXL_DIMM"] + agg["CHA"]
    incore = agg["L1D"] + agg["LFB"] + agg["L2"] + agg["SB"]
    assert uncore > 0


# -- PFAnalyzer ----------------------------------------------------------------


def test_analyzer_reports_culprit(cxl_session):
    _m, _p, result = cxl_session
    report = result.final.queues
    culprit = report.culprit()
    assert culprit is not None
    assert culprit.queue_length > 0
    assert culprit.component in (
        "L1D", "LFB", "L2", "LLC", "FlexBus+MC"
    )


def test_queue_lengths_nonnegative(cxl_session):
    _m, _p, result = cxl_session
    for e in result.epochs:
        for est in e.queues.estimates:
            assert est.queue_length >= 0
            assert est.arrival_rate >= 0
            assert est.delay >= 0


def test_by_component_aggregation(cxl_session):
    _m, _p, result = cxl_session
    report = result.final.queues
    by_component = report.by_component("DRd")
    manual = sum(
        e.queue_length for e in report.estimates if e.path == "DRd"
    )
    assert sum(by_component.values()) == pytest.approx(manual)


def test_flexbus_queue_only_for_cxl(local_session):
    _m, _p, result = local_session
    for e in result.epochs:
        assert e.queues.queue("FlexBus+MC", "DRd") == 0.0


# -- PFMaterializer --------------------------------------------------------------


def test_materializer_ingested_all_epochs(cxl_session):
    _m, profiler, result = cxl_session
    assert profiler.materializer.snapshots_ingested == result.num_epochs


def test_locality_workflow(cxl_session):
    _m, profiler, result = cxl_session
    pid = result.flows[0].pid
    report = profiler.materializer.locality(pid, component="CXL")
    assert len(report.hits_series) == result.num_epochs
    assert report.windows
    assert report.stable_phase_length >= 1
    assert len(report.trend) == len(report.hits_series)


def test_locality_unknown_pid_raises(cxl_session):
    _m, profiler, _r = cxl_session
    with pytest.raises(ValueError):
        profiler.materializer.locality(424242)


def test_flexbus_utilization_series(cxl_session):
    machine, profiler, result = cxl_session
    node = machine.cxl_node.node_id
    series = profiler.materializer.flexbus_utilization_series(node)
    assert len(series) == result.num_epochs
    assert any(v > 0 for v in series)


# -- reports --------------------------------------------------------------------


def test_render_functions_produce_text(cxl_session):
    _m, _p, result = cxl_session
    text = render_session(result)
    assert "PathFinder session" in text
    assert "mFlow" in text
    epoch_text = render_epoch(result.final)
    assert "Path map" in epoch_text
    assert "stall breakdown" in epoch_text
    assert "culprit" in epoch_text
