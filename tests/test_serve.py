"""repro.serve: HTTP round trip, admission control, drain, streaming.

These tests run a real daemon (own thread, OS-assigned port) and talk to
it over real sockets, because the serving contract *is* the wire format:
an in-process shortcut would not catch a broken chunked encoding or a
missing Retry-After header.
"""

import json

import pytest

from repro import api
from repro.core import AppSpec, ProfileSpec
from repro.exec import cxl_node_id
from repro.serve import BackgroundServer, ServeClient, ServeError
from repro.sim import spr_config
from repro.workloads import build_app


def make_spec(seed: int = 3, num_ops: int = 600) -> ProfileSpec:
    workload = build_app("541.leela_r", num_ops=num_ops, seed=seed)
    app = AppSpec(
        workload=workload, core=0, membind=cxl_node_id(spr_config())
    )
    return ProfileSpec(apps=[app], epoch_cycles=20_000.0)


def reference_counters(spec: ProfileSpec) -> list:
    result = api.run(spec, config=api.config_for(spec))
    return sorted(
        ([scope, event, value]
         for (scope, event), value in api.counters(result).items()),
        key=lambda row: (row[0], row[1]),
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with BackgroundServer(workers=1, queue_depth=8,
                          cache=str(cache_dir)) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(port=server.port)


# -- end-to-end equivalence ----------------------------------------------


def test_run_over_http_matches_in_process_counters(client):
    spec = make_spec()
    job = client.submit_run(spec, tag="e2e")
    final = client.wait(job["job_id"], timeout=300)
    assert final["state"] == "done"
    assert final["cache_hit"] is False
    assert final["events_executed"] > 0
    assert final["counters"] == reference_counters(make_spec())


def test_resubmission_is_an_idempotent_cache_hit(client):
    spec = make_spec()
    first = client.wait(client.submit_run(spec)["job_id"], timeout=300)
    again = client.submit_run(make_spec())
    # Born done straight from the cache: no queue round trip.
    assert again["state"] == "done"
    assert again["cache_hit"] is True
    assert again["counters"] == first["counters"]
    metrics = client.metrics()
    assert metrics["counters"]["jobs_cache_hit"] >= 1
    assert metrics["cache"]["hits"] >= 1


def test_events_stream_is_well_formed_ndjson(client):
    spec = make_spec(seed=11)
    job = client.submit_run(spec, tag="stream")
    events = list(client.events(job["job_id"], timeout=300))
    assert events, "stream ended with no events"
    # Monotonic seq starting at 0, every line a self-identifying object.
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert all(event["job_id"] == job["job_id"] for event in events)
    names = [event["event"] for event in events]
    assert names[-1] in ("done", "failed")
    assert "queued" in names or events[0]["event"] == "done"
    done = events[-1]
    assert done["event"] == "done"
    assert done["counters"] == reference_counters(make_spec(seed=11))


def test_unknown_job_is_404(client):
    with pytest.raises(ServeError) as err:
        client.job("j99999-deadbeef")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        list(client.events("j99999-deadbeef"))
    assert err.value.status == 404


def test_malformed_spec_is_400(client):
    status, _, body = client._request(
        "POST", "/v1/run", {"spec": {"format": 1, "apps": []}}
    )
    assert status == 400
    assert "error" in body
    status, _, _ = client._request("POST", "/v1/run", {"nonsense": True})
    assert status == 400


def test_health_and_metrics_endpoints(client):
    health = client.health()
    assert health["status"] == "ok"
    metrics = client.metrics()
    assert metrics["queue"]["capacity"] == 8
    assert "GET /healthz" in metrics["endpoint_latency_ms"]
    assert metrics["endpoint_latency_ms"]["GET /healthz"]["count"] >= 1


# -- admission control ----------------------------------------------------


def test_queue_pressure_triggers_429_with_retry_after():
    # workers=0 wedges the queue on purpose: nothing ever drains, so the
    # depth-1 queue is full after one submission.
    with BackgroundServer(workers=0, queue_depth=1, cache=None) as server:
        client = ServeClient(port=server.port)
        first = client.submit_run(make_spec(seed=21))
        assert first["state"] == "queued"
        assert not client.ready()  # full queue flips readiness
        with pytest.raises(ServeError) as err:
            client.submit_run(make_spec(seed=22))
        assert err.value.status == 429
        assert err.value.retry_after is not None
        assert err.value.retry_after >= 1
        assert client.metrics()["counters"]["jobs_rejected"] >= 1
        server.stop(force=True)


def test_duplicate_submission_dedupes_onto_queued_job():
    with BackgroundServer(workers=0, queue_depth=4, cache=None) as server:
        client = ServeClient(port=server.port)
        first = client.submit_run(make_spec(seed=31))
        second = client.submit_run(make_spec(seed=31))
        assert second["job_id"] == first["job_id"]
        assert len(client.jobs()) == 1
        server.stop(force=True)


def test_campaign_admission_is_all_or_nothing():
    with BackgroundServer(workers=0, queue_depth=2, cache=None) as server:
        client = ServeClient(port=server.port)
        subs = [client.submission(make_spec(seed=s)) for s in (41, 42, 43)]
        with pytest.raises(ServeError) as err:
            client.submit_campaign(subs)
        assert err.value.status == 429
        assert client.jobs() == []  # nothing half-admitted
        accepted = client.submit_campaign(subs[:2])
        assert len(accepted["jobs"]) == 2
        server.stop(force=True)


# -- graceful shutdown ----------------------------------------------------


def test_shutdown_drains_queued_and_in_flight_jobs(tmp_path):
    server = BackgroundServer(workers=1, queue_depth=8,
                              cache=str(tmp_path / "cache")).start()
    client = ServeClient(port=server.port)
    jobs = [client.submit_run(make_spec(seed=51 + i)) for i in range(2)]
    assert all(job["state"] in ("queued", "running") for job in jobs)
    client.shutdown()  # same path as SIGTERM
    server.stop()  # joins the drain
    store = server.daemon.store
    for job in jobs:
        record = store.get(job["job_id"])
        assert record.state == "done", (record.state, record.error)
    # Draining refused new work before exiting.
    assert server.daemon._draining is True
