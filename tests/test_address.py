"""Unit tests for the address space and page migration."""

import pytest

from repro.sim.address import (
    AddressSpace,
    NodeKind,
    NumaNode,
    PAGE_SIZE,
    build_address_space,
)

GIB = 1 << 30


def two_node_space():
    return AddressSpace(
        [
            NumaNode(0, NodeKind.LOCAL_DDR, 0, GIB),
            NumaNode(1, NodeKind.CXL, GIB, GIB),
        ]
    )


def test_node_lookup_by_address():
    space = two_node_space()
    assert space.node_of(0).node_id == 0
    assert space.node_of(GIB - 1).node_id == 0
    assert space.node_of(GIB).node_id == 1
    assert space.is_cxl(GIB + 4096)
    assert not space.is_cxl(4096)


def test_address_outside_nodes_raises():
    space = two_node_space()
    with pytest.raises(KeyError):
        space.node_of(2 * GIB)


def test_overlapping_nodes_rejected():
    with pytest.raises(ValueError):
        AddressSpace(
            [
                NumaNode(0, NodeKind.LOCAL_DDR, 0, GIB),
                NumaNode(1, NodeKind.CXL, GIB // 2, GIB),
            ]
        )


def test_duplicate_node_ids_rejected():
    with pytest.raises(ValueError):
        AddressSpace(
            [
                NumaNode(0, NodeKind.LOCAL_DDR, 0, GIB),
                NumaNode(0, NodeKind.CXL, GIB, GIB),
            ]
        )


def test_unaligned_base_rejected():
    with pytest.raises(ValueError):
        NumaNode(0, NodeKind.LOCAL_DDR, 100, GIB)


def test_alloc_and_translate():
    space = two_node_space()
    space.alloc_pages(1, 4, vpn_base=1000)
    physical = space.translate(1000 * PAGE_SIZE + 17)
    assert space.is_cxl(physical)
    assert physical % PAGE_SIZE == 17
    # Consecutive pages are contiguous frames.
    second = space.translate(1001 * PAGE_SIZE)
    assert second == space.translate(1000 * PAGE_SIZE) + PAGE_SIZE


def test_translate_unmapped_is_identity():
    space = two_node_space()
    assert space.translate(12345) == 12345


def test_migration_moves_page_between_nodes():
    space = two_node_space()
    space.alloc_pages(1, 1, vpn_base=7)
    assert space.page_node(7).kind is NodeKind.CXL
    space.migrate_page(7, 0)
    assert space.page_node(7).kind is NodeKind.LOCAL_DDR
    physical = space.translate(7 * PAGE_SIZE + 5)
    assert space.node_of(physical).node_id == 0


def test_migrating_unmapped_page_raises():
    space = two_node_space()
    with pytest.raises(KeyError):
        space.migrate_page(99, 0)


def test_alloc_exhaustion():
    space = AddressSpace([NumaNode(0, NodeKind.LOCAL_DDR, 0, 2 * PAGE_SIZE)])
    space.alloc_pages(0, 2, vpn_base=0)
    with pytest.raises(MemoryError):
        space.alloc_pages(0, 1, vpn_base=10)


def test_free_bytes_decreases_with_allocation():
    space = two_node_space()
    before = space.free_bytes(0)
    space.alloc_pages(0, 10, vpn_base=0)
    assert space.free_bytes(0) == before - 10 * PAGE_SIZE


def test_build_address_space_defaults():
    space = build_address_space(local_gb=1, cxl_gb=1)
    kinds = [n.kind for n in space.nodes]
    assert kinds == [NodeKind.LOCAL_DDR, NodeKind.CXL]
    assert len(space.cxl_nodes) == 1
    assert len(space.local_nodes) == 1


def test_build_address_space_with_remote():
    space = build_address_space(local_gb=1, cxl_gb=1, remote_gb=1)
    kinds = [n.kind for n in space.nodes]
    assert NodeKind.REMOTE_DDR in kinds
    assert len(space.nodes) == 3
