"""Tests for the TMA and naive-attribution baselines."""

import pytest

from repro.baselines import (
    NaiveBreakdown,
    TMAReport,
    naive_attribution,
    naive_total_cxl_stall,
    topdown,
)


def _totals(result):
    totals = {}
    for e in result.epochs:
        for k, v in e.snapshot.delta.items():
            totals[k] = totals.get(k, 0.0) + v
    return totals


# -- TMA ----------------------------------------------------------------------


def test_tma_buckets_partition_cycles(cxl_session):
    _m, _p, result = cxl_session
    totals = _totals(result)
    report = topdown(totals, 0, cycles=result.total_cycles)
    parts = (
        report.retiring + report.store_bound + report.l1_bound
        + report.l2_bound + report.l3_bound + report.dram_bound
    )
    assert parts == pytest.approx(1.0, abs=0.05)
    assert 0.0 <= report.retiring <= 1.0


def test_tma_flags_memory_bound_on_cxl(cxl_session, local_session):
    _m1, _p1, cxl_result = cxl_session
    _m2, _p2, local_result = local_session
    cxl_report = topdown(_totals(cxl_result), 0, cxl_result.total_cycles)
    local_report = topdown(_totals(local_result), 0, local_result.total_cycles)
    # Moving the same app to CXL inflates the memory-bound share...
    assert cxl_report.memory_bound > local_report.memory_bound
    # ...but TMA's buckets are the same names either way: nothing in the
    # report distinguishes CXL from local DRAM (the paper's critique).
    assert set(cxl_report.as_dict()) == set(local_report.as_dict())


def test_tma_dominant_bucket(cxl_session):
    _m, _p, result = cxl_session
    report = topdown(_totals(result), 0, result.total_cycles)
    assert report.dominant() in report.as_dict() or report.dominant() == "retiring"


def test_tma_rejects_bad_cycles():
    with pytest.raises(ValueError):
        topdown({}, 0, cycles=0.0)


# -- naive attribution ------------------------------------------------------------


def test_naive_share_is_count_based(cxl_session):
    _m, _p, result = cxl_session
    totals = _totals(result)
    breakdown = naive_attribution(totals, 0)
    assert 0.0 <= breakdown.cxl_count_share <= 1.0
    # Everything served by CXL in this session -> share ~1.
    assert breakdown.cxl_count_share > 0.9


def test_naive_zero_for_local_runs(local_session):
    _m, _p, result = local_session
    breakdown = naive_attribution(_totals(result), 0)
    assert breakdown.cxl_count_share == 0.0
    assert breakdown.total == 0.0


def test_naive_double_counts_nested_levels(cxl_session):
    """The documented failure mode: summing overlapping stall counters
    overstates the total CXL-induced stall (> wall-clock cycles here)."""
    _m, _p, result = cxl_session
    total = naive_total_cxl_stall(_totals(result), 0)
    # PFEstimator's differenced attribution for the same session:
    pf_total = 0.0
    for e in result.epochs:
        for family in ("DRd", "RFO", "HWPF"):
            pf_total += sum(
                v for c, v in e.stalls.aggregate(family).items()
                if c in ("SB", "L1D", "LFB", "L2", "LLC")
            )
    assert total > pf_total  # naive always >= the differenced in-core sum
