"""Integration tests: whole-machine behaviours the paper documents."""

import pytest

from repro.sim import Machine, emr_config, spr_config
from repro.workloads import RandomAccess, SequentialStream


def run(machine, workload, node_id, core=0, max_events=10_000_000):
    workload.install(machine, node_id)
    machine.pin(core, iter(workload))
    machine.run(max_events=max_events)
    assert machine.all_idle
    return machine.snapshot_counters()


def sumk(snap, event):
    return sum(v for (s, e), v in snap.items() if e == event)


def test_cxl_run_is_slower_than_local():
    results = {}
    for label in ("local", "cxl"):
        m = Machine(spr_config(num_cores=2))
        w = SequentialStream(num_ops=2000, working_set_bytes=1 << 21,
                             read_ratio=0.8, seed=3)
        node = m.local_node if label == "local" else m.cxl_node
        run(m, w, node.node_id)
        results[label] = m.now
    assert results["cxl"] > 1.5 * results["local"]


def test_cxl_traffic_bypasses_imc():
    """Figure 4-a: little to no IMC queueing for CXL-bound streams."""
    m = Machine(spr_config(num_cores=2))
    w = RandomAccess(num_ops=2000, working_set_bytes=1 << 22, seed=5)
    snap = run(m, w, m.cxl_node.node_id)
    # CAS commands happen only for (rare) local writebacks, not reads.
    assert sumk(snap, "unc_m_cas_count.rd") == 0
    assert sumk(snap, "unc_m2p_rxc_inserts.all") > 1000


def test_local_traffic_never_touches_flexbus():
    m = Machine(spr_config(num_cores=2))
    w = RandomAccess(num_ops=2000, working_set_bytes=1 << 22, seed=5)
    snap = run(m, w, m.local_node.node_id)
    assert sumk(snap, "unc_m2p_rxc_inserts.all") == 0
    assert sumk(snap, "unc_m_cas_count.rd") > 0


def test_cha_classifies_cxl_misses():
    m = Machine(spr_config(num_cores=2))
    w = RandomAccess(num_ops=1500, working_set_bytes=1 << 22, seed=7)
    snap = run(m, w, m.cxl_node.node_id)
    miss_cxl = snap.get(("cha0", "unc_cha_tor_inserts.ia_drd.miss_cxl"), 0.0)
    miss_local = snap.get(
        ("cha0", "unc_cha_tor_inserts.ia_drd.miss_local_ddr"), 0.0
    )
    assert miss_cxl > 0
    assert miss_local == 0


def test_device_counters_match_m2pcie_counters():
    """Loads observed at the root port equal DRS responses at the device."""
    m = Machine(spr_config(num_cores=2))
    w = RandomAccess(num_ops=1500, working_set_bytes=1 << 22,
                     read_ratio=1.0, seed=9)
    snap = run(m, w, m.cxl_node.node_id)
    bl = sumk(snap, "unc_m2p_txc_inserts.bl")
    drs = sumk(snap, "unc_cxlcm_txc_pack_buf_inserts.mem_data")
    assert bl == drs
    assert bl > 0


def test_load_store_conservation_at_device():
    """Every request the device received was answered."""
    m = Machine(spr_config(num_cores=2))
    w = SequentialStream(num_ops=3000, working_set_bytes=1 << 21,
                         read_ratio=0.6, seed=13)
    snap = run(m, w, m.cxl_node.node_id)
    req_in = sumk(snap, "unc_cxlcm_rxc_pack_buf_inserts.mem_req")
    data_in = sumk(snap, "unc_cxlcm_rxc_pack_buf_inserts.mem_data")
    drs_out = sumk(snap, "unc_cxlcm_txc_pack_buf_inserts.mem_data")
    ndr_out = sumk(snap, "unc_cxlcm_txc_pack_buf_inserts.mem_req")
    assert req_in == drs_out
    assert data_in == ndr_out


def test_multi_core_workloads_share_the_uncore():
    m = Machine(spr_config(num_cores=4))
    snaps = []
    for core in range(3):
        w = RandomAccess(
            name=f"w{core}", num_ops=800, working_set_bytes=1 << 21,
            seed=20 + core,
        )
        w.install(m, m.cxl_node.node_id)
        m.pin(core, iter(w))
    m.run(max_events=20_000_000)
    assert m.all_idle
    snap = m.snapshot_counters()
    for core in range(3):
        assert snap.get((f"core{core}", "app.ops_completed"), 0.0) == 800
    assert sumk(snap, "unc_m2p_rxc_inserts.all") > 1000


def test_emr_config_larger_llc_reduces_misses():
    miss_counts = {}
    for name, cfg in (("spr", spr_config()), ("emr", emr_config())):
        m = Machine(cfg)
        # Working set larger than SPR slice capacity but closer to EMR's.
        w = SequentialStream(num_ops=6000, working_set_bytes=1 << 23,
                             read_ratio=1.0, seed=31)
        snap = run(m, w, m.cxl_node.node_id)
        miss_counts[name] = snap.get(
            ("cha0", "unc_cha_tor_inserts.ia_drd.miss"), 0.0
        ) + snap.get(("cha0", "unc_cha_tor_inserts.ia_drd_pref.miss"), 0.0)
    assert miss_counts["emr"] <= miss_counts["spr"]


def test_snapshot_counters_is_pure_read():
    m = Machine(spr_config(num_cores=2))
    w = RandomAccess(num_ops=500, working_set_bytes=1 << 20, seed=1)
    run(m, w, m.cxl_node.node_id)
    a = m.snapshot_counters()
    b = m.snapshot_counters()
    assert a == b


def test_machine_exposes_both_nodes():
    m = Machine(spr_config())
    assert m.local_node.kind.value == "local_ddr"
    assert m.cxl_node.kind.value == "cxl"
    assert m.cxl_node.node_id != m.local_node.node_id
