"""Smoke tests for the scripted case studies and their CLI entry point."""

import pytest

from repro.core.cases import CASES, run_case
from repro.core.cli import main


def test_case_registry_covers_all_cases():
    assert sorted(CASES) == [1, 2, 3, 4, 5, 6, 7, 8]


def test_run_case_unknown_id():
    with pytest.raises(KeyError):
        run_case(99)


def test_case1_via_cli(capsys):
    assert main(["case", "--id", "1"]) == 0
    out = capsys.readouterr().out
    assert "Case 1" in out
    assert "Path map" in out
    assert "HWPF share of CXL hits" in out


def test_case2_stall_breakdown(capsys):
    run_case(2)
    out = capsys.readouterr().out
    assert "stall breakdown" in out
    assert "uncore share" in out


def test_case7_tpp(capsys):
    run_case(7)
    out = capsys.readouterr().out
    assert "TPP on" in out and "TPP off" in out
    assert "promotions" in out


def test_cli_rejects_bad_case_id():
    with pytest.raises(SystemExit):
        main(["case", "--id", "9"])
