"""Tests for the extension features: memory pooling (multiple CXL DIMMs),
flit modes, thread migration, and the QoS DevLoad throttler."""

import pytest

from repro.core import AppSpec, PathFinder, ProfileSpec
from repro.sim import (
    DevLoadThrottler,
    FLIT_MODES,
    Machine,
    QoSConfig,
    spr_config,
)
from repro.sim.cxl_device import QoSLoadClass
from repro.workloads import RandomAccess, SequentialStream


# -- memory pooling ------------------------------------------------------------


def test_multiple_cxl_devices_build_distinct_nodes():
    machine = Machine(spr_config(num_cores=2, num_cxl_devices=3))
    cxl_nodes = machine.address_space.cxl_nodes
    assert len(cxl_nodes) == 3
    assert len(machine.cxl_devices) == 3
    assert len(machine.m2pcie) == 3
    assert len({n.node_id for n in cxl_nodes}) == 3


def test_striped_install_spreads_traffic_across_dimms():
    machine = Machine(spr_config(num_cores=2, num_cxl_devices=2))
    workload = RandomAccess(
        num_ops=2000, working_set_bytes=1 << 21, read_ratio=1.0, seed=3
    )
    node_ids = [n.node_id for n in machine.address_space.cxl_nodes]
    workload.install_striped(machine, node_ids)
    machine.pin(0, iter(workload))
    machine.run(max_events=20_000_000)
    assert machine.all_idle
    snap = machine.snapshot_counters()
    per_device = [
        snap.get((f"m2pcie{n}", "unc_m2p_rxc_inserts.all"), 0.0)
        for n in node_ids
    ]
    assert all(v > 0 for v in per_device)
    # Page striping splits roughly evenly.
    assert max(per_device) < 2.0 * min(per_device)


def test_mflows_bounded_by_core_times_dimm():
    """Section 4.2: an app touching N DIMMs owns N flows per core."""
    machine = Machine(spr_config(num_cores=2, num_cxl_devices=2))
    workload = RandomAccess(
        num_ops=1000, working_set_bytes=1 << 20, read_ratio=1.0, seed=5
    )
    node_ids = [n.node_id for n in machine.address_space.cxl_nodes]
    workload.install_striped(machine, node_ids)
    app = AppSpec(workload=workload, core=0, membind=node_ids[0])
    profiler = PathFinder(
        machine, ProfileSpec(apps=[app], epoch_cycles=25_000.0)
    )
    # Register the second DIMM's flow manually (membind covers only one).
    profiler.flows.get_or_create(
        app.pid, 0, node_ids[1], "cxl", app.name, 0.0
    )
    result = profiler.run()
    assert len([f for f in result.flows if f.pid == app.pid]) == 2


def test_path_map_reports_per_dimm_traffic():
    machine = Machine(spr_config(num_cores=2, num_cxl_devices=2))
    workload = RandomAccess(
        num_ops=2000, working_set_bytes=1 << 21, read_ratio=1.0, seed=7
    )
    node_ids = [n.node_id for n in machine.address_space.cxl_nodes]
    workload.install_striped(machine, node_ids)
    app = AppSpec(workload=workload, core=0, membind=node_ids[0])
    result = PathFinder(
        machine, ProfileSpec(apps=[app], epoch_cycles=50_000.0)
    ).run()
    traffic = result.final.path_map.cxl_traffic
    assert set(traffic) == set(node_ids)


# -- flit modes ---------------------------------------------------------------


def test_flit_mode_validation():
    with pytest.raises(ValueError):
        spr_config(flit_mode="1024B")
    for mode in FLIT_MODES:
        config = spr_config(flit_mode=mode)
        assert config.flit_bytes.name == mode


def _cxl_stream_runtime(flit_mode: str) -> float:
    machine = Machine(spr_config(num_cores=2, flit_mode=flit_mode))
    workload = SequentialStream(
        num_ops=4000, working_set_bytes=1 << 21, read_ratio=0.5,
        gap=0.5, seed=9,
    )
    workload.install(machine, machine.cxl_node.node_id)
    machine.pin(0, iter(workload))
    machine.run(max_events=40_000_000)
    assert machine.all_idle
    return machine.now


def test_256b_flits_no_slower_than_68b():
    """Lower header overhead => the 256B mode cannot lose on a
    write-heavy stream (every store ships a data flit)."""
    t_68 = _cxl_stream_runtime("68B")
    t_256 = _cxl_stream_runtime("256B")
    assert t_256 <= t_68 * 1.02


def test_pbr_flits_add_overhead():
    t_68 = _cxl_stream_runtime("68B")
    t_pbr = _cxl_stream_runtime("PBR")
    assert t_pbr >= t_68 * 0.98


# -- thread migration --------------------------------------------------------


def test_machine_migrate_moves_work():
    machine = Machine(spr_config(num_cores=2))
    workload = SequentialStream(
        num_ops=4000, working_set_bytes=1 << 21, read_ratio=1.0, seed=11
    )
    workload.install(machine, machine.local_node.node_id)
    done = []
    machine.pin(0, iter(workload), on_done=lambda: done.append(True))
    machine.engine.at(5_000.0, lambda: machine.migrate(0, 1))
    machine.run(max_events=40_000_000)
    assert done == [True]
    assert machine.all_idle
    ops0 = machine.cores[0].ops_completed
    ops1 = machine.cores[1].ops_completed
    assert ops0 > 0 and ops1 > 0
    assert ops0 + ops1 == 4000


def test_migrate_to_busy_core_rejected():
    machine = Machine(spr_config(num_cores=2))
    a = SequentialStream(num_ops=100, working_set_bytes=1 << 18, seed=1)
    b = SequentialStream(num_ops=100, working_set_bytes=1 << 18, seed=2)
    a.install(machine, machine.local_node.node_id)
    b.install(machine, machine.local_node.node_id)
    machine.pin(0, iter(a))
    machine.pin(1, iter(b))
    with pytest.raises(RuntimeError):
        machine.migrate(0, 1)
    with pytest.raises(ValueError):
        machine.migrate(0, 0)


def test_profiler_migration_creates_new_mflow():
    machine = Machine(spr_config(num_cores=2))
    workload = SequentialStream(
        num_ops=6000, working_set_bytes=1 << 21, read_ratio=1.0, seed=13
    )
    app = AppSpec(workload=workload, core=0,
                  membind=machine.cxl_node.node_id)
    profiler = PathFinder(
        machine, ProfileSpec(apps=[app], epoch_cycles=20_000.0)
    )
    profiler.schedule_migration(app.pid, new_core=1, at=30_000.0)
    result = profiler.run()
    flows = [f for f in result.flows if f.pid == app.pid]
    assert len(flows) == 2
    cores = sorted(f.core_id for f in flows)
    assert cores == [0, 1]
    old = next(f for f in flows if f.core_id == 0)
    new = next(f for f in flows if f.core_id == 1)
    assert old.ended_at is not None
    assert new.created_at >= 30_000.0


# -- QoS DevLoad throttling ---------------------------------------------------


def _saturating_setup(enabled: bool):
    # A media-bound device (slower DRAM than the link can feed) so the
    # device-side queues - the DevLoad signal - actually build up.
    from repro.sim.dram import DRAMTiming

    import dataclasses

    config = dataclasses.replace(
        spr_config(num_cores=4),
        cxl_dram=DRAMTiming(access_latency=240.0, bytes_per_cycle=3.0,
                            channels=1),
    )
    machine = Machine(config)
    node = machine.cxl_node.node_id
    throttler = DevLoadThrottler.attach(
        machine, node, QoSConfig(window_cycles=2_000.0), enabled=enabled
    )
    for core in range(4):
        stream = SequentialStream(
            name=f"s{core}", num_ops=4000, working_set_bytes=1 << 21,
            read_ratio=1.0, gap=0.5, seed=20 + core,
        )
        stream.install(machine, node)
        machine.pin(core, iter(stream))
    machine.run(max_events=80_000_000)
    assert machine.all_idle
    return machine, throttler


def test_qos_throttler_reacts_to_overload():
    machine, throttler = _saturating_setup(enabled=True)
    assert throttler.history, "no control windows ran"
    classes = {load for _t, load, _a in throttler.history}
    assert classes - {QoSLoadClass.LIGHT}, "device never left light load"
    assert max(a for _t, _l, a in throttler.history) > 4.0


def test_qos_throttler_reduces_device_queueing():
    m_off, _ = _saturating_setup(enabled=False)
    m_on, throttler = _saturating_setup(enabled=True)
    node = m_on.cxl_node.node_id
    occ_off = m_off.cxl_devices[node].mc_queue.stats.mean_occupancy(m_off.now)
    occ_on = m_on.cxl_devices[node].mc_queue.stats.mean_occupancy(m_on.now)
    if throttler.throttled_windows() > 0:
        assert occ_on <= occ_off * 1.1


def test_qos_disabled_throttler_keeps_base_arbitration():
    machine, throttler = _saturating_setup(enabled=False)
    assert throttler.current_arbitration == 4.0
    assert throttler.history == []
