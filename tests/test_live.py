"""repro.live: incremental-vs-batch parity, tiers, retention, streaming.

The parity tests are the contract that makes live profiling trustworthy:
each incremental operator must reproduce its batch counterpart at every
prefix length, so a dashboard reading the rolling state mid-run sees the
same numbers a post-hoc batch query would compute.
"""

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AppSpec, ProfileSpec
from repro.core.materializer import PATH_SET
from repro.core.profiler import PathFinder
from repro.exec import cxl_node_id
from repro.live import (
    LIVE_QUEUES,
    IngestionBus,
    LiveMaterializer,
    LiveSpec,
    OnlineHoltWinters,
    RollingMean,
    StreamingPearson,
    coerce_live,
    render_live_event,
)
from repro.sim import Machine, spr_config
from repro.tsdb import (
    RetentionPolicy,
    TimeSeriesDB,
    holt_winters,
    moving_average,
    pearsonr,
)
from repro.workloads import build_app

# Dyadic rationals: exactly representable, so parity assertions measure
# algorithmic agreement rather than accumulated float noise.
values = st.integers(min_value=-8_000, max_value=8_000).map(lambda n: n / 8.0)


# -- operator parity (hypothesis) --------------------------------------------


@settings(max_examples=80, deadline=None)
@given(st.lists(values, min_size=1, max_size=60), st.integers(1, 8))
def test_rolling_mean_matches_moving_average(series, window):
    rolling = RollingMean(window)
    for i, value in enumerate(series):
        got = rolling.push(value)
        want = moving_average(series[: i + 1], window)[-1]
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)
        assert rolling.value == got


@settings(max_examples=80, deadline=None)
@given(
    st.lists(values, min_size=1, max_size=40),
    st.one_of(st.none(), st.integers(2, 5)),
    st.integers(1, 3),
)
def test_online_holt_winters_matches_batch(series, season, horizon):
    online = OnlineHoltWinters(season_length=season)
    for i, value in enumerate(series):
        online.push(value)
        want = holt_winters(
            series[: i + 1], horizon=horizon, season_length=season
        )
        got = online.forecast(horizon)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-7)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(values, values), min_size=0, max_size=60))
def test_streaming_pearson_matches_batch(pairs):
    streaming = StreamingPearson()
    for i, (x, y) in enumerate(pairs):
        streaming.push(x, y)
        xs = [p[0] for p in pairs[: i + 1]]
        ys = [p[1] for p in pairs[: i + 1]]
        assert streaming.value == pytest.approx(
            pearsonr(xs, ys), rel=1e-6, abs=1e-6
        )
    if not pairs:
        assert streaming.value == 0.0


def test_online_holt_winters_empty_forecast_before_first_point():
    assert OnlineHoltWinters().forecast(3) == []
    assert OnlineHoltWinters(season_length=4).forecast(1) == []


# -- downsampling tiers -------------------------------------------------------


def make_tiered_db(raw_points=10_000, tier_points=1_000):
    policy = RetentionPolicy(
        raw_points=raw_points, tier_factors=(10, 100), tier_points=tier_points
    )
    return TimeSeriesDB(retention=policy)


def test_tier1_emits_block_means_at_block_end_timestamps():
    db = make_tiered_db()
    for i in range(250):
        db.insert("m", float(i), tags={"k": "a"}, fields={"v": float(i)})
    tier1 = db.from_("m", tier=1)
    # 25 complete 10-blocks; each record carries the block mean and the
    # block's last raw timestamp.
    assert tier1.values("v") == [float(b * 10) + 4.5 for b in range(25)]
    assert tier1.timestamps() == [float(b * 10) + 9.0 for b in range(25)]


def test_tier2_cascades_from_tier1():
    db = make_tiered_db()
    for i in range(250):
        db.insert("m", float(i), fields={"v": float(i)})
    tier2 = db.from_("m", tier=2)
    # 250 raw points = 2 complete 100-blocks (the trailing 50 stay
    # buffered in the partial accumulator, not emitted).
    assert tier2.values("v") == [49.5, 149.5]
    assert tier2.timestamps() == [99.0, 199.0]


def test_tiers_keep_tag_sets_separate():
    db = make_tiered_db()
    for i in range(30):
        db.insert("m", float(i), tags={"k": "a"}, fields={"v": 1.0})
        db.insert("m", float(i), tags={"k": "b"}, fields={"v": 3.0})
    tier1 = db.from_("m", tier=1)
    assert tier1.where(k="a").values("v") == [1.0, 1.0, 1.0]
    assert tier1.where(k="b").values("v") == [3.0, 3.0, 3.0]


def test_partial_blocks_are_not_emitted():
    db = make_tiered_db()
    for i in range(9):
        db.insert("m", float(i), fields={"v": float(i)})
    assert db.from_("m", tier=1).values("v") == []
    db.insert("m", 9.0, fields={"v": 9.0})
    assert db.from_("m", tier=1).values("v") == [4.5]


# -- retention bounds ---------------------------------------------------------


def test_raw_retention_bounds_memory_and_counts_drops():
    db = make_tiered_db(raw_points=1_000, tier_points=50)
    total = 20_000
    for i in range(total):
        db.insert("m", float(i), fields={"v": float(i)})
    raw = db.measurement("m")
    # Amortised trim: never more than cap + slack points in memory.
    assert len(raw) <= 1_000 + max(64, 1_000 // 8)
    assert raw.dropped == total - len(raw)
    # The newest points survive and stay queryable.
    assert db.from_("m").timestamps()[-1] == float(total - 1)
    # Tier caps hold too.
    for tier in (1, 2):
        table = db.measurement("m", tier=tier)
        assert len(table) <= 50 + 64
    stats = db.stats()
    assert stats["m"]["dropped"] == raw.dropped


def test_million_point_series_queryable_under_cap():
    db = make_tiered_db(raw_points=10_000, tier_points=10_000)
    total = 1_000_000
    for i in range(total):
        db.insert("m", float(i), fields={"v": float(i)})
    raw = db.measurement("m")
    assert len(raw) <= 10_000 + max(64, 10_000 // 8)
    assert raw.dropped + len(raw) == total
    # Recent history at raw resolution, full history at 100x.
    assert db.from_("m").timestamps()[-1] == float(total - 1)
    tier2 = db.from_("m", tier=2)
    assert len(tier2.values("v")) == total // 100
    assert tier2.values("v")[0] == 49.5


def test_out_of_order_stragglers_merge_on_read():
    db = TimeSeriesDB()
    db.insert("m", 10.0, fields={"v": 1.0})
    db.insert("m", 20.0, fields={"v": 2.0})
    before = db.from_("m")
    assert before.timestamps() == [10.0, 20.0]
    db.insert("m", 15.0, fields={"v": 3.0})  # straggler -> pending buffer
    after = db.from_("m")
    assert after.timestamps() == [10.0, 15.0, 20.0]
    # The snapshot taken before the merge still reads its own world.
    assert before.timestamps() == [10.0, 20.0]


def test_descending_inserts_end_up_sorted():
    db = TimeSeriesDB()
    n = 2_000  # crosses the deferred-merge threshold several times
    for i in range(n, 0, -1):
        db.insert("m", float(i), fields={"v": float(i)})
    assert db.from_("m").timestamps() == [float(i) for i in range(1, n + 1)]


# -- ingestion bus ------------------------------------------------------------


def test_bus_bounded_subscriber_drops_oldest():
    bus = IngestionBus()
    sub = bus.subscribe(maxlen=4)
    for i in range(10):
        bus.publish({"i": i})
    got = sub.drain_nowait()
    assert [e["i"] for e in got] == [6, 7, 8, 9]
    assert sub.dropped == 6
    assert bus.stats()["published"] == 10


def test_bus_close_ends_iteration():
    bus = IngestionBus()
    sub = bus.subscribe()
    received = []

    def consume():
        for event in sub:
            received.append(event)

    thread = threading.Thread(target=consume)
    thread.start()
    bus.publish({"i": 0})
    bus.publish({"i": 1})
    bus.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert [e["i"] for e in received] == [0, 1]
    # Post-close subscriptions are born with the close marker queued.
    late = bus.subscribe()
    assert late.drain_nowait() == []
    assert late.closed


def test_coerce_live():
    assert coerce_live(None) is None
    assert coerce_live(False) is None
    assert coerce_live(True) == LiveSpec()
    spec = LiveSpec(window=3)
    assert coerce_live(spec) is spec
    with pytest.raises(ValueError):
        coerce_live(42)
    with pytest.raises(ValueError):
        LiveSpec(tier_factors=(10, 15))  # 15 not a multiple of 10


# -- live profiling end-to-end (in-process) -----------------------------------

WINDOW = 4


@pytest.fixture(scope="module")
def live_run():
    """One live profiling run of two co-resident apps, with per-epoch
    batch-vs-rolling parity checked inside the epoch callback."""
    machine = Machine(spr_config(num_cores=2))
    node = machine.cxl_node.node_id
    apps = [
        AppSpec(workload=build_app("541.leela_r", num_ops=1200, seed=7),
                core=0, membind=node),
        AppSpec(workload=build_app("505.mcf_r", num_ops=1200, seed=8),
                core=1, membind=node),
    ]
    spec = ProfileSpec(apps=apps, epoch_cycles=25_000.0)
    digests = []
    mismatches = []
    holder = {}

    def on_epoch(digest):
        digests.append(digest)
        materializer = holder["pf"].materializer
        for pid in materializer.tracked_pids():
            series = (
                materializer.db.from_(PATH_SET)
                .where(pid=str(pid), path="DRd", dst="LLC")
                .values("hits")
            )
            if not series:
                continue
            want = moving_average(series, WINDOW)[-1]
            got = materializer.rolling_locality(pid)["mean"]
            if got != pytest.approx(want, rel=1e-9, abs=1e-9):
                mismatches.append((digest["epoch"], pid, got, want))

    pf = PathFinder(machine, spec, live=LiveSpec(window=WINDOW),
                    on_epoch=on_epoch)
    holder["pf"] = pf
    result = pf.run()
    return pf, result, digests, mismatches


def test_live_run_uses_live_materializer(live_run):
    pf, result, digests, _ = live_run
    assert isinstance(pf.materializer, LiveMaterializer)
    assert len(digests) == len(result.epochs) > 0


def test_live_rolling_mean_matches_batch_every_epoch(live_run):
    _, _, _, mismatches = live_run
    assert mismatches == []


def test_live_forecast_matches_batch_over_stored_series(live_run):
    pf, _, _, _ = live_run
    materializer = pf.materializer
    for pid in materializer.tracked_pids():
        series = (
            materializer.db.from_(PATH_SET)
            .where(pid=str(pid), path="DRd", dst="LLC")
            .values("hits")
        )
        got = materializer.rolling_locality(pid)["forecast"]
        want = holt_winters(series, horizon=1)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-7)


def test_live_correlation_matches_batch(live_run):
    pf, _, _, _ = live_run
    materializer = pf.materializer
    pids = materializer.tracked_pids()
    assert len(pids) == 2
    a, b = pids
    assert materializer.rolling_correlate(a, b) == pytest.approx(
        materializer.correlate(a, b), rel=1e-6, abs=1e-6
    )


def test_live_digests_are_json_safe_and_renderable(live_run):
    _, _, digests, _ = live_run
    for digest in digests:
        json.dumps(digest)
        assert digest["event"] == "epoch"
    line = render_live_event(digests[-1])
    assert "epoch" in line and "culprit=" in line


def test_live_run_samples_queues(live_run):
    pf, _, digests, _ = live_run
    assert LIVE_QUEUES in pf.materializer.db
    assert any("hot_queues" in digest for digest in digests)


def test_live_batch_workflows_still_run_on_live_db(live_run):
    pf, _, _, _ = live_run
    report = pf.materializer.locality(pf.materializer.tracked_pids()[0])
    assert report.hits_series


# -- serving: /v1/live over HTTP ---------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("live-serve-cache")
    from repro.serve import BackgroundServer

    with BackgroundServer(workers=1, queue_depth=8,
                          cache=str(cache_dir)) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    from repro.serve import ServeClient

    return ServeClient(port=server.port)


def serve_spec():
    workload = build_app("541.leela_r", num_ops=600, seed=3)
    app = AppSpec(
        workload=workload, core=0, membind=cxl_node_id(spr_config())
    )
    return ProfileSpec(apps=[app], epoch_cycles=20_000.0)


def test_live_job_streams_epoch_digests_while_in_flight(server, client):
    events = []
    done = threading.Event()

    def consume():
        try:
            for event in client.live(timeout=120):
                events.append(event)
                if event.get("event") in ("done", "failed"):
                    done.set()
                    return
        finally:
            done.set()

    streamer = threading.Thread(target=consume, daemon=True)
    streamer.start()
    time.sleep(0.2)
    job = client.submit_run(serve_spec(), live={"window": 4},
                            cacheable=False, tag="live-e2e")
    final = client.wait(job["job_id"], timeout=300)
    assert final["state"] == "done"
    assert done.wait(timeout=30)
    epochs = [e for e in events if e.get("event") == "epoch"]
    assert len(epochs) == final["num_epochs"] > 0
    for digest in epochs:
        assert digest["job_id"] == job["job_id"]
        assert "rolling" in digest and "culprit" in digest
    # The per-job event log carries the same digests (NDJSON endpoint).
    log = [e for e in client.events(job["job_id"], timeout=60)
           if e.get("event") == "epoch"]
    assert len(log) == final["num_epochs"]


def test_live_stream_honors_max_events(server, client):
    def pump():
        # Lead-in so the streamer is subscribed before the first tick.
        time.sleep(0.3)
        for i in range(20):
            server.daemon.live_bus.publish({"event": "tick", "i": i})
            time.sleep(0.05)

    threading.Thread(target=pump, daemon=True).start()
    got = list(client.live(max_events=3, timeout=30))
    assert got[0]["event"] == "hello"
    assert [e["event"] for e in got[1:]] == ["tick"] * 3


def test_fleet_merged_live_stream(server, client):
    from repro.fleet import FleetCoordinator

    def pump():
        time.sleep(0.3)
        for i in range(20):
            server.daemon.live_bus.publish({"event": "tick", "i": i})
            time.sleep(0.05)

    threading.Thread(target=pump, daemon=True).start()
    coordinator = FleetCoordinator([f"127.0.0.1:{server.port}"])
    merged = list(coordinator.live_events(max_events=2, timeout=30))
    ticks = [e for e in merged if e["event"] == "tick"]
    assert len(ticks) == 2
    assert all(e["member"] == f"127.0.0.1:{server.port}" for e in merged)


def test_malformed_live_spec_is_rejected(client):
    from repro.serve import ServeError

    with pytest.raises(ServeError) as excinfo:
        client.submit_run(serve_spec(), live={"window": -1})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit_run(serve_spec(), live={"bogus_knob": 1})
    assert excinfo.value.status == 400
