"""Unit tests for the time-series database, query pipeline and operators."""

import math

import pytest

from repro.tsdb import (
    Decomposition,
    TimeSeriesDB,
    Window,
    cluster_windows,
    decompose,
    detect_period,
    dominant_window,
    holt_winters,
    moving_average,
    pearsonr,
    series_avg,
    series_max,
    series_min,
)


# -- database ----------------------------------------------------------------


def make_db():
    db = TimeSeriesDB()
    for i in range(10):
        db.insert(
            "m", float(i),
            tags={"pid": str(i % 2), "dst": "LLC"},
            fields={"hits": float(i), "misses": float(10 - i)},
        )
    return db


def test_insert_and_range():
    db = make_db()
    records = db.measurement("m").range(3.0, 6.0)
    assert [r.timestamp for r in records] == [3.0, 4.0, 5.0, 6.0]


def test_records_sorted_even_with_out_of_order_insert():
    db = TimeSeriesDB()
    db.insert("m", 5.0, fields={"v": 1.0})
    db.insert("m", 1.0, fields={"v": 2.0})
    db.insert("m", 3.0, fields={"v": 3.0})
    assert [r.timestamp for r in db.measurement("m")] == [1.0, 3.0, 5.0]


def test_measurement_created_lazily():
    db = TimeSeriesDB()
    assert "x" not in db
    db.measurement("x")
    assert "x" in db
    assert db.measurements() == ["x"]


# -- query ------------------------------------------------------------------


def test_where_filters_tags():
    db = make_db()
    q = db.from_("m").where(pid="0")
    assert len(q) == 5
    assert all(r.tag("pid") == "0" for r in q.records())


def test_where_multiple_tags_conjunction():
    db = make_db()
    assert len(db.from_("m").where(pid="0", dst="LLC")) == 5
    assert len(db.from_("m").where(pid="0", dst="CXL")) == 0


def test_query_range_and_values():
    db = make_db()
    q = db.from_("m").range(start=5.0)
    assert q.values("hits") == [5.0, 6.0, 7.0, 8.0, 9.0]


def test_query_aggregates():
    db = make_db()
    q = db.from_("m")
    assert q.min("hits") == 0.0
    assert q.max("hits") == 9.0
    assert q.mean("hits") == pytest.approx(4.5)
    assert q.sum("hits") == pytest.approx(45.0)


def test_query_group_by():
    db = make_db()
    groups = db.from_("m").group_by("pid")
    assert set(groups) == {"0", "1"}
    assert len(groups["0"]) == 5


def test_query_filter_predicate():
    db = make_db()
    q = db.from_("m").filter(lambda r: r.field("hits") > 7)
    assert len(q) == 2


def test_pearsonr_with_alignment():
    db = make_db()
    q0 = db.from_("m").where(pid="0")
    q1 = db.from_("m").where(pid="1")
    # hits series 0,2,4,6,8 vs 1,3,5,7,9: perfectly correlated.
    assert q0.pearsonr_with(q1, "hits") == pytest.approx(1.0)


def test_query_pearsonr_fields():
    db = make_db()
    r = db.from_("m").pearsonr("hits", "misses")
    assert r == pytest.approx(-1.0)


# -- operators -----------------------------------------------------------------


def test_min_max_avg_reject_empty():
    for fn in (series_min, series_max, series_avg):
        with pytest.raises(ValueError):
            fn([])


def test_moving_average_window():
    out = moving_average([1, 2, 3, 4, 5], window=2)
    assert out == pytest.approx([1.0, 1.5, 2.5, 3.5, 4.5])
    with pytest.raises(ValueError):
        moving_average([1.0], window=0)


def test_holt_winters_linear_trend():
    series = [float(i) for i in range(20)]
    forecast = holt_winters(series, horizon=3)
    # Next values continue the +1 trend, within tolerance.
    assert forecast[0] == pytest.approx(20.0, abs=1.5)
    assert forecast[2] > forecast[0]


def test_holt_winters_seasonal():
    season = [10.0, 0.0, 5.0, 2.0]
    series = season * 6
    forecast = holt_winters(series, horizon=4, season_length=4)
    # Forecast should track the seasonal shape.
    assert forecast[0] > forecast[1]


def test_pearsonr_properties():
    assert pearsonr([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert pearsonr([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
    assert pearsonr([1, 2, 3], [5, 5, 5]) == 0.0
    with pytest.raises(ValueError):
        pearsonr([1, 2], [1, 2, 3])
    # Degenerate (short/empty) series carry no signal: 0.0, not a raise.
    assert pearsonr([1], [1]) == 0.0
    assert pearsonr([], []) == 0.0


def test_holt_winters_empty_series_empty_forecast():
    assert holt_winters([], horizon=3) == []
    # Constant series: flat forecast, no NaN.
    forecast = holt_winters([5.0] * 8, horizon=2)
    assert forecast == pytest.approx([5.0, 5.0])


# -- clustering ---------------------------------------------------------------


def test_cluster_windows_identifies_phases():
    series = [1.0] * 5 + [10.0] * 7 + [1.0] * 3
    windows = cluster_windows(series, tolerance=0.15)
    assert len(windows) == 3
    assert windows[0].length == 5
    assert windows[1].length == 7
    assert windows[1].mean == pytest.approx(10.0)


def test_cluster_constant_series_single_window():
    windows = cluster_windows([3.0] * 8)
    assert len(windows) == 1
    assert windows[0].length == 8


def test_cluster_empty_series():
    assert cluster_windows([]) == []


def test_dominant_window():
    windows = cluster_windows([1.0] * 2 + [9.0] * 6)
    assert dominant_window(windows).length == 6
    with pytest.raises(ValueError):
        dominant_window([])


def test_min_length_merging():
    series = [1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0]
    windows = cluster_windows(series, tolerance=0.1, min_length=2)
    assert all(w.length >= 2 for w in windows)


# -- tsa --------------------------------------------------------------------


def test_decompose_recovers_trend():
    series = [float(i) + (1.0 if i % 2 else -1.0) for i in range(30)]
    result = decompose(series)
    # Trend is monotonically increasing in the interior.
    interior = result.trend[5:-5]
    assert all(b >= a for a, b in zip(interior, interior[1:]))


def test_decompose_additivity():
    series = [float(i % 5) + i * 0.1 for i in range(40)]
    result = decompose(series, period=5)
    for i, value in enumerate(series):
        assert value == pytest.approx(
            result.trend[i] + result.seasonal[i] + result.residual[i]
        )


def test_decompose_empty_raises():
    with pytest.raises(ValueError):
        decompose([])


def test_detect_period_on_periodic_signal():
    series = [math.sin(2 * math.pi * i / 8) for i in range(64)]
    period = detect_period(series)
    assert period == 8


def test_detect_period_none_for_noise_free_constant():
    assert detect_period([5.0] * 30) is None
    assert detect_period([1.0, 2.0]) is None


def test_anomaly_detection():
    series = [1.0] * 20
    series[10] = 100.0
    result = decompose(series)
    assert 10 in result.anomalies(z_threshold=2.0)
