"""Tests for PFMaterializer extension workflows and session persistence."""

import pytest

from repro.core import load_session, save_session


def test_compute_bursts_returns_indices(cxl_session):
    _m, profiler, result = cxl_session
    bursts = profiler.materializer.compute_bursts(0, z_threshold=1.5)
    assert isinstance(bursts, list)
    for index in bursts:
        assert 0 <= index < result.num_epochs


def test_orthogonality_self_is_one(cxl_session):
    _m, profiler, _result = cxl_session
    # A core against itself: identical series, r = 1 (or 0 if constant).
    r = profiler.materializer.orthogonality(0, 0)
    assert r == pytest.approx(1.0) or r == 0.0


def test_spatial_locality_in_unit_range(cxl_session):
    _m, profiler, result = cxl_session
    pid = result.flows[0].pid
    value = profiler.materializer.spatial_locality(pid)
    assert 0.0 <= value <= 1.0


def test_spatial_locality_unknown_pid(cxl_session):
    _m, profiler, _result = cxl_session
    with pytest.raises(ValueError):
        profiler.materializer.spatial_locality(999999)


# -- persistence ---------------------------------------------------------------


def test_session_roundtrip(cxl_session, tmp_path):
    _m, _profiler, result = cxl_session
    path = tmp_path / "session.json"
    save_session(result, path)
    loaded = load_session(path)
    assert len(loaded.snapshots) == result.num_epochs
    assert loaded.total_cycles == result.total_cycles
    assert {f.flow_id for f in loaded.flows} >= {
        f.flow_id for f in result.flows
    }
    # Counter deltas survive exactly (non-zero entries).
    original = result.epochs[0].snapshot
    restored = loaded.snapshots[0]
    assert restored.t_start == original.t_start
    assert restored.t_end == original.t_end
    for key, value in original.delta.items():
        if value:
            assert restored.delta[key] == value


def test_loaded_session_reanalyzes(cxl_session, tmp_path):
    _m, _profiler, result = cxl_session
    path = tmp_path / "session.json"
    save_session(result, path)
    loaded = load_session(path)
    analyses = loaded.reanalyze()
    assert len(analyses) == result.num_epochs
    snapshot, path_map, stalls, queues = analyses[-1]
    # Offline re-analysis matches the live run's conclusions.
    live = result.epochs[-1]
    assert path_map.cxl_hits() == live.path_map.cxl_hits()
    live_culprit = live.queues.culprit()
    offline_culprit = queues.culprit()
    if live_culprit is not None:
        assert offline_culprit is not None
        assert offline_culprit.component == live_culprit.component


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format_version": 99, "epochs": []}')
    with pytest.raises(ValueError):
        load_session(path)
