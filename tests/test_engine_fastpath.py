"""The batched scheduler must be indistinguishable from the legacy heap.

The engine's bucket-batched fast path (see docs/ENGINE.md) only holds if
three invariants survive: equal-timestamp events run in insertion (FIFO)
order, sub-epsilon past drift is clamped rather than fatal, and an
attached flight recorder sees the identical event stream either way.
Budget composition across resumed ``run()`` calls rides along because the
fast path keeps its event counter in a local.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import api
from repro.core import AppSpec, ProfileSpec
from repro.core.profiler import PathFinder
from repro.core.spec import TraceSpec
from repro.sim import Engine, Machine, SimulationBudgetExceeded
from repro.workloads import RandomAccess


# -- FIFO ordering -----------------------------------------------------------


def _record_order(engine: Engine, times):
    """Schedule one tagged event per entry of ``times``; run; return tags."""
    order = []
    for seq, time in enumerate(times):
        engine.at(time, lambda s=seq: order.append(s))
    engine.run()
    return order


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0]),
        min_size=1,
        max_size=40,
    )
)
def test_equal_timestamp_events_keep_fifo_order(times):
    batched = _record_order(Engine(batched=True), times)
    legacy = _record_order(Engine(batched=False), times)
    assert batched == legacy
    # The merged order is exactly a stable sort by timestamp: FIFO within
    # one timestamp, timestamps ascending.
    expected = [i for i, _ in sorted(enumerate(times), key=lambda p: p[1])]
    assert batched == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([0.0, 3.0, 3.0, 5.0]),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_mid_drain_same_time_appends_keep_fifo_order(plan):
    """Events that schedule more work at the *same* timestamp stay FIFO.

    This is the regression the index-drained bucket exists for: a late
    arrival at the live timestamp must join the back of the batch, which
    is exactly the legacy heap's (time, seq) order.
    """

    def build(engine):
        order = []
        tag = 0
        for time, extra in plan:
            def cb(t=time, n=extra, base=tag):
                order.append(("outer", base))
                for k in range(n):
                    engine.at(
                        t, lambda b=base, kk=k: order.append(("inner", b, kk))
                    )
            engine.at(time, cb)
            tag += 1
        return order

    e1, e2 = Engine(batched=True), Engine(batched=False)
    o1, o2 = build(e1), build(e2)
    e1.run()
    e2.run()
    assert o1 == o2


def test_schedule_batch_preserves_iteration_order():
    engine = Engine()
    order = []
    engine.at(2.0, lambda: order.append("pre"))
    engine.schedule_batch(2.0, [lambda i=i: order.append(i) for i in range(5)])
    engine.run()
    assert order == ["pre", 0, 1, 2, 3, 4]


# -- past-drift clamping -----------------------------------------------------


def test_at_clamps_subepsilon_past_drift():
    engine = Engine()
    hit = []
    # 0.1 is not exactly representable: 1000 * 0.1 accumulates drift, the
    # classic way a stage chain lands a few ULPs before "now".
    def late():
        engine.at(engine.now - engine.now * 1e-13, lambda: hit.append(engine.now))

    engine.at(100.0, late)
    engine.run()
    assert hit and hit[0] == 100.0


def test_at_rejects_genuinely_past_times():
    engine = Engine()
    engine.at(50.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError, match="in the past"):
        engine.at(25.0, lambda: None)


def test_schedule_batch_clamps_and_rejects_like_at():
    engine = Engine()
    ran = []
    engine.at(10.0, lambda: engine.schedule_batch(
        10.0 - 1e-12, [lambda: ran.append(1)]))
    engine.run()
    assert ran == [1]
    with pytest.raises(ValueError, match="in the past"):
        engine.schedule_batch(1.0, [lambda: None])


# -- budget composition ------------------------------------------------------


def _load(engine: Engine, n: int = 50) -> None:
    for i in range(n):
        engine.at(float(i), lambda: None)


def test_per_call_max_events_compose_across_resumed_runs():
    engine = Engine()
    _load(engine)
    with pytest.raises(SimulationBudgetExceeded) as e1:
        engine.run(max_events=3)
    assert e1.value.events_executed == 3
    assert engine.events_executed == 3
    with pytest.raises(SimulationBudgetExceeded) as e2:
        engine.run(max_events=3)
    # The second bounded run gets its own fresh allowance of 3.
    assert e2.value.events_executed == 3
    assert engine.events_executed == 6


def test_persistent_budget_spans_run_calls():
    engine = Engine()
    _load(engine)
    engine.set_event_budget(10)
    engine.run(until=4.5)  # executes events at t=0..4 -> 5 events
    assert engine.events_executed == 5
    assert engine.event_budget_remaining == 5
    with pytest.raises(SimulationBudgetExceeded) as exc:
        engine.run()
    assert exc.value.events_executed == 5  # five more, then the ceiling
    assert engine.events_executed == 10
    assert engine.event_budget_remaining == 0


def test_budget_exact_under_midbatch_stop():
    """Stopping inside a bucket must not lose or double-count events."""
    engine = Engine()
    ran = []
    for i in range(10):
        engine.at(1.0, lambda i=i: ran.append(i))
    engine.at(1.0, engine.stop)  # 11th event at the same timestamp? no: stop mid
    engine.run()
    # stop() aborts after the current event; everything before it ran.
    assert ran == list(range(10))
    assert engine.events_executed == 11
    assert engine.pending_events == 0


# -- recorder parity under the fast path -------------------------------------


def _traced_result(batched: bool):
    workload = RandomAccess(
        "fp-rand",
        1 << 20,
        num_ops=1200,
        read_ratio=0.7,
        dependent=True,
        seed=13,
        vpn_base=1 << 23,
    )
    spec = ProfileSpec(
        apps=[AppSpec(workload=workload, core=0, membind=0)],
        epoch_cycles=20000.0,
        trace=TraceSpec(sample_every=4),
    )
    machine = Machine()
    machine.engine.set_batched(batched)
    return PathFinder(machine, spec).run()


def test_recorder_samples_survive_batched_scheduler():
    fast = _traced_result(batched=True)
    slow = _traced_result(batched=False)
    assert fast.trace is not None and slow.trace is not None
    assert fast.trace.requests_seen == slow.trace.requests_seen
    assert fast.trace.requests_traced == slow.trace.requests_traced
    assert fast.trace.cache_lookups == slow.trace.cache_lookups
    # Hop-for-hop identical event streams for every sampled request.
    fast_hops = [
        (t.local_id, t.path, [(e.component, e.kind, e.t) for e in t.events])
        for t in fast.trace.traces
    ]
    slow_hops = [
        (t.local_id, t.path, [(e.component, e.kind, e.t) for e in t.events])
        for t in slow.trace.traces
    ]
    assert fast_hops == slow_hops
    # And the PMU totals agree bit-for-bit.
    assert api.counters(fast) == api.counters(slow)
